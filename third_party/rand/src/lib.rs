//! Vendored minimal reimplementation of the `rand` 0.8 API surface used
//! by VoxOLAP (see `third_party/README.md`).
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — deterministic
//! and portable, but **not** bit-compatible with rand 0.8's ChaCha12
//! `StdRng`. Everything seeded in this repository is self-consistent
//! under this generator.

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }

    /// Sample a value of a standard-distribution type (`f64` in `[0,1)`,
    /// uniform integers, fair `bool`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types producible by [`Rng::gen`].
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, span)` via 128-bit widening multiply.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full u64 domain
                }
                let off = uniform_u64(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * u
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64 (matching
    /// rand 0.8's documented strategy, though not its byte layout).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { s: state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    s: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.s = self.s.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (fast, 256-bit state,
    /// passes BigCrush). Not reproducible against rand 0.8's ChaCha12.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // All-zero state is a fixed point of xoshiro; displace it.
                s = [0x9e37_79b9_7f4a_7c15, 0x6a09_e667_f3bc_c909, 1, 2];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice extensions (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` on an empty slice).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    pub mod index {
        use super::super::Rng;

        /// Result of [`sample`]: distinct indices in `[0, length)`.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            pub fn len(&self) -> usize {
                self.0.len()
            }
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
            pub fn iter(&self) -> std::slice::Iter<'_, usize> {
                self.0.iter()
            }
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// `amount` distinct indices drawn uniformly from `0..length`
        /// (panics if `amount > length`, like rand 0.8).
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} of {length}");
            if amount * 4 >= length {
                // Dense: partial Fisher–Yates on the full index vector.
                let mut idx: Vec<usize> = (0..length).collect();
                for i in 0..amount {
                    let j = rng.gen_range(i..length);
                    idx.swap(i, j);
                }
                idx.truncate(amount);
                IndexVec(idx)
            } else {
                // Sparse: Floyd's algorithm; `amount` is small (the cache
                // resample size), so linear membership checks are cheap.
                let mut picked: Vec<usize> = Vec::with_capacity(amount);
                for j in (length - amount)..length {
                    let t = rng.gen_range(0..=j);
                    if picked.contains(&t) {
                        picked.push(j);
                    } else {
                        picked.push(t);
                    }
                }
                IndexVec(picked)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::index::sample;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(0..=4u64);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = rngs::StdRng::seed_from_u64(2);
        let mut hits = [0usize; 8];
        for _ in 0..80_000 {
            hits[r.gen_range(0..8usize)] += 1;
        }
        for &h in &hits {
            assert!((8_000..12_000).contains(&h), "bucket count {h}");
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = rngs::StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = rngs::StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle moved something");
    }

    #[test]
    fn index_sample_distinct_and_in_range() {
        let mut r = rngs::StdRng::seed_from_u64(5);
        for (length, amount) in [(100, 10), (20, 15), (1000, 3), (5, 5)] {
            let idx = sample(&mut r, length, amount).into_vec();
            assert_eq!(idx.len(), amount);
            let mut sorted = idx.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), amount, "distinct indices");
            assert!(idx.iter().all(|&i| i < length));
        }
    }

    #[test]
    fn unsized_rng_callable_through_generics() {
        fn pick<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut r = rngs::StdRng::seed_from_u64(6);
        assert!(pick(&mut r) < 10);
    }
}
