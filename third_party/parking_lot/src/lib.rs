//! Vendored minimal reimplementation of the `parking_lot` API surface
//! used by VoxOLAP (see `third_party/README.md`): a non-poisoning
//! [`Mutex`]/[`RwLock`] over the std primitives. Slower than real
//! parking_lot under contention, but semantically equivalent for the
//! short critical sections this codebase holds.

use std::sync::{self, TryLockError};

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (a panicked holder does not poison it).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire without blocking; `None` if currently held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
