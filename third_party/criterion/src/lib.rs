//! Vendored minimal reimplementation of the `criterion` API surface used
//! by VoxOLAP's benches (see `third_party/README.md`).
//!
//! No statistics engine: each benchmark is calibrated to a target
//! wall-clock window and the mean time per iteration is printed as
//! `bench <group>/<id> ... <time>/iter`. Enough to compare hot-path
//! changes; not a replacement for real criterion runs.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Name of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Throughput annotation (printed alongside the timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Times one closure; handed to benchmark functions.
pub struct Bencher<'a> {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: &'a mut f64,
    measurement: Duration,
}

impl Bencher<'_> {
    /// Run `routine` repeatedly and record its mean time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: double the batch until it costs >= ~1/8 of the window.
        let mut batch: u64 = 1;
        let per_iter;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= self.measurement / 8 || batch >= 1 << 30 {
                per_iter = elapsed.as_secs_f64() / batch as f64;
                break;
            }
            batch = batch.saturating_mul(2);
        }
        // Measure: as many batches as fit in the remaining window.
        let runs = ((self.measurement.as_secs_f64() / (per_iter * batch as f64 + 1e-12)).ceil()
            as u64)
            .clamp(1, 64);
        let t0 = Instant::now();
        for _ in 0..runs * batch {
            black_box(routine());
        }
        *self.ns_per_iter = t0.elapsed().as_secs_f64() * 1e9 / (runs * batch) as f64;
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(
    label: &str,
    throughput: Option<Throughput>,
    measurement: Duration,
    f: &mut dyn FnMut(&mut Bencher<'_>),
) {
    let mut ns = f64::NAN;
    let mut b = Bencher { ns_per_iter: &mut ns, measurement };
    f(&mut b);
    let extra = match throughput {
        Some(Throughput::Elements(n)) => format!("  ({:.0} elem/s)", n as f64 * 1e9 / ns),
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MiB/s)", n as f64 * 1e9 / ns / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!("bench {label:<48} {:>12}/iter{extra}", human(ns));
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement: Duration::from_millis(300) }
    }
}

impl Criterion {
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        run_one(&id.into().to_string(), None, self.measurement, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            measurement: self.measurement,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Adjust the per-benchmark wall-clock window.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement = t;
        self
    }

    /// Configuration hook (accepted; the stub has no sample statistics).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement: Duration,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement = t;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.throughput, self.measurement, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher<'_>, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.throughput, self.measurement, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Mirror of `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut ns = f64::NAN;
        let mut b = Bencher { ns_per_iter: &mut ns, measurement: Duration::from_millis(20) };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(black_box(1));
            x
        });
        assert!(ns.is_finite() && ns > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { measurement: Duration::from_millis(5) };
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(10));
        g.bench_function("f", |b| b.iter(|| black_box(2 + 2)));
        g.bench_with_input(BenchmarkId::new("p", 3), &3u32, |b, &x| b.iter(|| black_box(x * 2)));
        g.finish();
    }
}
