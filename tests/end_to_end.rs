//! Cross-crate integration tests: the full pipeline from raw data through
//! query parsing, sampling, planning, and vocalization.

use voxolap_core::approach::Vocalizer;
use voxolap_core::holistic::{Holistic, HolisticConfig};
use voxolap_core::optimal::Optimal;
use voxolap_core::prior::PriorGreedy;
use voxolap_core::unmerged::{SamplingBudget, Unmerged, UnmergedConfig};
use voxolap_core::voice::{InstantVoice, VirtualVoice, VoiceOutput as _};
use voxolap_data::dimension::LevelId;
use voxolap_data::flights::FlightsConfig;
use voxolap_data::salary::SalaryConfig;
use voxolap_data::DimId;
use voxolap_engine::query::{AggFct, Query};
use voxolap_voice::session::Session;
use voxolap_voice::tts::RealTimeVoice;

fn fast_holistic(seed: u64) -> Holistic {
    Holistic::new(HolisticConfig {
        min_samples_per_sentence: 300,
        max_tree_nodes: 50_000,
        seed,
        ..HolisticConfig::default()
    })
}

#[test]
fn all_approaches_answer_the_same_query() {
    let table = FlightsConfig { rows: 20_000, seed: 42 }.generate();
    let query = Query::builder(AggFct::Avg)
        .group_by(DimId(0), LevelId(1))
        .group_by(DimId(1), LevelId(1))
        .build(table.schema())
        .unwrap();

    let approaches: Vec<Box<dyn Vocalizer>> = vec![
        Box::new(fast_holistic(1)),
        Box::new(Optimal::default()),
        Box::new(Unmerged::new(UnmergedConfig {
            budget: SamplingBudget::Iterations(600),
            max_tree_nodes: 50_000,
            ..UnmergedConfig::default()
        })),
        Box::new(PriorGreedy),
    ];
    for approach in &approaches {
        let mut voice = InstantVoice::default();
        let outcome = approach.vocalize(&table, &query, &mut voice);
        assert!(!outcome.sentences.is_empty(), "{} produced no sentences", approach.name());
        let text = outcome.full_text();
        assert!(text.contains("cancellation probability"), "{}: {text}", approach.name());
    }
}

#[test]
fn keyword_session_drives_full_pipeline_with_realtime_voice() {
    let table = FlightsConfig { rows: 10_000, seed: 42 }.generate();
    let mut session = Session::new(&table);
    session.input("break down by season").unwrap();
    session.input("only the north east").unwrap();

    // A very fast wall-clock voice: the planner genuinely overlaps
    // sampling with (short) real speaking time.
    let mut voice = RealTimeVoice::new(20_000.0);
    let outcome =
        session.vocalize_with(&fast_holistic(2), &mut voice).expect("session query is valid");
    voice.wait_until_done();

    assert!(outcome.preamble.contains("the North East"));
    assert!(outcome.preamble.contains("broken down by season"));
    assert_eq!(voice.transcript().len(), 1 + outcome.sentences.len());
}

#[test]
fn count_and_sum_queries_vocalize() {
    let table = SalaryConfig::paper_scale().generate();
    for fct in [AggFct::Count, AggFct::Sum] {
        let query =
            Query::builder(fct).group_by(DimId(0), LevelId(1)).build(table.schema()).unwrap();
        let mut voice = InstantVoice::default();
        let outcome = fast_holistic(3).vocalize(&table, &query, &mut voice);
        assert!(!outcome.sentences.is_empty(), "{fct:?}");
        let expected = match fct {
            AggFct::Count => "number of",
            AggFct::Sum => "total",
            AggFct::Avg => unreachable!(),
        };
        assert!(outcome.sentences[0].contains(expected), "{fct:?}: {}", outcome.sentences[0]);
    }
}

#[test]
fn speech_respects_char_budget_across_approaches() {
    let table = SalaryConfig::paper_scale().generate();
    let query = Query::builder(AggFct::Avg)
        .group_by(DimId(0), LevelId(2)) // 16 states: longer sentences
        .build(table.schema())
        .unwrap();
    let mut voice = InstantVoice::default();
    let holistic = fast_holistic(4).vocalize(&table, &query, &mut voice);
    assert!(holistic.body_len() <= 300, "holistic body {} chars", holistic.body_len());
    let optimal = Optimal::default().vocalize(&table, &query, &mut voice);
    assert!(optimal.body_len() <= 300, "optimal body {} chars", optimal.body_len());
    // The prior approach has no budget — on purpose.
    let prior = PriorGreedy.vocalize(&table, &query, &mut voice);
    assert!(prior.body_len() > 0);
}

#[test]
fn pipelining_reads_more_rows_on_larger_data() {
    // The same speaking time buys the planner more data on a larger table
    // — rows_read scales with what's available, not with a fixed budget.
    let small = FlightsConfig { rows: 2_000, seed: 42 }.generate();
    let large = FlightsConfig { rows: 50_000, seed: 42 }.generate();
    let query = |t: &voxolap_data::Table| {
        Query::builder(AggFct::Avg).group_by(DimId(1), LevelId(1)).build(t.schema()).unwrap()
    };
    let mut voice = VirtualVoice::new(60.0);
    let o_small = fast_holistic(5).vocalize(&small, &query(&small), &mut voice);
    let mut voice = VirtualVoice::new(60.0);
    let o_large = fast_holistic(5).vocalize(&large, &query(&large), &mut voice);
    assert!(o_large.stats.rows_read > o_small.stats.rows_read);
    assert_eq!(o_small.stats.rows_read, 2_000, "small table is fully consumed");
}

#[test]
fn filters_shrink_the_preamble_scope() {
    let table = FlightsConfig { rows: 5_000, seed: 42 }.generate();
    let schema = table.schema();
    let winter = schema.dimension(DimId(1)).member_by_phrase("Winter").unwrap();
    let query = Query::builder(AggFct::Avg)
        .filter(DimId(1), winter)
        .group_by(DimId(0), LevelId(1))
        .build(schema)
        .unwrap();
    let mut voice = InstantVoice::default();
    let outcome = fast_holistic(6).vocalize(&table, &query, &mut voice);
    assert!(outcome.preamble.contains("flights scheduled in Winter"));
    assert!(outcome.preamble.contains("broken down by region"));
}

#[test]
fn star_schema_pipeline_matches_denormalized() {
    use voxolap_data::star::StarSchema;
    let denorm = FlightsConfig { rows: 8_000, seed: 42 }.generate();
    let star = StarSchema::from_table(&denorm, 11);
    let table = star.materialize().expect("valid star rows");
    let query =
        Query::builder(AggFct::Avg).group_by(DimId(1), LevelId(1)).build(table.schema()).unwrap();
    // Exact results over the materialized star equal the denormalized ones.
    let a = voxolap_engine::exact::evaluate(&query, &denorm);
    let b = voxolap_engine::exact::evaluate(&query, &table);
    for agg in 0..query.n_aggregates() as u32 {
        assert_eq!(a.count(agg), b.count(agg));
    }
    // And the planner runs over it unchanged.
    let mut voice = InstantVoice::default();
    let outcome = fast_holistic(12).vocalize(&table, &query, &mut voice);
    assert!(!outcome.sentences.is_empty());
}

#[test]
fn question_to_speech_end_to_end() {
    use voxolap_voice::question::parse_question;
    let table = FlightsConfig { rows: 12_000, seed: 42 }.generate();
    // The paper's Example 1.1 question, end to end.
    let query = parse_question(
        table.schema(),
        "How does the flight cancellation probability in New York depend \
         on flight date and start airport?",
    )
    .expect("question parses");
    let mut voice = InstantVoice::default();
    let outcome = fast_holistic(13).vocalize(&table, &query, &mut voice);
    assert!(outcome.preamble.contains("New York"));
    assert!(outcome.preamble.contains("broken down by"));
    assert!(!outcome.sentences.is_empty());
}

#[test]
fn parallel_holistic_through_session() {
    use voxolap_core::parallel::ParallelHolistic;
    let table = FlightsConfig { rows: 6_000, seed: 42 }.generate();
    let mut session = Session::new(&table);
    session.input("break down by season").unwrap();
    let engine = ParallelHolistic::new(HolisticConfig {
        min_samples_per_sentence: 100,
        max_tree_nodes: 30_000,
        ..HolisticConfig::default()
    })
    .with_threads(4);
    let mut voice = RealTimeVoice::new(5_000.0);
    let outcome = session.vocalize_with(&engine, &mut voice).unwrap();
    voice.wait_until_done();
    assert!(!outcome.sentences.is_empty());
    assert!(outcome.speech.is_some());
}

#[test]
fn parallel_single_thread_matches_holistic_on_flights() {
    use voxolap_core::parallel::ParallelHolistic;
    use voxolap_voice::question::parse_question;
    let table = FlightsConfig { rows: 6_000, seed: 42 }.generate();
    let query = parse_question(
        table.schema(),
        "how does the cancellation probability depend on region and season?",
    )
    .expect("question parses");
    let cfg = HolisticConfig {
        min_samples_per_sentence: 300,
        max_tree_nodes: 30_000,
        resample_size: 200,
        ..HolisticConfig::default()
    };
    let mut v1 = InstantVoice::default();
    let seq = Holistic::new(cfg.clone()).vocalize(&table, &query, &mut v1);
    let mut v2 = InstantVoice::default();
    let par = ParallelHolistic::new(cfg).with_threads(1).vocalize(&table, &query, &mut v2);
    assert_eq!(par.sentences, seq.sentences);
    assert_eq!(par.stats.samples, seq.stats.samples);
}
