//! Chaos suite: 100 deterministic, seeded fault schedules thrown at the
//! holistic and parallel engines (DESIGN.md §12).
//!
//! Each seed derives a randomized [`FaultPlan`] — read/sample/shard/emit
//! error probabilities, optional injected latency, a per-run fault budget,
//! and breaker settings — and vocalizes a real query under it. Invariants
//! checked for every run:
//!
//! 1. no panic escapes the engine (a poisoned shard or dead source must
//!    degrade, not crash);
//! 2. exactly one answer is accounted, clean xor degraded;
//! 3. the spoken text is never empty, and a "No data" fallback on a table
//!    that *has* data is always marked degraded;
//! 4. every non-empty body still parses under the speech grammar, and the
//!    induced beliefs stay consistent with the baseline (Theorem A.1:
//!    the average of belief means equals the spoken baseline).
//!
//! The whole suite runs under a watchdog; a hang or a failing seed writes
//! the seed to `$CARGO_TARGET_TMPDIR/chaos-failure-seed.txt` so CI can
//! surface exactly which schedule to replay.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use voxolap_core::approach::Vocalizer;
use voxolap_core::holistic::{Holistic, HolisticConfig};
use voxolap_core::outcome::VocalizationOutcome;
use voxolap_core::parallel::ParallelHolistic;
use voxolap_core::voice::InstantVoice;
use voxolap_data::dimension::LevelId;
use voxolap_data::flights::FlightsConfig;
use voxolap_data::{DimId, Table};
use voxolap_engine::query::{AggFct, Query};
use voxolap_faults::{FaultPlan, FaultSite, Resilience, SiteSchedule};
use voxolap_speech::parse::parse_body;
use voxolap_speech::scope::CompiledSpeech;

/// Number of randomized schedules.
const SEEDS: u64 = 100;

/// Hard ceiling for the whole suite; the watchdog aborts past it so a
/// hung schedule fails CI with the offending seed on record instead of
/// idling until the job timeout.
const WATCHDOG: Duration = Duration::from_secs(300);

/// Where a hang or failure records its seed (uploaded as a CI artifact).
const FAILURE_SEED_FILE: &str = concat!(env!("CARGO_TARGET_TMPDIR"), "/chaos-failure-seed.txt");

const NO_DATA: &str = "No data matches the query scope.";

fn record_failure_seed(seed: u64, why: &str) {
    let _ = std::fs::write(FAILURE_SEED_FILE, format!("seed={seed}\nreason={why}\n"));
}

fn table() -> Table {
    FlightsConfig { rows: 4_000, seed: 42 }.generate()
}

fn query(table: &Table, two_dims: bool) -> Query {
    let mut b = Query::builder(AggFct::Avg).group_by(DimId(0), LevelId(1));
    if two_dims {
        b = b.group_by(DimId(1), LevelId(1));
    }
    b.build(table.schema()).unwrap()
}

/// Derive one randomized-but-deterministic resilience bundle from `seed`.
fn chaos_resilience(seed: u64) -> Arc<Resilience> {
    let mut gen = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut plan = FaultPlan::new(seed);
    // Sample-fault probability stays ≤ 0.5 so planning always makes
    // progress between faults; read faults may be total (breaker + cache
    // fallback must carry the answer then).
    plan = plan.with_site(
        FaultSite::DataRead,
        SiteSchedule {
            probability: gen.gen_range(0.0..=1.0),
            latency: Duration::from_micros(gen.gen_range(0..100)),
            error: true,
        },
    );
    plan = plan.with_site(FaultSite::Sample, SiteSchedule::error(gen.gen_range(0.0..0.5)));
    plan = plan.with_site(FaultSite::CacheShard, SiteSchedule::error(gen.gen_range(0.0..0.05)));
    plan = plan.with_site(FaultSite::Emit, SiteSchedule::error(gen.gen_range(0.0..0.1)));
    let budget = gen.gen_range(16..256);
    let threshold = gen.gen_range(2..6);
    Arc::new(
        Resilience::new(Some(plan))
            .with_budget(budget)
            .with_breaker(threshold, Duration::from_millis(1)),
    )
}

fn engine_for(seed: u64, res: Arc<Resilience>) -> Box<dyn Vocalizer> {
    let config = HolisticConfig {
        min_samples_per_sentence: 200,
        max_tree_nodes: 30_000,
        seed,
        ..HolisticConfig::default()
    };
    // Alternate single-threaded and multi-threaded engines so both the
    // cooperative and the sharded/lock-free paths face every schedule
    // shape (shard faults only exist on the parallel path).
    if seed.is_multiple_of(2) {
        Box::new(Holistic::new(config).with_resilience(res))
    } else {
        Box::new(ParallelHolistic::new(config).with_threads(2).with_resilience(res))
    }
}

/// Check the per-run invariants; returns an error description on the
/// first violation instead of panicking so the caller can attach the seed.
fn check_invariants(
    table: &Table,
    q: &Query,
    res: &Resilience,
    outcome: &VocalizationOutcome,
) -> Result<(), String> {
    let snap = res.stats().snapshot();
    if snap.clean_answers + snap.degraded_answers != 1 {
        return Err(format!(
            "run accounted {} clean + {} degraded answers, want exactly 1",
            snap.clean_answers, snap.degraded_answers
        ));
    }
    if (snap.degraded_answers == 1) != outcome.stats.degraded {
        return Err(format!(
            "stats counter ({} degraded) disagrees with outcome flag ({})",
            snap.degraded_answers, outcome.stats.degraded
        ));
    }
    let text = outcome.full_text();
    if text.is_empty() {
        return Err("empty spoken text".to_string());
    }
    let body = outcome.body_text();
    if body == NO_DATA {
        // The chaos table always has matching rows: a no-data answer can
        // only come from the degradation ladder and must say so.
        if !outcome.stats.degraded {
            return Err("no-data fallback not marked degraded".to_string());
        }
        return Ok(());
    }
    if outcome.sentences.is_empty() {
        return Err("non-degraded run delivered no body sentences".to_string());
    }
    // Grammar validity + Theorem A.1: whatever survived the faults must
    // still parse as a speech whose induced belief means average back to
    // the spoken baseline.
    let speech = parse_body(&body, table.schema(), q)
        .map_err(|e| format!("body fails the speech grammar: {e} (body: {body:?})"))?;
    let cs = CompiledSpeech::compile(&speech, q.layout(), table.schema());
    let means = cs.means_all(q.layout());
    let avg = means.iter().sum::<f64>() / means.len() as f64;
    let baseline = speech.baseline.value;
    if (avg - baseline).abs() > 1e-6 * baseline.abs().max(1.0) {
        return Err(format!("belief means average {avg} != baseline {baseline}"));
    }
    Ok(())
}

#[test]
fn hundred_seeded_fault_schedules_never_break_the_invariants() {
    let _ = std::fs::remove_file(FAILURE_SEED_FILE);
    let t = table();
    let start = Instant::now();
    let done = Arc::new(AtomicBool::new(false));
    let current_seed = Arc::new(AtomicU64::new(0));
    let watchdog = {
        let done = Arc::clone(&done);
        let current = Arc::clone(&current_seed);
        std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                if start.elapsed() > WATCHDOG {
                    let seed = current.load(Ordering::Relaxed);
                    record_failure_seed(seed, "watchdog: suite hung");
                    eprintln!("chaos watchdog fired at seed {seed}; aborting");
                    std::process::abort();
                }
                std::thread::sleep(Duration::from_millis(200));
            }
        })
    };

    let mut degraded_runs = 0u64;
    let mut injected_total = 0u64;
    for seed in 0..SEEDS {
        current_seed.store(seed, Ordering::Relaxed);
        let res = chaos_resilience(seed);
        let q = query(&t, seed % 3 != 0);
        let engine = engine_for(seed, Arc::clone(&res));
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut voice = InstantVoice::default();
            engine.vocalize(&t, &q, &mut voice)
        }))
        .unwrap_or_else(|e| {
            record_failure_seed(seed, "panic escaped the engine");
            std::panic::resume_unwind(e);
        });
        if let Err(why) = check_invariants(&t, &q, &res, &outcome) {
            record_failure_seed(seed, &why);
            panic!("seed {seed}: {why}");
        }
        degraded_runs += u64::from(outcome.stats.degraded);
        injected_total += res.injector().map_or(0, |inj| inj.total_injected());
    }
    done.store(true, Ordering::Relaxed);
    watchdog.join().unwrap();

    // The schedules must actually bite: plenty of injected faults, some
    // degraded answers, and some runs that rode the faults out clean.
    assert!(injected_total > 100, "only {injected_total} faults injected across the suite");
    assert!(degraded_runs > 0, "no schedule degraded an answer");
    assert!(degraded_runs < SEEDS, "every schedule degraded; mild ones should survive clean");
}

#[test]
fn total_read_outage_on_the_morsel_path_still_answers() {
    // DataRead probability 1.0: every attempt to pull rows off the shared
    // morsel pool is refused, the breaker opens, and no worker ever claims
    // a morsel — at any thread count the engine must still deliver the
    // (degraded) no-data fallback instead of hanging or panicking.
    let t = table();
    let q = query(&t, true);
    for threads in [1usize, 2, 4] {
        let plan = FaultPlan::new(5).with_site(
            FaultSite::DataRead,
            SiteSchedule { probability: 1.0, latency: Duration::ZERO, error: true },
        );
        let res = Arc::new(
            Resilience::new(Some(plan)).with_budget(64).with_breaker(3, Duration::from_millis(1)),
        );
        let config = HolisticConfig {
            min_samples_per_sentence: 200,
            max_tree_nodes: 30_000,
            seed: 5,
            ..HolisticConfig::default()
        };
        let mut voice = InstantVoice::default();
        let outcome = ParallelHolistic::new(config)
            .with_threads(threads)
            .with_resilience(Arc::clone(&res))
            .vocalize(&t, &q, &mut voice);
        assert!(!outcome.full_text().is_empty(), "{threads} threads: silent engine");
        assert!(outcome.stats.degraded, "{threads} threads: outage answer not marked degraded");
        assert_eq!(
            outcome.stats.rows_read, 0,
            "{threads} threads: breaker-open workers must not consume morsels"
        );
        let snap = res.stats().snapshot();
        assert_eq!(snap.clean_answers + snap.degraded_answers, 1, "{threads} threads");
    }
}

/// Fault schedules firing while append + repair traffic flows (DESIGN.md
/// §16): every iteration fills a shared cache clean, appends a batch —
/// making all cached entries version-stale — and replans under a
/// randomized fault plan. The cache must never pass a wrong-version
/// result off as fresh: a stale entry never counts as an exact hit, and
/// any stale serve must surface on the answer as `stale: true` (riding
/// the degradation ladder, so it is also marked degraded). No schedule
/// may let a panic escape the append/repair path.
#[test]
fn append_chaos_never_serves_wrong_version_results_unmarked() {
    use voxolap_data::schema::MeasureId;
    use voxolap_data::{DimValue, IngestRow, LiveTable};
    use voxolap_engine::semantic::SemanticCache;

    let base = table();
    let live = LiveTable::new(base.clone());
    let echo = |start: usize, n: usize| -> Vec<IngestRow> {
        let schema = base.schema();
        (0..n)
            .map(|i| {
                let row = (start + i) % base.row_count();
                IngestRow {
                    dims: (0..schema.dimensions().len())
                        .map(|d| {
                            let id = DimId(d as u8);
                            let member = base.member_at(id, row);
                            DimValue::Phrase(schema.dimension(id).member(member).phrase.clone())
                        })
                        .collect(),
                    values: (0..schema.measures().len())
                        .map(|m| base.measure_value(MeasureId(m as u8), row))
                        .collect(),
                }
            })
            .collect()
    };

    let mut repairs_total = 0u64;
    let mut stale_total = 0u64;
    for seed in 0..40u64 {
        let cache = Arc::new(SemanticCache::with_capacity_mb(16));
        let config = HolisticConfig {
            min_samples_per_sentence: 200,
            max_tree_nodes: 30_000,
            seed,
            ..HolisticConfig::default()
        };
        let engine = |res: Option<Arc<Resilience>>| -> Box<dyn Vocalizer> {
            if seed.is_multiple_of(2) {
                let mut v = Holistic::new(config.clone()).with_cache(Arc::clone(&cache));
                if let Some(res) = res {
                    v = v.with_resilience(res);
                }
                Box::new(v)
            } else {
                let mut v = ParallelHolistic::new(config.clone())
                    .with_threads(2)
                    .with_cache(Arc::clone(&cache));
                if let Some(res) = res {
                    v = v.with_resilience(res);
                }
                Box::new(v)
            }
        };
        let two_dims = seed % 3 != 0;
        // Fault-free warm-up on the current revision fills the cache.
        {
            let snap = live.snapshot();
            let q = query(&snap, two_dims);
            let mut voice = InstantVoice::default();
            engine(None).vocalize(&snap, &q, &mut voice);
        }
        let before = cache.stats();
        live.append_rows(&echo(seed as usize * 100, 100)).expect("append");
        let res = chaos_resilience(seed);
        let snap = live.snapshot();
        let q = query(&snap, two_dims);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut voice = InstantVoice::default();
            engine(Some(Arc::clone(&res))).vocalize(&snap, &q, &mut voice)
        }))
        .unwrap_or_else(|e| {
            record_failure_seed(seed, "panic escaped the append/repair path");
            std::panic::resume_unwind(e);
        });
        let after = cache.stats();
        let stale_serves = after.stale_serves - before.stale_serves;
        if stale_serves > 0 && !outcome.stats.stale {
            record_failure_seed(seed, "stale serve not marked on the answer");
            panic!("seed {seed}: {stale_serves} stale serves but the answer is unmarked");
        }
        if outcome.stats.stale && !outcome.stats.degraded {
            record_failure_seed(seed, "stale answer not marked degraded");
            panic!("seed {seed}: a stale answer must ride the degradation ladder");
        }
        if after.exact_hits != before.exact_hits {
            record_failure_seed(seed, "version-stale exact entry served as a fresh hit");
            panic!("seed {seed}: a wrong-version exact entry was counted as a fresh hit");
        }
        repairs_total += after.snapshot_repairs - before.snapshot_repairs;
        stale_total += stale_serves;
    }
    // The schedule mix must exercise both outcomes: snapshots repaired
    // under fire, and at least one schedule harsh enough that the ladder
    // fell back to the (marked) stale exact answer.
    assert!(repairs_total > 0, "no snapshot was ever repaired under chaos");
    assert!(stale_total > 0, "no schedule forced a stale exact serve");
}

#[test]
fn inert_resilience_is_bit_identical_to_no_resilience() {
    // The zero-cost-when-disabled guarantee, end to end: an attached but
    // fault-free bundle must not change a single byte of the transcript
    // or a single planner statistic, single-threaded.
    let t = table();
    for two_dims in [false, true] {
        let q = query(&t, two_dims);
        let config = HolisticConfig {
            min_samples_per_sentence: 200,
            max_tree_nodes: 30_000,
            seed: 7,
            ..HolisticConfig::default()
        };
        let mut v1 = InstantVoice::default();
        let bare = Holistic::new(config.clone()).vocalize(&t, &q, &mut v1);
        let mut v2 = InstantVoice::default();
        let inert = Holistic::new(config.clone())
            .with_resilience(Arc::new(Resilience::default()))
            .vocalize(&t, &q, &mut v2);
        assert_eq!(inert.preamble, bare.preamble);
        assert_eq!(inert.sentences, bare.sentences);
        assert_eq!(inert.stats.samples, bare.stats.samples);
        assert_eq!(inert.stats.rows_read, bare.stats.rows_read);
        assert!(!inert.stats.degraded);

        let mut v3 = InstantVoice::default();
        let par_bare =
            ParallelHolistic::new(config.clone()).with_threads(1).vocalize(&t, &q, &mut v3);
        let mut v4 = InstantVoice::default();
        let par_inert = ParallelHolistic::new(config)
            .with_threads(1)
            .with_resilience(Arc::new(Resilience::default()))
            .vocalize(&t, &q, &mut v4);
        assert_eq!(par_inert.sentences, par_bare.sentences);
        assert_eq!(par_inert.stats.samples, par_bare.stats.samples);
        assert_eq!(par_bare.sentences, bare.sentences, "parallel(1) tracks holistic");
    }
}
