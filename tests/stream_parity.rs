//! Stream/blocking parity: the pull-based [`SpeechStream`] must deliver
//! exactly the transcript `vocalize()` produces — for every approach, at
//! one and at four planning threads, and regardless of semantic-cache
//! state (cold, exact hit, warm start).
//!
//! [`SpeechStream`]: voxolap_core::SpeechStream

use std::sync::Arc;

use voxolap_core::approach::Vocalizer;
use voxolap_core::holistic::{Holistic, HolisticConfig};
use voxolap_core::optimal::Optimal;
use voxolap_core::parallel::ParallelHolistic;
use voxolap_core::prior::PriorGreedy;
use voxolap_core::unmerged::{SamplingBudget, Unmerged, UnmergedConfig};
use voxolap_core::voice::{InstantVoice, VoiceOutput as _};
use voxolap_core::CancelToken;
use voxolap_data::dimension::LevelId;
use voxolap_data::flights::FlightsConfig;
use voxolap_data::{DimId, Table};
use voxolap_engine::query::{AggFct, Query};
use voxolap_engine::semantic::SemanticCache;

fn table() -> Table {
    FlightsConfig { rows: 6_000, seed: 42 }.generate()
}

fn region_season(table: &Table) -> Query {
    Query::builder(AggFct::Avg)
        .group_by(DimId(0), LevelId(1))
        .group_by(DimId(1), LevelId(1))
        .build(table.schema())
        .unwrap()
}

fn region_only(table: &Table) -> Query {
    Query::builder(AggFct::Avg).group_by(DimId(0), LevelId(1)).build(table.schema()).unwrap()
}

fn config(seed: u64) -> HolisticConfig {
    HolisticConfig { min_samples_per_sentence: 300, seed, ..HolisticConfig::default() }
}

/// Drain a stream sentence by sentence, asserting internal consistency —
/// the collected sequence must equal both the `finish()` outcome and the
/// voice transcript — and return (preamble, sentences).
fn streamed(v: &dyn Vocalizer, table: &Table, query: &Query) -> (String, Vec<String>) {
    let mut voice = InstantVoice::default();
    let mut stream = v.stream(table, query, &mut voice, CancelToken::never());
    let preamble = stream.preamble().to_string();
    let mut collected = Vec::new();
    while let Some(s) = stream.next_sentence() {
        assert_eq!(s.index, collected.len(), "{}: indices are sequential", v.name());
        collected.push(s.text);
    }
    let outcome = stream.finish();
    assert_eq!(outcome.preamble, preamble, "{}", v.name());
    assert_eq!(outcome.sentences, collected, "{}: finish() must mirror the stream", v.name());
    let mut spoken = vec![preamble.clone()];
    spoken.extend(collected.iter().cloned());
    assert_eq!(voice.transcript(), &spoken[..], "{}: voice heard every sentence once", v.name());
    (preamble, collected)
}

/// The blocking transcript via the `vocalize()` drain adapter.
fn blocking(v: &dyn Vocalizer, table: &Table, query: &Query) -> (String, Vec<String>) {
    let mut voice = InstantVoice::default();
    let o = v.vocalize(table, query, &mut voice);
    (o.preamble, o.sentences)
}

#[test]
fn stream_matches_blocking_for_every_approach() {
    let t = table();
    let q = region_season(&t);
    let approaches: Vec<Box<dyn Vocalizer>> = vec![
        Box::new(Holistic::new(config(7))),
        Box::new(ParallelHolistic::new(config(7)).with_threads(1)),
        Box::new(Optimal::default()),
        Box::new(Unmerged::new(UnmergedConfig {
            budget: SamplingBudget::Iterations(600),
            seed: 7,
            ..UnmergedConfig::default()
        })),
        Box::new(PriorGreedy),
    ];
    for v in &approaches {
        let s = streamed(v.as_ref(), &t, &q);
        let b = blocking(v.as_ref(), &t, &q);
        assert_eq!(s, b, "{}: streamed and blocking transcripts differ", v.name());
        assert!(!s.1.is_empty(), "{}: no sentences", v.name());
    }
}

#[test]
fn four_thread_stream_is_internally_consistent() {
    let t = table();
    let q = region_season(&t);
    // Multi-thread sampling is not reproducible run to run, so parity is
    // asserted within one run (collected == finish() == transcript, via
    // the helper) rather than against a second blocking run.
    let v = ParallelHolistic::new(config(7)).with_threads(4);
    let (_, sentences) = streamed(&v, &t, &q);
    assert!(!sentences.is_empty());
}

/// A semantic cache holding the exact result of `q` (admitted by the
/// optimal approach, which always evaluates exactly).
fn cache_with_exact(t: &Table, q: &Query) -> Arc<SemanticCache> {
    let cache = Arc::new(SemanticCache::with_capacity_mb(16));
    let opt = Optimal::default().with_cache(cache.clone());
    let mut voice = InstantVoice::default();
    let _ = opt.vocalize(t, q, &mut voice);
    assert!(cache.stats().admissions >= 1, "seeding run must admit");
    cache
}

#[test]
fn exact_hit_stream_matches_blocking() {
    let t = table();
    let q = region_season(&t);
    // Identically-seeded caches for the two runs keep them independent.
    for threads in [1usize, 4] {
        let s_engine = ParallelHolistic::new(config(7))
            .with_threads(threads)
            .with_cache(cache_with_exact(&t, &q));
        let b_engine = ParallelHolistic::new(config(7))
            .with_threads(threads)
            .with_cache(cache_with_exact(&t, &q));
        // Exact hits skip sampling entirely, so even the multi-threaded
        // engine is deterministic here and full parity holds.
        let s = streamed(&s_engine, &t, &q);
        let b = blocking(&b_engine, &t, &q);
        assert_eq!(s, b, "threads={threads}: exact-hit transcripts differ");
    }
    let s_engine = Holistic::new(config(7)).with_cache(cache_with_exact(&t, &q));
    let b_engine = Holistic::new(config(7)).with_cache(cache_with_exact(&t, &q));
    assert_eq!(streamed(&s_engine, &t, &q), blocking(&b_engine, &t, &q));
}

#[test]
fn warm_started_stream_matches_blocking() {
    let t = table();
    let donor = region_only(&t);
    let target = region_season(&t);
    // Each run gets its own cache, populated by an identical donor query,
    // so the streamed and the blocking run warm-start from equal snapshots.
    let seeded = || {
        let cache = Arc::new(SemanticCache::with_capacity_mb(16));
        let engine = Holistic::new(config(7)).with_cache(cache.clone());
        let mut voice = InstantVoice::default();
        let _ = engine.vocalize(&t, &donor, &mut voice);
        assert!(cache.stats().admissions >= 1, "donor run must admit");
        cache
    };
    let s_cache = seeded();
    let b_cache = seeded();
    let s = streamed(&Holistic::new(config(7)).with_cache(s_cache.clone()), &t, &target);
    let b = blocking(&Holistic::new(config(7)).with_cache(b_cache.clone()), &t, &target);
    assert_eq!(s, b, "warm-started transcripts differ");
    let (ss, bs) = (s_cache.stats(), b_cache.stats());
    assert_eq!(
        (ss.exact_hits, ss.warm_hits),
        (bs.exact_hits, bs.warm_hits),
        "both runs must be served by the same cache layer"
    );
}
