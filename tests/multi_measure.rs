//! Integration tests of the multi-measure extension (paper §2's "multiple
//! functions and columns"): the flights dataset carries both a 0/1
//! cancellation flag and a departure-delay column, and queries pick which
//! to aggregate.

use voxolap_core::approach::Vocalizer;
use voxolap_core::holistic::{Holistic, HolisticConfig};
use voxolap_core::optimal::Optimal;
use voxolap_core::voice::InstantVoice;
use voxolap_data::dimension::LevelId;
use voxolap_data::flights::FlightsConfig;
use voxolap_data::schema::MeasureId;
use voxolap_data::DimId;
use voxolap_engine::exact::evaluate;
use voxolap_engine::query::{AggFct, Query};

#[test]
fn delay_queries_aggregate_the_second_measure() {
    let table = FlightsConfig { rows: 30_000, seed: 42 }.generate();
    let by_season = |m: MeasureId| {
        Query::builder(AggFct::Avg)
            .measure(m)
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap()
    };
    let cancel = evaluate(&by_season(MeasureId::PRIMARY), &table);
    let delay = evaluate(&by_season(MeasureId(1)), &table);
    // Same groups, utterly different scales.
    assert_eq!(cancel.len(), delay.len());
    assert!(cancel.grand_mean() < 0.05);
    assert!(delay.grand_mean() > 5.0, "delays in minutes: {}", delay.grand_mean());
    // Both measures agree that Winter is worst (shared risk landscape).
    let date = table.schema().dimension(DimId(1));
    let winter_idx = by_season(MeasureId(1))
        .layout()
        .coords(DimId(1))
        .iter()
        .position(|&m| date.member(m).phrase == "Winter")
        .unwrap() as u32;
    let max_delay = delay.values().iter().cloned().fold(f64::MIN, f64::max);
    assert_eq!(delay.value(winter_idx), max_delay);
}

#[test]
fn vocalizers_speak_the_selected_measure() {
    let table = FlightsConfig { rows: 20_000, seed: 42 }.generate();
    let query = Query::builder(AggFct::Avg)
        .measure(MeasureId(1))
        .group_by(DimId(1), LevelId(1))
        .build(table.schema())
        .unwrap();
    let holistic = Holistic::new(HolisticConfig {
        min_samples_per_sentence: 2_000,
        ..HolisticConfig::default()
    });
    let mut voice = InstantVoice::default();
    let outcome = holistic.vocalize(&table, &query, &mut voice);
    let body = outcome.body_text();
    assert!(body.contains("average departure delay in minutes"), "{body}");
    assert!(!body.contains("percent is the average"), "plain unit, not percent: {body}");
    // The baseline lands near the true mean delay.
    let v = outcome.speech.unwrap().baseline.value;
    let truth = evaluate(&query, &table).grand_mean();
    assert!((v - truth).abs() < truth, "baseline {v} vs truth {truth}");

    let mut voice = InstantVoice::default();
    let optimal = Optimal::default().vocalize(&table, &query, &mut voice);
    assert!(optimal.body_text().contains("departure delay"));
}

#[test]
fn count_queries_speak_row_counts() {
    let table = FlightsConfig { rows: 10_000, seed: 42 }.generate();
    let query =
        Query::builder(AggFct::Count).group_by(DimId(1), LevelId(1)).build(table.schema()).unwrap();
    let mut voice = InstantVoice::default();
    let outcome = Optimal::default().vocalize(&table, &query, &mut voice);
    let body = outcome.body_text();
    assert!(body.contains("is the number of rows"), "{body}");
    assert!(!body.contains("percent is the"), "{body}");
    // True per-season count is 2500; the spoken baseline grid value must
    // be in its neighbourhood.
    let v = outcome.speech.unwrap().baseline.value;
    assert!((1500.0..=4000.0).contains(&v), "count baseline {v}");
}

#[test]
fn bad_measure_id_is_rejected_at_build() {
    let table = FlightsConfig { rows: 100, seed: 1 }.generate();
    let err = Query::builder(AggFct::Avg)
        .measure(MeasureId(7))
        .group_by(DimId(1), LevelId(1))
        .build(table.schema())
        .unwrap_err();
    assert!(err.to_string().contains("no measure column 7"), "{err}");
}
