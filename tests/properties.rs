//! Property-style tests over the core invariants, driven by seeded
//! random case generation (64 cases per property, mirroring the old
//! proptest configuration):
//!
//! * Theorem A.1 for arbitrary refinement sequences;
//! * number verbalization round-off bounds;
//! * result-layout index bijectivity;
//! * grammar shape of rendered speeches;
//! * cache estimator consistency for arbitrary sampling prefixes;
//! * uniformity of the two-level chunked scan order (prefix-sample means
//!   converge at the estimator's error rate across 50 seeds).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use voxolap_data::dimension::LevelId;
use voxolap_data::salary::SalaryConfig;
use voxolap_data::DimId;
use voxolap_engine::cache::SampleCache;
use voxolap_engine::exact::evaluate;
use voxolap_engine::query::{AggFct, Query};
use voxolap_speech::ast::{Baseline, Change, Direction, Predicate, Refinement, Speech};
use voxolap_speech::parse::parse_body;
use voxolap_speech::render::Renderer;
use voxolap_speech::scope::CompiledSpeech;
use voxolap_speech::verbalize::{baseline_grid, round_significant};

const CASES: usize = 64;

fn salary_query() -> (voxolap_data::Table, Query) {
    let table = SalaryConfig { rows: 64, seed: 5 }.generate();
    let q = Query::builder(AggFct::Avg)
        .group_by(DimId(0), LevelId(1))
        .group_by(DimId(1), LevelId(1))
        .build(table.schema())
        .unwrap();
    (table, q)
}

/// An arbitrary refinement over the salary query's predicate space
/// (regions, states, rough bins — all levels at or above grouping).
fn arb_refinement(gen: &mut StdRng) -> Refinement {
    // Dim 0 members 1..=4 are regions; dim 1 members 1..=2 the rough bins.
    let predicate = if gen.gen_bool(0.5) {
        Predicate { dim: DimId(0), member: voxolap_data::MemberId(gen.gen_range(1u32..=4)) }
    } else {
        Predicate { dim: DimId(1), member: voxolap_data::MemberId(gen.gen_range(1u32..=2)) }
    };
    loop {
        let direction = if gen.gen_bool(0.5) { Direction::Increase } else { Direction::Decrease };
        let percent = *[5u32, 20, 50, 100, 200].choose(gen).unwrap();
        if direction == Direction::Increase || percent < 100 {
            return Refinement {
                predicates: vec![predicate],
                change: Change { direction, percent },
            };
        }
    }
}

fn arb_refinements(gen: &mut StdRng, max: usize) -> Vec<Refinement> {
    let n = gen.gen_range(0..max);
    (0..n).map(|_| arb_refinement(gen)).collect()
}

#[test]
fn theorem_a1_holds_for_arbitrary_speeches() {
    let (table, q) = salary_query();
    let mut gen = StdRng::seed_from_u64(0xca5e_0001);
    for _ in 0..CASES {
        let baseline = gen.gen_range(1.0f64..500.0);
        let refinements = arb_refinements(&mut gen, 6);
        let speech = Speech { baseline: Baseline::point(baseline), refinements };
        let cs = CompiledSpeech::compile(&speech, q.layout(), table.schema());
        let means = cs.means_all(q.layout());
        let avg = means.iter().sum::<f64>() / means.len() as f64;
        assert!(
            (avg - baseline).abs() < 1e-6 * baseline.max(1.0),
            "average {avg} vs baseline {baseline}"
        );
    }
}

#[test]
fn rendered_speeches_follow_the_grammar() {
    let (table, q) = salary_query();
    let renderer = Renderer::new(table.schema(), &q);
    let mut gen = StdRng::seed_from_u64(0xca5e_0002);
    for _ in 0..CASES {
        let baseline = gen.gen_range(1.0f64..500.0);
        let refinements = arb_refinements(&mut gen, 4);
        let speech = Speech { baseline: Baseline::point(baseline), refinements };
        let body = renderer.body_text(&speech);
        // <B> then <R>*: exactly 1 + k sentences, every refinement starts
        // with "Values" and the body parses back into the same sentences.
        let sentences: Vec<&str> = body.split(". ").collect();
        assert_eq!(sentences.len(), 1 + speech.refinements.len());
        assert!(sentences[0].contains("is the average"));
        for s in &sentences[1..] {
            assert!(s.starts_with("Values "), "refinement sentence: {s}");
            assert!(s.contains(" by ") && s.contains(" percent for "));
        }
        assert!(body.ends_with('.'));
    }
}

#[test]
fn render_parse_round_trip() {
    // Baselines on the value grid round-trip exactly (arbitrary floats
    // would be re-rounded by verbalization, by design).
    let (table, q) = salary_query();
    let renderer = Renderer::new(table.schema(), &q);
    let grid = [60.0, 70.0, 80.0, 90.0, 100.0, 150.0, 200.0, 85.0];
    let mut gen = StdRng::seed_from_u64(0xca5e_0003);
    for _ in 0..CASES {
        let grid_idx = gen.gen_range(0usize..grid.len());
        let refinements = arb_refinements(&mut gen, 4);
        let speech = Speech { baseline: Baseline::point(grid[grid_idx]), refinements };
        let body = renderer.body_text(&speech);
        let parsed = parse_body(&body, table.schema(), &q).unwrap();
        assert_eq!(parsed, speech, "body: {body}");
    }
}

#[test]
fn round_significant_error_is_bounded() {
    let mut gen = StdRng::seed_from_u64(0xca5e_0004);
    for _ in 0..CASES {
        // Log-uniform over 1e-6 .. 1e12.
        let v = 10f64.powf(gen.gen_range(-6.0f64..12.0));
        let r = round_significant(v, 1);
        // One significant digit: relative error strictly below 50 %
        // (worst case 0.149… -> 0.1).
        assert!((r - v).abs() / v < 0.5, "v={v} r={r}");
        // Idempotent.
        assert_eq!(round_significant(r, 1), r);
    }
}

#[test]
fn baseline_grid_brackets_the_estimate() {
    let mut gen = StdRng::seed_from_u64(0xca5e_0005);
    for _ in 0..CASES {
        let v = 10f64.powf(gen.gen_range(-6.0f64..9.0));
        let grid = baseline_grid(v);
        assert!(!grid.is_empty());
        assert!(grid.iter().any(|&g| g <= v * 1.12), "grid below estimate");
        assert!(grid.iter().any(|&g| g >= v * 0.9), "grid above estimate");
        for w in grid.windows(2) {
            assert!(w[0] < w[1], "sorted and deduped");
        }
    }
}

#[test]
fn layout_index_roundtrip() {
    let (_table, q) = salary_query();
    let layout = q.layout();
    for agg_step in 1usize..7 {
        for agg in (0..layout.n_aggregates() as u32).step_by(agg_step) {
            let coords = layout.coords_of_agg(agg);
            let scope = layout.scope_of_agg(agg);
            assert_eq!(coords.len(), scope.len());
            let rebuilt: u32 =
                coords.iter().enumerate().map(|(d, &c)| c * layout.stride(DimId(d as u8))).sum();
            assert_eq!(rebuilt, agg);
        }
    }
}

#[test]
fn cache_counts_are_exact_on_any_prefix() {
    let (table, q) = salary_query();
    let mut gen = StdRng::seed_from_u64(0xca5e_0006);
    for _ in 0..CASES {
        let prefix_len = gen.gen_range(1usize..64);
        let seed = gen.gen_range(0u64..32);
        let mut cache = SampleCache::new(q.n_aggregates(), table.row_count() as u64);
        let mut scan = table.scan_shuffled(seed);
        let mut observed = 0;
        for _ in 0..prefix_len {
            let Some(r) = scan.next_row() else { break };
            cache.observe(q.layout().agg_of_row(r.members), r.value);
            observed += 1;
        }
        assert_eq!(cache.nr_read(), observed as u64);
        // Sizes sum to in-scope rows (all of them for this query).
        let total: usize = (0..q.n_aggregates() as u32).map(|a| cache.size(a)).sum();
        assert_eq!(total, observed);
        // Count estimate over the whole scope is exactly the table size.
        let est = cache.overall_estimate(AggFct::Count).unwrap();
        assert!((est - table.row_count() as f64).abs() < 1e-9);
    }
}

/// Algorithm 3's estimator treats every scan prefix as a uniform random
/// sample, so its confidence bounds shrink at the σ/√k rate. The chunked
/// two-level order (seeded chunk permutation + on-the-fly in-chunk
/// bijection, DESIGN.md §13) must deliver prefixes whose means actually
/// converge at that rate: 50 seeds, each checked against a 4σ bound with
/// finite-population correction, plus an unbiasedness check on the
/// cross-seed average.
#[test]
fn prefix_sample_means_respect_the_estimator_error_bound() {
    let table = SalaryConfig { rows: 20_000, seed: 9 }.generate();
    let n = table.row_count();
    let values = table.measure();
    let truth = values.iter().sum::<f64>() / n as f64;
    let var = values.iter().map(|v| (v - truth).powi(2)).sum::<f64>() / n as f64;

    let k = 2_000usize;
    // Prefixes draw without replacement from a fixed population: the
    // standard error carries the finite-population correction.
    let fpc = (((n - k) as f64) / ((n - 1) as f64)).sqrt();
    let se = (var / k as f64).sqrt() * fpc;

    let mut means = Vec::with_capacity(50);
    for seed in 0..50u64 {
        // 256-row chunks put ~78 chunks in play, so the prefix crosses
        // many chunk boundaries and exercises both permutation levels.
        let order = voxolap_data::ScanOrder::with_chunk_size(n, seed, 256);
        let mut sum = 0.0;
        let mut taken = 0usize;
        'prefix: for pos in 0..order.n_chunks() {
            for rank in 0..order.chunk_len(pos) {
                if taken == k {
                    break 'prefix;
                }
                sum += values[order.row_at(pos, rank)];
                taken += 1;
            }
        }
        assert_eq!(taken, k);
        let mean = sum / k as f64;
        assert!(
            (mean - truth).abs() <= 4.0 * se,
            "seed {seed}: prefix mean {mean} vs true mean {truth} (4 sigma = {:.4})",
            4.0 * se
        );
        means.push(mean);
    }
    // Unbiasedness: the cross-seed average must tighten roughly √50-fold.
    let avg = means.iter().sum::<f64>() / means.len() as f64;
    assert!(
        (avg - truth).abs() <= 4.0 * se / (means.len() as f64).sqrt(),
        "biased scan order: cross-seed mean {avg} vs true mean {truth}"
    );
}

/// Segmented scan orders (DESIGN.md §16) must stay permutations after
/// appends: every row of the grown table visited exactly once, and the
/// old-prefix sub-order byte-identical to the order of the table before
/// the append (so cached sample snapshots remain resumable).
#[test]
fn segmented_scan_order_visits_grown_tables_exactly_once() {
    let mut gen = StdRng::seed_from_u64(0xca5e_0007);
    for _ in 0..CASES {
        let n0 = gen.gen_range(1usize..400);
        let n1 = gen.gen_range(1usize..200);
        let n2 = gen.gen_range(0usize..100);
        let chunk = gen.gen_range(1usize..64);
        let seed = gen.gen_range(0u64..1 << 20);
        let segments: Vec<usize> = [n0, n1, n2].into_iter().filter(|&s| s > 0).collect();
        let total: usize = segments.iter().sum();
        let order = voxolap_data::ScanOrder::segmented(&segments, seed, chunk);

        let mut visited = vec![0u32; total];
        let mut sequence = Vec::with_capacity(total);
        for pos in 0..order.n_chunks() {
            for rank in 0..order.chunk_len(pos) {
                let row = order.row_at(pos, rank);
                visited[row] += 1;
                sequence.push(row);
            }
        }
        assert!(visited.iter().all(|&v| v == 1), "not a permutation of 0..{total}");

        // Old-prefix stability: the pre-append order is a literal prefix.
        let old = voxolap_data::ScanOrder::segmented(&segments[..1], seed, chunk);
        let mut old_sequence = Vec::with_capacity(n0);
        for pos in 0..old.n_chunks() {
            for rank in 0..old.chunk_len(pos) {
                old_sequence.push(old.row_at(pos, rank));
            }
        }
        assert_eq!(&sequence[..n0], &old_sequence[..], "old prefix reordered by append");
        // And the boundary is recognized where repairs resume.
        assert_eq!(order.prefix_positions(n0), old.n_chunks());
    }
}

/// Repairing a version-stale snapshot (scanning only the appended suffix
/// at the donor's inclusion rate) must leave a sample as good as a fresh
/// scan of the grown table: across 50 seeds, the repaired sample mean
/// stays within the estimator's 4σ bound of the grown table's true mean,
/// and the cross-seed average is unbiased.
#[test]
fn repaired_snapshot_estimates_match_the_fresh_sample_bound() {
    use voxolap_engine::repair::repair_snapshot;
    use voxolap_engine::semantic::{LoggedRow, SampleSnapshot};

    let old = SalaryConfig { rows: 20_000, seed: 9 }.generate();
    // Append a 4,000-row suffix echoing early rows (no new members).
    let suffix: Vec<voxolap_data::IngestRow> = (0..4_000)
        .map(|i| voxolap_data::IngestRow {
            dims: (0..old.schema().dimensions().len())
                .map(|d| {
                    let id = DimId(d as u8);
                    let m = old.member_at(id, i);
                    voxolap_data::DimValue::Phrase(
                        old.schema().dimension(id).member(m).phrase.clone(),
                    )
                })
                .collect(),
            values: vec![old.value_at(i)],
        })
        .collect();
    let (new, _) = old.append_rows(&suffix).unwrap();
    let n = new.row_count();
    let values = new.measure();
    let truth = values.iter().sum::<f64>() / n as f64;
    let var = values.iter().map(|v| (v - truth).powi(2)).sum::<f64>() / n as f64;

    // Unfiltered scope: every scanned row lands in the snapshot's row log.
    let scope = Query::builder(AggFct::Avg)
        .group_by(DimId(0), LevelId(1))
        .build(old.schema())
        .unwrap()
        .key()
        .scope();

    let k0 = 2_000u64;
    let k = k0 + 400; // k1 = round(4000 * 2000/20000)
    let fpc = (((n as u64 - k) as f64) / ((n - 1) as f64)).sqrt();
    let se = (var / k as f64).sqrt() * fpc;

    let mut means = Vec::with_capacity(50);
    for seed in 0..50u64 {
        let mut scan = old.scan_shuffled_measure(seed, scope.measure());
        let mut rows = Vec::new();
        for _ in 0..k0 {
            let r = scan.next_row().expect("old table has k0 rows");
            rows.push(LoggedRow { members: r.members.into(), value: r.value });
        }
        let donor = SampleSnapshot {
            seed,
            progress: scan.progress(),
            nr_read: k0,
            rows,
            version: old.version(),
            table_rows: old.row_count() as u64,
        };
        let out = repair_snapshot(&donor, &new, &scope).expect("repairable");
        assert_eq!(out.snapshot.nr_read, k, "proportional suffix read");
        assert!(out.rows_read <= 4_000, "repair read past the suffix");
        let mean =
            out.snapshot.rows.iter().map(|r| r.value).sum::<f64>() / out.snapshot.rows.len() as f64;
        assert!(
            (mean - truth).abs() <= 4.0 * se,
            "seed {seed}: repaired mean {mean} vs true mean {truth} (4 sigma = {:.4})",
            4.0 * se
        );
        means.push(mean);
    }
    let avg = means.iter().sum::<f64>() / means.len() as f64;
    assert!(
        (avg - truth).abs() <= 4.0 * se / (means.len() as f64).sqrt(),
        "biased repair: cross-seed mean {avg} vs true mean {truth}"
    );
}

#[test]
fn exact_evaluation_matches_brute_force() {
    for seed in 0u64..16 {
        let table = SalaryConfig { rows: 48, seed }.generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        let result = evaluate(&q, &table);
        // Brute force per aggregate.
        let layout = q.layout();
        for agg in 0..layout.n_aggregates() as u32 {
            let mut sum = 0.0;
            let mut n = 0u64;
            for row in 0..table.row_count() {
                let members = table.row_members(row);
                if layout.agg_of_row(&members) == Some(agg) {
                    sum += table.value_at(row);
                    n += 1;
                }
            }
            assert_eq!(result.count(agg), n);
            if n > 0 {
                assert!((result.value(agg) - sum / n as f64).abs() < 1e-9);
            }
        }
    }
}
