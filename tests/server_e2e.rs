//! End-to-end test of the HTTP interface: real TCP, real JSON, real
//! planner — the full stack a browser client would exercise, including
//! the hardened serving path (timeouts, saturation, panic isolation).
//!
//! Every test runs under a [`watchdog`] that aborts the process if the
//! test exceeds its deadline, so a reintroduced hang (e.g. a stalled
//! client wedging the accept path) fails CI instead of stalling it.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use voxolap_data::flights::FlightsConfig;
use voxolap_server::{serve, serve_with, AppState, HttpMetrics, ServerConfig};

/// Abort the whole test process if the caller is still running after
/// `secs` — a hard per-test timeout (std's harness has none).
struct Watchdog(Arc<AtomicBool>);

fn watchdog(secs: u64) -> Watchdog {
    let done = Arc::new(AtomicBool::new(false));
    let observer = done.clone();
    std::thread::spawn(move || {
        let deadline = Instant::now() + Duration::from_secs(secs);
        while Instant::now() < deadline {
            if observer.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        eprintln!("watchdog: test exceeded {secs}s hard timeout — aborting");
        std::process::abort();
    });
    Watchdog(done)
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    let status: u16 =
        out.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line");
    let body = out.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

fn small_table() -> voxolap_data::Table {
    FlightsConfig { rows: 6_000, seed: 42 }.generate()
}

#[test]
fn full_stack_question_and_session_flow() {
    let _guard = watchdog(120);
    let state = Arc::new(AppState::new(small_table()));
    let handle = serve("127.0.0.1:0", move |req| state.handle(req)).unwrap();
    let addr = handle.addr;

    // Health.
    let (status, body) = request(addr, "GET", "/health", "");
    assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));

    // One-shot question.
    let (status, body) = request(
        addr,
        "POST",
        "/ask",
        "{\"question\": \"how does the cancellation probability depend on region?\"}",
    );
    assert_eq!(status, 200, "{body}");
    let v = voxolap_json::Value::parse(&body).unwrap();
    assert!(v["text"].as_str().unwrap().contains("broken down by region"));
    assert!(v["latency_ms"].as_f64().unwrap() < 500.0, "interactivity threshold");

    // Session accumulation across separate TCP connections.
    let (s1, _) =
        request(addr, "POST", "/session/worker/input", "{\"text\": \"break down by region\"}");
    assert_eq!(s1, 200);
    let (_, body) =
        request(addr, "POST", "/session/worker/input", "{\"text\": \"break down by season\"}");
    let v = voxolap_json::Value::parse(&body).unwrap();
    assert!(v["preamble"].as_str().unwrap().contains("region and season"), "{body}");

    // Approach switching mid-session (the Table 8 study workflow).
    let (_, body) = request(
        addr,
        "POST",
        "/session/worker/input",
        "{\"text\": \"winter\", \"approach\": \"prior\"}",
    );
    let v = voxolap_json::Value::parse(&body).unwrap();
    assert_eq!(v["approach"], "prior");
    assert!(v["preamble"].as_str().unwrap().contains("Winter"));

    // Bad input surfaces a JSON error with a 4xx.
    let (status, body) =
        request(addr, "POST", "/session/worker/input", "{\"text\": \"gibberish xyz\"}");
    assert_eq!(status, 400);
    assert!(body.contains("error"));

    handle.shutdown();
}

/// Send a `POST /query/stream` request and return the open socket without
/// reading the response.
fn open_stream(addr: std::net::SocketAddr, question: &str) -> TcpStream {
    let body = format!("{{\"question\": \"{question}\"}}");
    let mut s = TcpStream::connect(addr).unwrap();
    write!(
        s,
        "POST /query/stream HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s
}

/// The streaming endpoint delivers the first sentence while later
/// sentences are still being planned: the read burst that carries the
/// first sentence record must not already carry the done record.
#[test]
fn streaming_endpoint_delivers_sentences_incrementally() {
    let _guard = watchdog(120);
    let state = Arc::new(AppState::new(small_table()));
    let handle = serve("127.0.0.1:0", move |req| state.handle(req)).unwrap();
    let addr = handle.addr;

    let mut s =
        open_stream(addr, "how does the cancellation probability depend on region and season?");
    let mut raw = Vec::new();
    let mut buf = [0u8; 1024];
    let mut saw_first_sentence = false;
    loop {
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&buf[..n]);
                let text = String::from_utf8_lossy(&raw);
                if !saw_first_sentence && text.contains("\"type\":\"sentence\"") {
                    saw_first_sentence = true;
                    assert!(
                        !text.contains("\"type\":\"done\""),
                        "first sentence must arrive before planning completes"
                    );
                }
            }
            Err(e) => panic!("read error: {e}"),
        }
    }
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(text.contains("Transfer-Encoding: chunked"), "{text}");
    assert!(text.contains("Content-Type: application/x-ndjson"), "{text}");
    assert!(text.contains("\"type\":\"preamble\""), "{text}");
    assert!(text.matches("\"type\":\"sentence\"").count() >= 2, "{text}");
    assert!(text.contains("\"cancelled\":false"), "{text}");
    assert!(text.ends_with("0\r\n\r\n"), "terminal chunk missing: {text}");

    // The streaming counters are visible in /stats afterwards.
    let (status, body) = request(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    let v = voxolap_json::Value::parse(&body).unwrap();
    assert!(v["latency_ms"]["ttfs_ms"]["count"].as_u64().unwrap() >= 1, "{body}");
    assert!(v["latency_ms"]["gap_ms"]["count"].as_u64().unwrap() >= 1, "{body}");
    assert_eq!(v["latency_ms"]["stream_cancellations"].as_u64().unwrap(), 0, "{body}");

    handle.shutdown();
}

/// Hanging up mid-stream fires the server-side cancel token: sampling
/// stops at the next sentence boundary and the abort shows up in /stats.
#[test]
fn client_disconnect_cancels_stream_and_counts() {
    let _guard = watchdog(120);
    let state = Arc::new(AppState::new(small_table()));
    let handle = serve("127.0.0.1:0", move |req| state.handle(req)).unwrap();
    let addr = handle.addr;

    {
        let mut s =
            open_stream(addr, "how does the cancellation probability depend on region and season?");
        let mut raw = Vec::new();
        let mut buf = [0u8; 256];
        loop {
            let n = s.read(&mut buf).unwrap();
            assert!(n > 0, "stream ended before the first sentence");
            raw.extend_from_slice(&buf[..n]);
            if String::from_utf8_lossy(&raw).contains("\"type\":\"sentence\"") {
                break;
            }
        }
        // Drop the socket with most of the speech still unplanned.
    }

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = request(addr, "GET", "/stats", "");
        assert_eq!(status, 200);
        let v = voxolap_json::Value::parse(&body).unwrap();
        if v["latency_ms"]["stream_cancellations"].as_u64().unwrap() == 1 {
            // The aborted stream still recorded its first-sentence time.
            assert!(v["latency_ms"]["ttfs_ms"]["count"].as_u64().unwrap() >= 1, "{body}");
            break;
        }
        assert!(Instant::now() < deadline, "cancellation not observed: {body}");
        std::thread::sleep(Duration::from_millis(50));
    }

    handle.shutdown();
}

/// A stalled client (headers promise a body that never arrives) must get
/// a 408 within the configured timeout — and must not delay concurrent
/// well-formed queries, which a worker-per-connection server with no
/// socket timeouts would have wedged forever.
#[test]
fn stalled_client_gets_408_without_delaying_others() {
    let _guard = watchdog(120);
    let metrics = HttpMetrics::new();
    let state = Arc::new(AppState::new(small_table()).with_http_metrics(metrics.clone()));
    let config = ServerConfig { threads: 4, ..ServerConfig::default() }.with_timeout_ms(500);
    let handle = serve_with("127.0.0.1:0", config, metrics, move |req| state.handle(req)).unwrap();
    let addr = handle.addr;

    // The stalled client: header sent, body withheld.
    let staller = std::thread::spawn(move || {
        let start = Instant::now();
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /ask HTTP/1.1\r\nContent-Length: 64\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        (out, start.elapsed())
    });

    // Meanwhile, parallel well-formed queries are answered normally.
    let parallel: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                request(
                    addr,
                    "POST",
                    "/ask",
                    "{\"question\": \"cancellation probability by season\"}",
                )
            })
        })
        .collect();
    for h in parallel {
        let (status, body) = h.join().unwrap();
        assert_eq!(status, 200, "{body}");
    }

    let (out, elapsed) = staller.join().unwrap();
    assert!(out.starts_with("HTTP/1.1 408"), "stalled client should time out: {out}");
    assert!(elapsed < Duration::from_secs(10), "408 took too long: {elapsed:?}");

    // The serving-layer counters surface the timeout and the successes.
    let (status, body) = request(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    let v = voxolap_json::Value::parse(&body).unwrap();
    assert_eq!(v["http"]["timeouts"].as_u64().unwrap(), 1, "{body}");
    assert!(v["http"]["responses_2xx"].as_u64().unwrap() >= 4, "{body}");
    assert!(v["http"]["requests"].as_u64().unwrap() >= 4, "{body}");

    handle.shutdown();
}

/// When the bounded queue is full, excess connections get an immediate
/// 503 + Retry-After instead of piling up unbounded — and the rejection
/// is visible in /stats.
#[test]
fn saturation_yields_503s_and_counts_rejections() {
    let _guard = watchdog(120);
    let metrics = HttpMetrics::new();
    let state = Arc::new(AppState::new(small_table()).with_http_metrics(metrics.clone()));
    // One worker that takes ~300ms per request + one queue slot.
    let config = ServerConfig { threads: 1, queue: 1, ..ServerConfig::default() };
    let handle = serve_with("127.0.0.1:0", config, metrics.clone(), move |req| {
        std::thread::sleep(Duration::from_millis(300));
        state.handle(req)
    })
    .unwrap();
    let addr = handle.addr;

    // Occupy the worker, then the queue slot.
    let mut slow = Vec::new();
    slow.push(std::thread::spawn(move || request(addr, "GET", "/health", "")));
    let deadline = Instant::now() + Duration::from_secs(5);
    while metrics.snapshot().requests < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    slow.push(std::thread::spawn(move || request(addr, "GET", "/health", "")));
    let deadline = Instant::now() + Duration::from_secs(5);
    while metrics.snapshot().accepted < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }

    // Both capacity slots taken: the next connection is turned away.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /health HTTP/1.1\r\n\r\n").unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 503"), "{out}");
    assert!(out.contains("Retry-After: 1"), "{out}");

    // The occupants complete normally.
    for h in slow {
        let (status, _) = h.join().unwrap();
        assert_eq!(status, 200);
    }
    let (_, body) = request(addr, "GET", "/stats", "");
    let v = voxolap_json::Value::parse(&body).unwrap();
    assert_eq!(v["http"]["rejected"].as_u64().unwrap(), 1, "{body}");
    assert!(v["http"]["responses_5xx"].as_u64().unwrap() >= 1, "{body}");

    handle.shutdown();
}

/// A panicking handler yields a 500 JSON error (not a dropped
/// connection), the worker survives, and the panic counter shows up in
/// /stats.
#[test]
fn panicking_route_returns_500_json_and_counts() {
    let _guard = watchdog(120);
    let metrics = HttpMetrics::new();
    let state = Arc::new(
        AppState::new(small_table()).with_http_metrics(metrics.clone()).with_debug_routes(true),
    );
    let handle =
        serve_with("127.0.0.1:0", ServerConfig::default(), metrics, move |req| state.handle(req))
            .unwrap();
    let addr = handle.addr;

    let (status, body) = request(addr, "GET", "/debug/panic", "");
    assert_eq!(status, 500, "{body}");
    assert_eq!(body, "{\"error\":\"internal server error\"}");

    // The pool keeps serving afterwards, and the counter is exposed.
    let (status, body) = request(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    let v = voxolap_json::Value::parse(&body).unwrap();
    assert_eq!(v["http"]["panics"].as_u64().unwrap(), 1, "{body}");
    assert_eq!(v["http"]["responses_5xx"].as_u64().unwrap(), 1, "{body}");

    handle.shutdown();
}

/// Shutdown completes within its drain deadline even while clients are
/// connected, and malformed framing is rejected at the parsing layer.
#[test]
fn parsing_rejections_and_bounded_shutdown() {
    let _guard = watchdog(120);
    let metrics = HttpMetrics::new();
    let state = Arc::new(AppState::new(small_table()).with_http_metrics(metrics.clone()));
    let config = ServerConfig::default().with_timeout_ms(500);
    let handle = serve_with("127.0.0.1:0", config, metrics, move |req| state.handle(req)).unwrap();
    let addr = handle.addr;

    // Non-numeric Content-Length → 400 (previously parsed as "no body").
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"POST /ask HTTP/1.1\r\nContent-Length: ten\r\n\r\n0123456789").unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 400"), "{out}");

    // Conflicting duplicates → 400.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"POST /ask HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nab").unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 400"), "{out}");

    // Oversized declared body → 413 without reading it.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"POST /ask HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n").unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 413"), "{out}");

    // Shutdown with a live idle connection still returns promptly.
    let _idle = TcpStream::connect(addr).unwrap();
    let start = Instant::now();
    handle.shutdown_within(Duration::from_secs(2));
    assert!(start.elapsed() < Duration::from_secs(30), "shutdown not deadline-bounded");
}

/// Regression (§15): clients that accept their 503 but never read it
/// ("slowloris" on the reject path) must not stall the accept loop. The
/// old pool lingered up to 4 s per rejected connection *on the accept
/// thread*; the reactor bounds the linger by a deadline and handles it
/// off the accept path, so a healthy client still gets its (prompt)
/// answer while a crowd of slowloris rejects is mid-linger.
#[test]
fn slowloris_rejects_do_not_delay_healthy_accepts() {
    let _guard = watchdog(120);
    let metrics = HttpMetrics::new();
    let state = Arc::new(AppState::new(small_table()).with_http_metrics(metrics.clone()));
    // One busy worker + one queue slot: everything else is rejected.
    let config = ServerConfig { threads: 1, queue: 1, ..ServerConfig::default() };
    let handle = serve_with("127.0.0.1:0", config, metrics.clone(), move |req| {
        std::thread::sleep(Duration::from_millis(1500));
        state.handle(req)
    })
    .unwrap();
    let addr = handle.addr;

    // Saturate: one request in the worker, one in the queue.
    let mut occupants = Vec::new();
    for _ in 0..2 {
        occupants.push(std::thread::spawn(move || request(addr, "GET", "/health", "")));
        let deadline = Instant::now() + Duration::from_secs(5);
        while metrics.snapshot().accepted < occupants.len() as u64 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    // A crowd of slowloris clients: send a request, never read the 503.
    let slowloris: Vec<TcpStream> = (0..8)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /health HTTP/1.1\r\n\r\n").unwrap();
            s // kept open and unread
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(5);
    while metrics.snapshot().rejected < 8 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }

    // A healthy client connecting now must be answered promptly — with
    // a 503 (still saturated), but without waiting on anyone's linger.
    let start = Instant::now();
    let (status, _) = request(addr, "GET", "/health", "");
    let elapsed = start.elapsed();
    assert_eq!(status, 503);
    assert!(elapsed < Duration::from_secs(2), "healthy accept delayed {elapsed:?} by rejects");

    // The occupants complete normally despite the slowloris crowd.
    for h in occupants {
        let (status, _) = h.join().unwrap();
        assert_eq!(status, 200);
    }
    drop(slowloris);
    handle.shutdown();
}

/// Regression (§15): shutdown under load answers every admitted request
/// exactly once — workers drain the queue (no busy-poll race that could
/// 503 a request a worker already dequeued), and late rejects cover the
/// rest. Every client sees exactly one well-formed HTTP response.
#[test]
fn shutdown_under_load_answers_every_admitted_request_exactly_once() {
    let _guard = watchdog(120);
    let metrics = HttpMetrics::new();
    let state = Arc::new(AppState::new(small_table()).with_http_metrics(metrics.clone()));
    let config = ServerConfig { threads: 2, queue: 32, ..ServerConfig::default() };
    let handle = serve_with("127.0.0.1:0", config, metrics.clone(), move |req| {
        std::thread::sleep(Duration::from_millis(100));
        state.handle(req)
    })
    .unwrap();
    let addr = handle.addr;

    let clients: Vec<_> = (0..12)
        .map(|_| {
            std::thread::spawn(move || {
                // A refused connect or failed write means the shutdown beat
                // this client to the listener: no response owed.
                let Ok(mut s) = TcpStream::connect(addr) else { return String::new() };
                if s.write_all(b"GET /health HTTP/1.1\r\n\r\n").is_err() {
                    return String::new();
                }
                s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                let mut out = String::new();
                s.read_to_string(&mut out).unwrap_or(0);
                out
            })
        })
        .collect();
    // Let the load build, then shut down mid-flight. Accepts alone are not
    // enough: shutdown stops parsing new requests, so a connection that was
    // accepted but never read owes its client nothing — on a loaded host
    // (debug profile, suites in parallel) shutdown can land before any
    // request is parsed and every client legitimately ends empty. Wait for
    // a worker to dispatch at least one request (the `requests` counter
    // ticks at dequeue) with more accepted connections still behind it; the
    // deadline only bounds a wedged server.
    let deadline = Instant::now() + Duration::from_secs(60);
    while Instant::now() < deadline {
        let snap = metrics.snapshot();
        if snap.requests >= 1 && snap.accepted >= 6 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    handle.shutdown_within(Duration::from_secs(10));

    let mut ok = 0u64;
    let mut turned_away = 0u64;
    for c in clients {
        let out = c.join().unwrap();
        if out.is_empty() {
            continue; // connected after the listener closed: no response owed
        }
        // Exactly one response per connection: one status line, complete.
        assert_eq!(out.matches("HTTP/1.1 ").count(), 1, "double answer: {out}");
        let status: u16 = out.split_whitespace().nth(1).unwrap().parse().unwrap();
        match status {
            200 => ok += 1,
            503 => turned_away += 1,
            other => panic!("unexpected status {other}: {out}"),
        }
    }
    let snap = metrics.snapshot();
    assert_eq!(
        ok, snap.requests,
        "every request a worker handled must reach its client exactly once ({snap:?})"
    );
    assert!(ok + turned_away > 0, "no client was answered at all ({snap:?})");
}

/// Regression (§15): a client that disappears while its 503 is being
/// written (reset instead of FIN) must be counted as a reject-write
/// failure — never a panic, never a wedged reactor.
#[test]
fn client_reset_during_rejection_is_counted_not_fatal() {
    let _guard = watchdog(120);
    let metrics = HttpMetrics::new();
    let state = Arc::new(AppState::new(small_table()).with_http_metrics(metrics.clone()));
    let config = ServerConfig { threads: 1, queue: 1, ..ServerConfig::default() };
    let handle = serve_with("127.0.0.1:0", config, metrics.clone(), move |req| {
        std::thread::sleep(Duration::from_millis(800));
        state.handle(req)
    })
    .unwrap();
    let addr = handle.addr;

    // Saturate.
    let mut occupants = Vec::new();
    for _ in 0..2 {
        occupants.push(std::thread::spawn(move || request(addr, "GET", "/health", "")));
        let deadline = Instant::now() + Duration::from_secs(5);
        while metrics.snapshot().accepted < occupants.len() as u64 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    // Doomed clients: send a request, give the 503 time to land in the
    // receive buffer, then close without reading it. Closing with unread
    // data makes the kernel answer with RST, which is exactly the
    // mid-rejection hang-up the reject path must absorb.
    for _ in 0..4 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /health HTTP/1.1\r\n\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(100));
        drop(s); // RST while the server writes / lingers the 503
    }

    for h in occupants {
        let (status, _) = h.join().unwrap();
        assert_eq!(status, 200);
    }
    // The server is still healthy and nothing panicked.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = request(addr, "GET", "/stats", "");
        assert_eq!(status, 200);
        let v = voxolap_json::Value::parse(&body).unwrap();
        assert_eq!(v["http"]["panics"].as_u64().unwrap(), 0, "{body}");
        // The resets surface as rejected connections; any undeliverable
        // 503 increments the write-failure counter rather than crashing.
        if v["http"]["rejected"].as_u64().unwrap() >= 4 {
            break;
        }
        assert!(Instant::now() < deadline, "rejects not recorded: {body}");
        std::thread::sleep(Duration::from_millis(25));
    }
    handle.shutdown();
}
