//! End-to-end test of the HTTP interface: real TCP, real JSON, real
//! planner — the full stack a browser client would exercise.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use voxolap_data::flights::FlightsConfig;
use voxolap_server::{serve, AppState};

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    let status: u16 =
        out.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line");
    let body = out.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

#[test]
fn full_stack_question_and_session_flow() {
    let table = FlightsConfig { rows: 6_000, seed: 42 }.generate();
    let state = Arc::new(AppState::new(table));
    let handle = serve("127.0.0.1:0", move |req| state.handle(req)).unwrap();
    let addr = handle.addr;

    // Health.
    let (status, body) = request(addr, "GET", "/health", "");
    assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));

    // One-shot question.
    let (status, body) = request(
        addr,
        "POST",
        "/ask",
        "{\"question\": \"how does the cancellation probability depend on region?\"}",
    );
    assert_eq!(status, 200, "{body}");
    let v = voxolap_json::Value::parse(&body).unwrap();
    assert!(v["text"].as_str().unwrap().contains("broken down by region"));
    assert!(v["latency_ms"].as_f64().unwrap() < 500.0, "interactivity threshold");

    // Session accumulation across separate TCP connections.
    let (s1, _) =
        request(addr, "POST", "/session/worker/input", "{\"text\": \"break down by region\"}");
    assert_eq!(s1, 200);
    let (_, body) =
        request(addr, "POST", "/session/worker/input", "{\"text\": \"break down by season\"}");
    let v = voxolap_json::Value::parse(&body).unwrap();
    assert!(v["preamble"].as_str().unwrap().contains("region and season"), "{body}");

    // Approach switching mid-session (the Table 8 study workflow).
    let (_, body) = request(
        addr,
        "POST",
        "/session/worker/input",
        "{\"text\": \"winter\", \"approach\": \"prior\"}",
    );
    let v = voxolap_json::Value::parse(&body).unwrap();
    assert_eq!(v["approach"], "prior");
    assert!(v["preamble"].as_str().unwrap().contains("Winter"));

    // Bad input surfaces a JSON error with a 4xx.
    let (status, body) =
        request(addr, "POST", "/session/worker/input", "{\"text\": \"gibberish xyz\"}");
    assert_eq!(status, 400);
    assert!(body.contains("error"));

    handle.shutdown();
}
