//! End-to-end tests of the long-lived session transport (DESIGN.md §15):
//! HTTP upgrade to NDJSON, per-utterance speech streams, warm-started
//! follow-ups, heartbeats, idle reaping, and state surviving re-attach —
//! the full fabric a voice client holds open for a whole analysis
//! conversation.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use voxolap_data::flights::FlightsConfig;
use voxolap_json::Value;
use voxolap_server::{serve_with, AppState, HttpMetrics, ServerConfig};

/// Abort the process if a test overruns its deadline (std's harness has
/// no per-test timeout, and a transport bug shows up as a silent hang).
struct Watchdog(Arc<AtomicBool>);

fn watchdog(secs: u64) -> Watchdog {
    let done = Arc::new(AtomicBool::new(false));
    let observer = done.clone();
    std::thread::spawn(move || {
        let deadline = Instant::now() + Duration::from_secs(secs);
        while Instant::now() < deadline {
            if observer.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        eprintln!("watchdog: test exceeded {secs}s hard timeout — aborting");
        std::process::abort();
    });
    Watchdog(done)
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

fn small_table() -> voxolap_data::Table {
    FlightsConfig { rows: 6_000, seed: 42 }.generate()
}

/// An attached session connection: `101` handshake consumed, `hello`
/// parsed, ready for line traffic.
struct SessionConn {
    reader: BufReader<TcpStream>,
    hello: Value,
}

impl SessionConn {
    fn attach(addr: std::net::SocketAddr, id: &str) -> SessionConn {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        write!(stream, "GET /session/{id}/attach HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut head = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line == "\r\n" {
                break;
            }
            head.push_str(&line);
        }
        assert!(head.starts_with("HTTP/1.1 101"), "{head}");
        assert!(head.contains("Upgrade: voxolap-session"), "{head}");
        let mut conn = SessionConn { reader, hello: Value::Null };
        let hello = conn.next_event();
        assert_eq!(hello["type"], "hello", "{hello:?}");
        conn.hello = hello;
        conn
    }

    fn send(&mut self, event: &str) {
        self.reader.get_mut().write_all(format!("{event}\n").as_bytes()).unwrap();
    }

    fn next_event(&mut self) -> Value {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).unwrap();
        assert!(n > 0, "connection closed while waiting for an event");
        Value::parse(line.trim_end()).unwrap_or_else(|e| panic!("bad event {line:?}: {e:?}"))
    }

    /// Send an utterance and collect events up to (and including) its
    /// terminal `done`/`help`/`error`.
    fn utter(&mut self, text: &str) -> Vec<Value> {
        self.send(&format!("{{\"type\":\"utter\",\"text\":\"{text}\"}}"));
        let mut events = Vec::new();
        loop {
            let ev = self.next_event();
            let kind = ev["type"].as_str().unwrap_or("").to_string();
            if kind == "heartbeat" {
                continue;
            }
            events.push(ev);
            if matches!(kind.as_str(), "done" | "help" | "error") {
                return events;
            }
        }
    }
}

fn serve_state(
    config: ServerConfig,
    state: Arc<AppState>,
) -> (voxolap_server::ServerHandle, Arc<HttpMetrics>) {
    let metrics = HttpMetrics::new();
    let handler_state = Arc::clone(&state);
    let handle =
        serve_with("127.0.0.1:0", config, metrics.clone(), move |req| handler_state.handle(req))
            .unwrap();
    (handle, metrics)
}

/// One utterance over the session transport carries a full §11 speech
/// stream (preamble → sentences → done), and an in-scope follow-up is
/// flagged as warm-started from the semantic cache.
#[test]
fn utterance_streams_speech_and_warm_starts_in_scope_follow_ups() {
    let _guard = watchdog(120);
    let state = Arc::new(AppState::new(small_table()));
    let (handle, metrics) = serve_state(ServerConfig::default(), state);

    let mut conn = SessionConn::attach(handle.addr, "analyst");
    assert_eq!(conn.hello["session"], "analyst");
    assert!(conn.hello["heartbeat_ms"].as_u64().unwrap() > 0);

    let events = conn.utter("cancellation probability by region");
    assert_eq!(events.first().unwrap()["type"], "preamble");
    assert!(
        events.iter().filter(|e| e["type"] == "sentence").count() >= 1,
        "no sentences streamed: {events:?}"
    );
    let done = events.last().unwrap();
    assert_eq!(done["type"], "done", "{events:?}");
    assert_eq!(done["scope_warm"].as_bool(), Some(false));
    assert!(done["ttfs_ms"].as_f64().unwrap() > 0.0);
    assert!(done["sentences"].as_u64().unwrap() >= 1);

    // Same scope (no filters), different breakdown: the semantic cache
    // warm-starts sampling and the transport says so.
    let events = conn.utter("cancellation probability by season");
    let done = events.last().unwrap();
    assert_eq!(done["type"], "done", "{events:?}");
    assert_eq!(done["scope_warm"].as_bool(), Some(true), "{done:?}");

    // Liveness probe and orderly goodbye.
    conn.send("{\"type\":\"ping\"}");
    assert_eq!(conn.next_event()["type"], "pong");
    conn.send("{\"type\":\"bye\"}");
    let bye = conn.next_event();
    assert_eq!(bye["type"], "bye");
    assert_eq!(bye["reason"], "client");
    let mut rest = Vec::new();
    conn.reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server must close after bye");

    let snap = metrics.snapshot();
    assert_eq!(snap.sessions_opened, 1);
    assert_eq!(snap.sessions_closed, 1);
    assert!(snap.session_lines >= 4, "{snap:?}");
    handle.shutdown();
}

/// Dialogue state lives server-side under the session id: a dropped
/// connection re-attaches and continues the drill-down where it left
/// off (and the POST transport sees the same state).
#[test]
fn dialogue_state_survives_reattach() {
    let _guard = watchdog(120);
    let state = Arc::new(AppState::new(small_table()));
    let (handle, _metrics) = serve_state(ServerConfig::default(), state);

    let mut conn = SessionConn::attach(handle.addr, "worker");
    let events = conn.utter("break down by region");
    assert_eq!(events.last().unwrap()["type"], "done");
    drop(conn); // connection lost without a bye

    // Re-attach: the winter filter applies on top of the region
    // breakdown established on the previous connection.
    let mut conn = SessionConn::attach(handle.addr, "worker");
    let events = conn.utter("only the winter");
    let preamble = events.first().unwrap();
    assert_eq!(preamble["type"], "preamble", "{events:?}");
    let text = preamble["text"].as_str().unwrap();
    assert!(text.contains("Winter"), "filter lost across re-attach: {text}");
    assert!(text.contains("region"), "breakdown lost across re-attach: {text}");
    conn.send("{\"type\":\"bye\"}");
    handle.shutdown();
}

/// Unknown event kinds and unparseable lines produce `error` events and
/// leave the session usable; `quit` utterances end it from the dialogue
/// layer with `bye(reason=quit)`.
#[test]
fn malformed_lines_recoverable_and_quit_closes() {
    let _guard = watchdog(120);
    let state = Arc::new(AppState::new(small_table()));
    let (handle, _metrics) = serve_state(ServerConfig::default(), state);

    let mut conn = SessionConn::attach(handle.addr, "messy");
    conn.send("this is not json");
    assert_eq!(conn.next_event()["type"], "error");
    conn.send("{\"type\":\"frobnicate\"}");
    assert_eq!(conn.next_event()["type"], "error");
    conn.send("{\"type\":\"utter\"}");
    assert_eq!(conn.next_event()["type"], "error");

    // Still alive: a help request round-trips through the dialogue layer.
    let events = conn.utter("help");
    assert_eq!(events.last().unwrap()["type"], "help");

    conn.send("{\"type\":\"utter\",\"text\":\"quit\"}");
    let bye = conn.next_event();
    assert_eq!(bye["type"], "bye");
    assert_eq!(bye["reason"], "quit");
    let mut rest = Vec::new();
    conn.reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server must close after quit");
    handle.shutdown();
}

/// Idle sessions receive heartbeats at the configured cadence and are
/// reaped with `bye(reason=idle)` at the idle timeout — holding a fleet
/// of silent connections costs heartbeat writes, not worker threads.
#[test]
fn idle_sessions_heartbeat_then_reap() {
    let _guard = watchdog(60);
    let config = ServerConfig {
        heartbeat: Duration::from_millis(150),
        session_idle_timeout: Duration::from_millis(700),
        ..ServerConfig::default()
    };
    let state = Arc::new(AppState::new(small_table()).with_session_timing(150, 700));
    let (handle, metrics) = serve_state(config, state);

    let mut conn = SessionConn::attach(handle.addr, "quiet");
    assert_eq!(conn.hello["heartbeat_ms"].as_u64().unwrap(), 150);
    let mut saw_heartbeat = false;
    loop {
        let mut line = String::new();
        if conn.reader.read_line(&mut line).unwrap() == 0 {
            break; // reaped
        }
        let ev = Value::parse(line.trim_end()).unwrap();
        match ev["type"].as_str().unwrap() {
            "heartbeat" => saw_heartbeat = true,
            "bye" => assert_eq!(ev["reason"], "idle", "{ev:?}"),
            other => panic!("unexpected idle-session event {other}: {ev:?}"),
        }
    }
    assert!(saw_heartbeat, "no heartbeat before the idle reap");
    let snap = metrics.snapshot();
    assert!(snap.heartbeats_sent >= 1, "{snap:?}");
    assert_eq!(snap.sessions_closed, 1, "{snap:?}");
    assert_eq!(snap.idle_closed, 1, "{snap:?}");
    handle.shutdown();
}

/// A session utterance's planning time is bounded by the configured
/// deadline: past it the answer commits through the anytime path and the
/// `done` event says `degraded`. Without the bound, a wide-scope
/// utterance (e.g. a city-level drill-down) converges for minutes while
/// pinning a serving worker — starving every other session on the pool.
#[test]
fn utterance_deadline_degrades_instead_of_pinning_a_worker() {
    let _guard = watchdog(120);
    let state =
        Arc::new(AppState::new(small_table()).with_utterance_deadline(Duration::from_millis(1)));
    let (handle, _metrics) = serve_state(ServerConfig::default(), state);

    let mut conn = SessionConn::attach(handle.addr, "impatient");
    let t0 = Instant::now();
    let events = conn.utter("break down by region");
    let done = events.last().unwrap();
    assert_eq!(done["type"], "done", "{events:?}");
    assert_eq!(done["degraded"].as_bool(), Some(true), "{done:?}");
    // "Bounded" means seconds, not the minutes an unbounded convergence
    // can take — generous margin for a loaded CI host.
    assert!(t0.elapsed() < Duration::from_secs(30), "{:?}", t0.elapsed());

    // The session survives a degraded answer and keeps serving.
    let events = conn.utter("how many flights");
    let done = events.last().unwrap();
    assert_eq!(done["type"], "done", "{events:?}");
    conn.send("{\"type\":\"bye\"}");
    handle.shutdown();
}

/// Server shutdown farewells attached sessions with `bye(reason=
/// shutdown)` and closes them — a client blocked on its next event gets
/// a clean goodbye, not a hang or a reset.
#[test]
fn shutdown_farewells_attached_sessions() {
    let _guard = watchdog(60);
    let state = Arc::new(AppState::new(small_table()));
    let (handle, _metrics) = serve_state(ServerConfig::default(), state);

    let mut conn = SessionConn::attach(handle.addr, "interrupted");
    let events = conn.utter("break down by region");
    assert_eq!(events.last().unwrap()["type"], "done");

    handle.shutdown();
    let bye = conn.next_event();
    assert_eq!(bye["type"], "bye", "{bye:?}");
    assert_eq!(bye["reason"], "shutdown");
    let mut rest = Vec::new();
    conn.reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection must close after the farewell");
}
