//! End-to-end pin for §17 graceful shutdown: after the deadline-bounded
//! drain, the WAL must be flushed + fsynced and the clean-shutdown
//! marker written, so the next boot reports `clean_start` — i.e. skips
//! the CRC tail scan entirely. A dropped (crashed) handle must *not*
//! leave that marker behind.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use voxolap_data::flights::FlightsConfig;
use voxolap_data::schema::MeasureId;
use voxolap_data::{DimId, DurabilityOptions, DurableTable, FsyncMode, Table};
use voxolap_json::Value;
use voxolap_server::{serve, AppState};

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    let status: u16 =
        out.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line");
    let body = out.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

fn small_table() -> Table {
    FlightsConfig { rows: 2_000, seed: 42 }.generate()
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("voxolap-dur-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A valid ingest NDJSON line echoing an existing row of `table`.
fn echo_line(table: &Table, row: usize) -> String {
    let schema = table.schema();
    let row = row % table.row_count();
    let dims: Vec<Value> = (0..schema.dimensions().len())
        .map(|d| {
            let id = DimId(d as u8);
            Value::Str(schema.dimension(id).member(table.member_at(id, row)).phrase.clone())
        })
        .collect();
    let values: Vec<Value> = (0..schema.measures().len())
        .map(|m| Value::Num(table.measure_value(MeasureId(m as u8), row)))
        .collect();
    Value::obj([("dims", Value::Array(dims)), ("values", Value::Array(values))]).to_string()
}

#[test]
fn graceful_shutdown_writes_the_clean_marker_and_the_next_boot_skips_the_scan() {
    let table = small_table();
    let dir = tempdir("graceful");
    let opts = DurabilityOptions {
        fsync_mode: FsyncMode::Batch,
        snapshot_every_batches: 0,
        faults: None,
    };

    // Boot one: serve over real TCP, ingest over HTTP, drain, shut down.
    let (durable, recovery) = DurableTable::open(table.clone(), &dir, opts.clone()).unwrap();
    assert!(recovery.clean_start, "a fresh directory is a clean start");
    let state = Arc::new(AppState::durable(durable));
    let handler = Arc::clone(&state);
    let handle = serve("127.0.0.1:0", move |req| handler.handle(req)).unwrap();
    let addr = handle.addr;

    let mut acked_version = 0;
    for b in 0..3 {
        let body = format!("{}\n{}\n", echo_line(&table, b * 2), echo_line(&table, b * 2 + 1));
        let (status, resp) = request(addr, "POST", "/ingest", &body);
        assert_eq!(status, 200, "{resp}");
        acked_version = Value::parse(&resp).unwrap()["version"].as_u64().unwrap();
    }
    let (_, stats) = request(addr, "GET", "/stats", "");
    let stats = Value::parse(&stats).unwrap();
    assert_eq!(stats["durability"]["fsync_mode"].as_str(), Some("batch"));
    assert!(!stats["durability"].is_null(), "durable server must report durability stats");

    // The deadline-bounded drain, then the durability flush — the exact
    // sequence the server binary runs on SIGTERM.
    handle.shutdown_within(Duration::from_secs(5));
    state.shutdown_durability().unwrap();
    assert!(dir.join("clean").exists(), "graceful shutdown must leave the marker");

    // Boot two: the marker is honored (no tail scan) and nothing acked
    // was lost.
    let (durable, recovery) = DurableTable::open(table.clone(), &dir, opts.clone()).unwrap();
    assert!(recovery.clean_start, "marker must let the next boot skip the tail scan");
    assert_eq!(recovery.torn_tail_truncations, 0);
    assert_eq!(recovery.version, acked_version);
    assert_eq!(durable.snapshot().row_count(), table.row_count() + 6);
    assert!(!dir.join("clean").exists(), "a running process is dirty: boot eats the marker");

    // Boot three, after a crash (drop with no shutdown_clean): the boot
    // is dirty, the scan runs, and the acked batches still all survive.
    drop(durable);
    let (durable, recovery) = DurableTable::open(table.clone(), &dir, opts).unwrap();
    assert!(!recovery.clean_start, "no marker ⇒ the boot must scan the tail");
    assert_eq!(recovery.version, acked_version);
    assert_eq!(durable.snapshot().row_count(), table.row_count() + 6);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn in_memory_state_has_no_durability_section_and_parity_is_preserved() {
    // `--data-dir` unset: the durable wrapper is a pure passthrough and
    // /stats advertises no durability section.
    let state = Arc::new(AppState::new(small_table()));
    let handler = Arc::clone(&state);
    let handle = serve("127.0.0.1:0", move |req| handler.handle(req)).unwrap();
    let (status, stats) = request(handle.addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    let stats = Value::parse(&stats).unwrap();
    assert!(stats["durability"].is_null());
    state.shutdown_durability().unwrap(); // no-op, must not error
    handle.shutdown_within(Duration::from_secs(5));
}
