//! Tests pinning the paper's quantitative claims, at test-friendly scale:
//!
//! * Theorem A.1 — belief models stay consistent with the baseline claim;
//! * Example 3.4 — the worked belief-mean numbers;
//! * Figure 3's shape — latency ordering and quality ordering;
//! * Table 9's shape — the prior baseline's output is much longer and the
//!   gap grows with dimensionality;
//! * Lemma A.2 / Theorem A.3 — structural cost bounds of sampling.

use voxolap_belief::model::BeliefModel;
use voxolap_belief::quality::speech_quality;
use voxolap_bench::{outcome_quality, region_season_query};
use voxolap_core::approach::Vocalizer;
use voxolap_core::holistic::{Holistic, HolisticConfig};
use voxolap_core::optimal::Optimal;
use voxolap_core::prior::PriorGreedy;
use voxolap_core::unmerged::{SamplingBudget, Unmerged, UnmergedConfig};
use voxolap_core::voice::{InstantVoice, VirtualVoice};
use voxolap_data::dimension::LevelId;
use voxolap_data::flights::FlightsConfig;
use voxolap_data::salary::SalaryConfig;
use voxolap_data::DimId;
use voxolap_engine::exact::evaluate;
use voxolap_engine::query::{AggFct, Query};
use voxolap_speech::ast::{Baseline, Change, Direction, Predicate, Refinement, Speech};
use voxolap_speech::scope::CompiledSpeech;

#[test]
fn theorem_a1_baseline_consistency() {
    // Any refinement sequence leaves the average belief mean equal to the
    // baseline value.
    let table = SalaryConfig::paper_scale().generate();
    let schema = table.schema();
    let query = Query::builder(AggFct::Avg)
        .group_by(DimId(0), LevelId(1))
        .group_by(DimId(1), LevelId(1))
        .build(schema)
        .unwrap();
    let ne = schema.dimension(DimId(0)).member_by_phrase("the North East").unwrap();
    let mw = schema.dimension(DimId(0)).member_by_phrase("the Midwest").unwrap();
    let hi = schema.dimension(DimId(1)).member_by_phrase("at least 50 K").unwrap();
    let speech = Speech {
        baseline: Baseline::point(77.7),
        refinements: vec![
            Refinement {
                predicates: vec![Predicate { dim: DimId(0), member: ne }],
                change: Change { direction: Direction::Increase, percent: 50 },
            },
            Refinement {
                predicates: vec![Predicate { dim: DimId(1), member: hi }],
                change: Change { direction: Direction::Decrease, percent: 25 },
            },
            Refinement {
                predicates: vec![Predicate { dim: DimId(0), member: mw }],
                change: Change { direction: Direction::Increase, percent: 200 },
            },
        ],
    };
    let cs = CompiledSpeech::compile(&speech, query.layout(), schema);
    let means = cs.means_all(query.layout());
    let avg = means.iter().sum::<f64>() / means.len() as f64;
    assert!((avg - 77.7).abs() < 1e-9, "average of belief means {avg} == baseline 77.7");
}

#[test]
fn example_3_4_numbers() {
    // "The average salary is 80 K. Values increase by 50% for graduates
    // from the Northeast." -> B(Northeast) = N(120_000, sigma),
    // B(others) = N(66_667, sigma), sigma = 40_000 (in K: 120/66.67/40).
    let table = SalaryConfig::paper_scale().generate();
    let schema = table.schema();
    let query = Query::builder(AggFct::Avg).group_by(DimId(0), LevelId(1)).build(schema).unwrap();
    let ne = schema.dimension(DimId(0)).member_by_phrase("the North East").unwrap();
    let speech = Speech {
        baseline: Baseline::point(80.0),
        refinements: vec![Refinement {
            predicates: vec![Predicate { dim: DimId(0), member: ne }],
            change: Change { direction: Direction::Increase, percent: 50 },
        }],
    };
    let cs = CompiledSpeech::compile(&speech, query.layout(), schema);
    let model = BeliefModel::from_overall_mean(80.0);
    assert_eq!(model.sigma(), 40.0, "sigma is half the overall mean");
    let ne_idx = query.layout().coords(DimId(0)).iter().position(|&m| m == ne).unwrap() as u32;
    let b_ne = model.belief(&cs, ne_idx, query.layout());
    assert!((b_ne.mean - 120.0).abs() < 1e-9);
    for agg in 0..query.n_aggregates() as u32 {
        if agg != ne_idx {
            let b = model.belief(&cs, agg, query.layout());
            assert!((b.mean - 200.0 / 3.0).abs() < 1e-6, "others get 66.667, got {}", b.mean);
        }
    }
}

#[test]
fn figure_3_shape_small_scale() {
    let table = FlightsConfig { rows: 30_000, seed: 42 }.generate();
    let query = region_season_query(&table);

    let mut voice = InstantVoice::default();
    let optimal = Optimal::default().vocalize(&table, &query, &mut voice);
    let mut voice = VirtualVoice::new(100.0);
    let holistic =
        Holistic::new(HolisticConfig { resample_size: 200, seed: 42, ..HolisticConfig::default() })
            .vocalize(&table, &query, &mut voice);
    let mut voice = InstantVoice::default();
    // A starved unmerged run (few iterations ~ tight time budget at the
    // paper's data scale).
    let unmerged = Unmerged::new(UnmergedConfig {
        budget: SamplingBudget::Iterations(150),
        resample_size: 200,
        seed: 42,
        ..UnmergedConfig::default()
    })
    .vocalize(&table, &query, &mut voice);

    // Latency ordering: holistic starts speaking immediately; optimal pays
    // for the full evaluation + exhaustive scoring.
    assert!(holistic.latency < optimal.latency, "holistic beats optimal to first word");

    // Quality ordering: holistic close to optimal, starved unmerged below.
    let q_opt = outcome_quality(&optimal, &table, &query);
    let q_hol = outcome_quality(&holistic, &table, &query);
    let q_unm = outcome_quality(&unmerged, &table, &query);
    assert!(q_opt > 0.1, "optimal quality {q_opt}");
    assert!(q_hol > q_opt * 0.6, "holistic {q_hol} close to optimal {q_opt}");
    assert!(q_unm <= q_hol + 0.05, "starved unmerged {q_unm} not above holistic {q_hol}");
}

#[test]
fn table_9_shape_prior_is_much_longer() {
    let table = FlightsConfig { rows: 15_000, seed: 42 }.generate();
    let schema = table.schema();
    // A 2-dimension query at fine granularity: the prior baseline must
    // enumerate every merged value group.
    let query = Query::builder(AggFct::Avg)
        .group_by(DimId(0), LevelId(2))
        .group_by(DimId(1), LevelId(1))
        .build(schema)
        .unwrap();
    let mut voice = InstantVoice::default();
    let prior = PriorGreedy.vocalize(&table, &query, &mut voice);
    let holistic = Holistic::new(HolisticConfig {
        min_samples_per_sentence: 300,
        max_tree_nodes: 50_000,
        ..HolisticConfig::default()
    })
    .vocalize(&table, &query, &mut voice);
    assert!(
        prior.body_len() > 3 * holistic.body_len(),
        "prior {} chars vs holistic {} chars",
        prior.body_len(),
        holistic.body_len()
    );
    assert!(holistic.body_len() <= 300, "this approach respects the budget");
}

#[test]
fn lemma_a2_single_aggregate_belief_is_independent_of_result_size() {
    // Computing the belief for ONE aggregate must not require the full
    // result: verify it agrees with the full instantiation but is usable
    // standalone (structural check of the O(k) path).
    let table = FlightsConfig { rows: 5_000, seed: 42 }.generate();
    let query = Query::builder(AggFct::Avg)
        .group_by(DimId(0), LevelId(2))
        .group_by(DimId(1), LevelId(2))
        .build(table.schema())
        .unwrap();
    let schema = table.schema();
    let winter = schema.dimension(DimId(1)).member_by_phrase("Winter").unwrap();
    let speech = Speech {
        baseline: Baseline::point(0.02),
        refinements: vec![Refinement {
            predicates: vec![Predicate { dim: DimId(1), member: winter }],
            change: Change { direction: Direction::Increase, percent: 100 },
        }],
    };
    let cs = CompiledSpeech::compile(&speech, query.layout(), schema);
    let all = cs.means_all(query.layout());
    for agg in (0..query.n_aggregates() as u32).step_by(17) {
        assert_eq!(cs.mean_for(agg, query.layout()), all[agg as usize]);
    }
}

#[test]
fn quality_metric_correlates_with_estimation_error() {
    // The paper argues its quality metric "correlates with the performance
    // of users in estimating query result values": a higher-quality speech
    // must yield lower listener estimation error.
    use voxolap_simuser::estimation::EstimationStudy;
    let table = FlightsConfig { rows: 40_000, seed: 42 }.generate();
    let query = region_season_query(&table);
    let schema = table.schema();
    let exact = evaluate(&query, &table);
    let model = BeliefModel::from_overall_mean(exact.grand_mean());

    let ne = schema.dimension(DimId(0)).member_by_phrase("the North East").unwrap();
    let good = Speech {
        baseline: Baseline::point(0.015),
        refinements: vec![Refinement {
            predicates: vec![Predicate { dim: DimId(0), member: ne }],
            change: Change { direction: Direction::Increase, percent: 100 },
        }],
    };
    let bad = Speech::baseline_only(0.10);

    let q_good = speech_quality(
        &CompiledSpeech::compile(&good, query.layout(), schema),
        &model,
        &exact,
        query.layout(),
    );
    let q_bad = speech_quality(
        &CompiledSpeech::compile(&bad, query.layout(), schema),
        &model,
        &exact,
        query.layout(),
    );
    assert!(q_good > q_bad);

    let study = EstimationStudy { n_users: 6, noise_rel: 0.02, seed: 42 };
    let result = study.run(&table, &query, &[("good".to_string(), good), ("bad".to_string(), bad)]);
    assert!(
        result.median_abs_err[0] < result.median_abs_err[1],
        "higher quality -> lower median error: {:?}",
        result.median_abs_err
    );
}
