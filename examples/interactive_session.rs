//! Interactive voice-OLAP session over the flights dataset.
//!
//! Type keyword commands like the paper's crowd workers did ("break down
//! by region", "drill down into the start airport", "winter", "help", ...)
//! and hear — well, read, with realistic speaking pauses — the vocalized
//! answers. When stdin is closed (e.g. piped), a scripted demo session
//! runs instead.
//!
//! Run: `cargo run --release -p voxolap-examples --example interactive_session`

use std::io::BufRead;

use voxolap_core::holistic::{Holistic, HolisticConfig};
use voxolap_data::flights::FlightsConfig;
use voxolap_voice::session::{Response, Session};
use voxolap_voice::tts::RealTimeVoice;

fn main() {
    println!("generating flights dataset...");
    let table = FlightsConfig::medium().generate();
    let mut session = Session::new(&table);
    let holistic = Holistic::new(HolisticConfig::default());
    // A brisk voice so the demo doesn't crawl; 15 chars/s is realistic.
    let mut voice = RealTimeVoice::new(120.0);

    println!("say \"help\" for keywords, \"quit\" to leave.\n");

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    let demo: Vec<&str> = vec![
        "help",
        "break down by region",
        "break down by season",
        "winter",
        "drill down into the start airport",
        "quit",
    ];
    let mut demo_iter = demo.into_iter();
    let mut interactive = true;

    loop {
        let input = if interactive {
            match lines.next() {
                Some(Ok(line)) => line,
                _ => {
                    interactive = false;
                    println!("(stdin closed; running scripted demo)");
                    continue;
                }
            }
        } else {
            match demo_iter.next() {
                Some(cmd) => {
                    println!("> {cmd}");
                    cmd.to_string()
                }
                None => break,
            }
        };

        match session.input(&input) {
            Ok(Response::Quit) => {
                println!("goodbye.");
                break;
            }
            Ok(Response::Help(text)) => {
                println!("[voice] {text}");
            }
            Ok(Response::Updated) => match session.vocalize_with(&holistic, &mut voice) {
                Ok(outcome) => {
                    println!("[voice] {}", outcome.full_text());
                    println!(
                        "        (latency {:?}, {} rows sampled, {} planner iterations)",
                        outcome.latency, outcome.stats.rows_read, outcome.stats.samples
                    );
                    voice.wait_until_done();
                }
                Err(e) => println!("[error] {e}"),
            },
            Err(e) => println!("[error] {e}"),
        }
    }
}
