//! Flight-cancellation analysis: the paper's motivating workload.
//!
//! Walks through the introduction's example interaction ("How does the
//! flight cancellation probability depend on flight date and start
//! airport?"), compares all four vocalization approaches on the same
//! query, and demonstrates the §4.4 uncertainty extensions.
//!
//! Run: `cargo run --release -p voxolap-examples --example flight_analysis`

use voxolap_core::approach::Vocalizer;
use voxolap_core::holistic::{Holistic, HolisticConfig};
use voxolap_core::optimal::Optimal;
use voxolap_core::prior::PriorGreedy;
use voxolap_core::uncertainty::UncertaintyMode;
use voxolap_core::unmerged::Unmerged;
use voxolap_core::voice::{InstantVoice, VirtualVoice};
use voxolap_data::dimension::LevelId;
use voxolap_data::flights::FlightsConfig;
use voxolap_data::DimId;
use voxolap_engine::query::{AggFct, Query};

fn main() {
    println!("generating flights dataset...");
    let table = FlightsConfig::medium().generate();
    let schema = table.schema();

    // "How does the cancellation probability in New York depend on flight
    // date and start airport?" -> filter to New York, break down by season
    // and city.
    let ny =
        schema.dimension(DimId(0)).member_by_phrase("New York").expect("New York state exists");
    let query = Query::builder(AggFct::Avg)
        .filter(DimId(0), ny)
        .group_by(DimId(1), LevelId(1)) // season
        .group_by(DimId(0), LevelId(3)) // city
        .build(schema)
        .expect("valid query");

    println!("\n== the paper's introductory query, all approaches ==");
    let approaches: Vec<Box<dyn Vocalizer>> = vec![
        Box::new(Holistic::default()),
        Box::new(Optimal::default()),
        Box::new(Unmerged::default()),
        Box::new(PriorGreedy),
    ];
    for approach in &approaches {
        let mut voice = VirtualVoice::default();
        let outcome = approach.vocalize(&table, &query, &mut voice);
        println!(
            "\n[{}] latency {:?}, {} chars:",
            approach.name(),
            outcome.latency,
            outcome.body_len()
        );
        let text = outcome.full_text();
        if text.len() > 400 {
            println!("  {}...", &text[..400]);
        } else {
            println!("  {text}");
        }
    }

    println!("\n== uncertainty extensions (paper 4.4) ==");
    for (label, mode) in [
        ("warning", UncertaintyMode::Warning { max_relative_width: 0.5 }),
        ("spoken bounds", UncertaintyMode::SpokenBounds),
    ] {
        let holistic =
            Holistic::new(HolisticConfig { uncertainty: mode, ..HolisticConfig::default() });
        let mut voice = InstantVoice::default();
        let outcome = holistic.vocalize(&table, &query, &mut voice);
        println!("\n[{label}]");
        println!("  {}", outcome.body_text());
    }
}
