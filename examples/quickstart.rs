//! Quickstart: vocalize one OLAP query end to end.
//!
//! Generates the salary dataset, asks for average mid-career salary broken
//! down by region and rough start salary, and speaks the answer through
//! the holistic planner — the interaction of the paper's Example 3.1.
//!
//! Run: `cargo run --release -p voxolap-examples --example quickstart`

use voxolap_core::approach::Vocalizer;
use voxolap_core::holistic::{Holistic, HolisticConfig};
use voxolap_core::voice::VirtualVoice;
use voxolap_data::dimension::LevelId;
use voxolap_data::salary::SalaryConfig;
use voxolap_data::DimId;
use voxolap_engine::query::{AggFct, Query};

fn main() {
    // 1. Load data: 320 institutions with mid-career salaries.
    let table = SalaryConfig::paper_scale().generate();

    // 2. Build the query: AVG(midCareer) GROUP BY region, rough start salary.
    let query = Query::builder(AggFct::Avg)
        .group_by(DimId(0), LevelId(1))
        .group_by(DimId(1), LevelId(1))
        .build(table.schema())
        .expect("valid query");

    // 3. Vocalize. The virtual voice models speaking time, so the planner
    //    keeps sampling the database while each sentence "plays".
    let holistic = Holistic::new(HolisticConfig::default());
    let mut voice = VirtualVoice::default();
    let outcome = holistic.vocalize(&table, &query, &mut voice);

    println!("spoken answer:");
    println!("  {}", outcome.full_text());
    println!();
    println!(
        "latency: {:?} | rows sampled: {} | planner iterations: {} | tree nodes: {}",
        outcome.latency, outcome.stats.rows_read, outcome.stats.samples, outcome.stats.tree_nodes
    );
}
