//! Bring your own data: build a schema and fact table through the public
//! API, round-trip it through CSV, and vocalize a query over it.
//!
//! The scenario: a small e-commerce table of order return rates with a
//! product-category hierarchy and a customer-region hierarchy.
//!
//! Run: `cargo run --release -p voxolap-examples --example custom_dataset`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use voxolap_core::approach::Vocalizer;
use voxolap_core::holistic::Holistic;
use voxolap_core::voice::VirtualVoice;
use voxolap_data::csv::{from_csv, to_csv};
use voxolap_data::dimension::{DimensionBuilder, LevelId};
use voxolap_data::schema::{DimId, MeasureUnit, Schema};
use voxolap_data::table::TableBuilder;
use voxolap_engine::query::{AggFct, Query};

fn build_schema() -> Schema {
    // Product dimension: department -> category.
    let mut b = DimensionBuilder::new("product", "orders of", "any product");
    let dept = b.add_level("department");
    let cat = b.add_level("category");
    for (department, categories) in [
        ("electronics", &["phones", "laptops", "cameras"][..]),
        ("clothing", &["shoes", "jackets"][..]),
        ("home", &["furniture", "kitchenware"][..]),
    ] {
        let d = b.add_member(dept, b.root(), department);
        for &c in categories {
            b.add_member(cat, d, c);
        }
    }
    let product = b.build();

    // Customer region dimension: one level.
    let mut b = DimensionBuilder::new("customer region", "customers in", "any region");
    let region = b.add_level("customer region");
    for r in ["Europe", "North America", "Asia"] {
        b.add_member(region, b.root(), r);
    }
    let customer = b.build();

    Schema::new("order returns", vec![product, customer], "return rate", MeasureUnit::Fraction)
}

fn main() {
    let schema = build_schema();

    // Synthesize fact rows: jackets get returned a lot, cameras rarely.
    let mut tb = TableBuilder::new(schema.clone());
    let mut rng = StdRng::seed_from_u64(7);
    let product = schema.dimension(DimId(0));
    let customer = schema.dimension(DimId(1));
    for _ in 0..20_000 {
        let cat = product.leaves()[rng.gen_range(0..product.leaves().len())];
        let region = customer.leaves()[rng.gen_range(0..customer.leaves().len())];
        let base = match product.member(cat).phrase.as_str() {
            "jackets" | "shoes" => 0.22,
            "cameras" => 0.03,
            _ => 0.08,
        };
        let returned = if rng.gen::<f64>() < base { 1.0 } else { 0.0 };
        tb.push_row(&[cat, region], returned).expect("valid rows");
    }
    let table = tb.build();

    // Demonstrate CSV round-tripping (e.g. to load real data instead).
    let csv = to_csv(&table);
    println!("csv preview:\n{}", csv.lines().take(4).collect::<Vec<_>>().join("\n"));
    let table = from_csv(schema, &csv).expect("round-trip parses");

    // AVG(returnRate) GROUP BY department, customer region.
    let query = Query::builder(AggFct::Avg)
        .group_by(DimId(0), LevelId(1))
        .group_by(DimId(1), LevelId(1))
        .build(table.schema())
        .expect("valid query");

    let mut voice = VirtualVoice::default();
    let outcome = Holistic::default().vocalize(&table, &query, &mut voice);
    println!("\nspoken answer:\n  {}", outcome.full_text());
}
