//! Star schemata: vocalize a query whose rows come from a fact table
//! joined against surrogate-keyed dimension tables.
//!
//! The paper's row-source assumption explicitly covers "joining fact table
//! entries with indexed dimension tables" (§2). This example decomposes
//! the flights dataset into star form, streams joined rows to show the
//! row source works at sampling rates, then vocalizes over the
//! (load-time-joined) table.
//!
//! Run: `cargo run --release -p voxolap-examples --example star_schema`

use std::time::Instant;

use voxolap_core::approach::Vocalizer;
use voxolap_core::holistic::Holistic;
use voxolap_core::voice::VirtualVoice;
use voxolap_data::dimension::LevelId;
use voxolap_data::flights::FlightsConfig;
use voxolap_data::star::StarSchema;
use voxolap_data::DimId;
use voxolap_engine::query::{AggFct, Query};

fn main() {
    println!("generating flights dataset and decomposing into star form...");
    let denormalized = FlightsConfig::medium().generate();
    let star = StarSchema::from_table(&denormalized, 7);
    println!(
        "star schema: {} fact rows, dimension tables with {} / {} / {} keys",
        star.row_count(),
        star.dimension_table(DimId(0)).len(),
        star.dimension_table(DimId(1)).len(),
        star.dimension_table(DimId(2)).len(),
    );

    // Stream joined rows — the high-frequency row source the sampling
    // engine requires.
    let t0 = Instant::now();
    let mut scan = star.scan_joined(3);
    let mut rows = 0u64;
    while scan.next_row().is_some() {
        rows += 1;
    }
    let elapsed = t0.elapsed();
    println!(
        "streamed {rows} joined rows in {elapsed:?} ({:.1} M rows/s)",
        rows as f64 / elapsed.as_secs_f64() / 1e6
    );

    // Load-time join, then vocalize as usual.
    let table = star.materialize().expect("star rows are valid");
    let query = Query::builder(AggFct::Avg)
        .group_by(DimId(0), LevelId(1))
        .group_by(DimId(1), LevelId(1))
        .build(table.schema())
        .expect("valid query");
    let mut voice = VirtualVoice::default();
    let outcome = Holistic::default().vocalize(&table, &query, &mut voice);
    println!("\nspoken answer:\n  {}", outcome.full_text());
}
