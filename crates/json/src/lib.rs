//! # voxolap-json
//!
//! A small, dependency-free JSON module serving the server's HTTP API and
//! the experiment harnesses' machine-readable output. It replaces the
//! former `serde`/`serde_json` dependency so the workspace builds fully
//! offline (see `third_party/README.md`).
//!
//! ```
//! use voxolap_json::Value;
//!
//! let v = Value::parse(r#"{"question": "by region", "n": 3}"#).unwrap();
//! assert_eq!(v["question"].as_str(), Some("by region"));
//! assert_eq!(v["n"].as_u64(), Some(3));
//! assert_eq!(v["missing"], Value::Null);
//!
//! let out = Value::obj([("ok", true.into()), ("rows", 8000u64.into())]);
//! assert_eq!(out.to_string(), r#"{"ok":true,"rows":8000}"#);
//! ```

use std::fmt;

/// A JSON value. Object keys keep insertion order so serialized output
/// is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Parse a JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Parse from raw bytes (must be UTF-8).
    pub fn parse_slice(bytes: &[u8]) -> Result<Value, ParseError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| ParseError { msg: "invalid UTF-8".into(), offset: 0 })?;
        Value::parse(text)
    }

    /// Build an object from ordered key/value pairs.
    pub fn obj<'a>(fields: impl IntoIterator<Item = (&'a str, Value)>) -> Value {
        Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member access: `None` unless this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// `value["key"]`, yielding [`Value::Null`] when absent (mirroring
    /// `serde_json`'s behavior, convenient in tests).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(v) => v.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Num(n as f64)
            }
        }
    )*};
}

from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Append `s` JSON-escaped (including the surrounding quotes) to `out`.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A string as a JSON literal (quoted and escaped).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(s, &mut out);
    out
}

fn write_num(n: f64, out: &mut String) {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        // JSON has no NaN/inf; null is the conventional encoding.
        out.push_str("null");
    }
}

impl Value {
    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(*n, out),
            Value::Str(s) => escape_into(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Error from [`Value::parse`] with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub msg: String,
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { msg: msg.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let c = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| self.err("bad surrogate pair"))?,
                                    );
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-borrow the source slice.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| ParseError { msg: format!("bad number {text:?}"), offset: start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            Value::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "s": "x\n\"y\""}"#)
                .unwrap();
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2].as_f64(), Some(-300.0));
        assert!(v["b"]["c"].is_null());
        assert_eq!(v["b"]["d"].as_bool(), Some(true));
        assert_eq!(v["s"].as_str(), Some("x\n\"y\""));
        assert!(v["nope"].is_null());
    }

    #[test]
    fn round_trips() {
        let cases = [
            r#"{"ok":true,"n":42,"f":1.5,"s":"hi","a":[1,2],"z":null}"#,
            r#"[]"#,
            r#"{}"#,
            r#""just a string""#,
        ];
        for case in cases {
            let v = Value::parse(case).unwrap();
            assert_eq!(v.to_string(), case);
        }
    }

    #[test]
    fn integers_serialize_without_decimal_point() {
        assert_eq!(Value::from(8000usize).to_string(), "8000");
        assert_eq!(Value::from(-3i64).to_string(), "-3");
        assert_eq!(Value::from(0.5f64).to_string(), "0.5");
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        let v = Value::Str("tab\there".into());
        assert_eq!(Value::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        let v = Value::parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
        let direct = Value::parse("\"héllo — ok\"").unwrap();
        assert_eq!(direct.as_str(), Some("héllo — ok"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("not json").is_err());
        assert!(Value::parse("{\"a\":}").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{} trailing").is_err());
        assert!(Value::parse("").is_err());
    }

    #[test]
    fn value_compares_to_str() {
        let v = Value::parse(r#"{"approach":"prior"}"#).unwrap();
        assert_eq!(v["approach"], "prior");
    }

    #[test]
    fn obj_builder_preserves_order() {
        let v = Value::obj([("b", 1u32.into()), ("a", 2u32.into())]);
        assert_eq!(v.to_string(), r#"{"b":1,"a":2}"#);
    }
}
