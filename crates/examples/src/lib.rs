//! Thin anchor crate for the workspace-level `examples/` directory.
//!
//! Run the examples with, e.g.:
//!
//! ```text
//! cargo run --release -p voxolap-examples --example quickstart
//! cargo run --release -p voxolap-examples --example flight_analysis
//! cargo run --release -p voxolap-examples --example interactive_session
//! cargo run --release -p voxolap-examples --example custom_dataset
//! ```
