//! Seeded fault plans and the injector that rolls against them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::{splitmix64, unit_f64};

/// Named injection points in the Ingest→Plan/Sample→Commit→Emit graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A batch read from the data source (table scan) — Ingest stage.
    DataRead = 0,
    /// An access to a sharded sample-cache bucket — models a thread dying
    /// while holding a shard lock (the bucket is marked torn).
    CacheShard = 1,
    /// One UCT sampling iteration — Plan/Sample stage.
    Sample = 2,
    /// Starting a committed sentence on the voice output — Emit stage.
    Emit = 3,
    /// A write-ahead-log record write during a durable ingest commit —
    /// Storage stage (transient: the batch fails but the log stays
    /// usable).
    WalAppend = 4,
    /// A WAL fsync — Storage stage. Fatal for the log by the fsyncgate
    /// rule: a failed fsync may have lost pages silently, so the log is
    /// poisoned rather than retried.
    WalFsync = 5,
    /// A snapshot compaction write — Storage stage (non-fatal: the WAL
    /// keeps the data and compaction is retried at the next interval).
    SnapshotWrite = 6,
}

/// Number of distinct fault sites.
pub const N_SITES: usize = 7;

impl FaultSite {
    /// All sites, in wire order.
    pub const ALL: [FaultSite; N_SITES] = [
        FaultSite::DataRead,
        FaultSite::CacheShard,
        FaultSite::Sample,
        FaultSite::Emit,
        FaultSite::WalAppend,
        FaultSite::WalFsync,
        FaultSite::SnapshotWrite,
    ];

    /// Stable short name (used by the `--fault-plan` spec).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::DataRead => "read",
            FaultSite::CacheShard => "shard",
            FaultSite::Sample => "sample",
            FaultSite::Emit => "emit",
            FaultSite::WalAppend => "wal",
            FaultSite::WalFsync => "fsync",
            FaultSite::SnapshotWrite => "snap",
        }
    }

    /// Per-site hash salt so the same counter value rolls independently
    /// at different sites.
    fn salt(self) -> u64 {
        [
            0xA076_1D64_78BD_642F,
            0xE703_7ED1_A0B4_28DB,
            0x8EBC_6AF0_9C88_C6E3,
            0x5899_65CC_7537_4CC3,
            0x1D8E_4E27_C47D_124F,
            0xEB44_ACCA_B455_D165,
            0x9E6C_63D0_76CC_4391,
        ][self as usize]
    }
}

/// What happens at a site when its roll comes up: an added stall, an
/// error, or both.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteSchedule {
    /// Per-roll fault probability in `[0, 1]`.
    pub probability: f64,
    /// Stall injected on each fault (zero = none).
    pub latency: Duration,
    /// Whether the fault is an error (vs. latency only).
    pub error: bool,
}

impl SiteSchedule {
    /// An error schedule with the given probability and no added latency.
    pub fn error(probability: f64) -> Self {
        SiteSchedule { probability, latency: Duration::ZERO, error: true }
    }
}

/// A seeded, per-site fault schedule. Empty by default; sites opt in via
/// [`with_site`](FaultPlan::with_site) or the [`parse`](FaultPlan::parse)
/// spec string.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of the deterministic roll stream.
    pub seed: u64,
    sites: [Option<SiteSchedule>; N_SITES],
}

impl FaultPlan {
    /// An empty plan (no site faults) rolling under `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, sites: [None; N_SITES] }
    }

    /// Attach a schedule to one site.
    pub fn with_site(mut self, site: FaultSite, schedule: SiteSchedule) -> Self {
        self.sites[site as usize] = Some(schedule);
        self
    }

    /// The schedule at `site`, if any.
    pub fn site(&self, site: FaultSite) -> Option<SiteSchedule> {
        self.sites[site as usize]
    }

    /// Whether no site has a schedule (the injector is inert).
    pub fn is_empty(&self) -> bool {
        self.sites.iter().all(Option::is_none)
    }

    /// Parse a `--fault-plan` spec: comma-separated `key=value` pairs.
    ///
    /// Plan keys: `seed=N`, per-site probabilities `read=P`, `shard=P`,
    /// `sample=P`, `emit=P`, `wal=P`, `fsync=P`, `snap=P` (each in
    /// `[0,1]`), `latency_us=N` (stall added
    /// to every enabled site), and `latency_only` (faults stall but do not
    /// error). Unknown keys are rejected so typos surface immediately.
    ///
    /// ```
    /// use voxolap_faults::{FaultPlan, FaultSite};
    /// let plan = FaultPlan::parse("seed=7,read=0.2,emit=0.05").unwrap();
    /// assert_eq!(plan.seed, 7);
    /// assert_eq!(plan.site(FaultSite::DataRead).unwrap().probability, 0.2);
    /// assert!(plan.site(FaultSite::Sample).is_none());
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        let mut latency = Duration::ZERO;
        let mut error = true;
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            if part == "latency_only" {
                error = false;
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault-plan: expected key=value, got {part:?}"))?;
            let bad = |what: &str| format!("fault-plan: bad {what} in {part:?}");
            match key.trim() {
                "seed" => plan.seed = value.trim().parse().map_err(|_| bad("seed"))?,
                "latency_us" => {
                    latency =
                        Duration::from_micros(value.trim().parse().map_err(|_| bad("latency"))?);
                }
                site_key => {
                    let site = FaultSite::ALL
                        .into_iter()
                        .find(|s| s.name() == site_key)
                        .ok_or_else(|| format!("fault-plan: unknown key {site_key:?}"))?;
                    let p: f64 = value.trim().parse().map_err(|_| bad("probability"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(bad("probability (must be in [0,1])"));
                    }
                    plan.sites[site as usize] =
                        Some(SiteSchedule { probability: p, latency: Duration::ZERO, error: true });
                }
            }
        }
        for slot in plan.sites.iter_mut().flatten() {
            slot.latency = latency;
            slot.error = error;
        }
        Ok(plan)
    }
}

/// One fault that came up at a site.
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    /// Where it was injected.
    pub site: FaultSite,
    /// Stall to apply (already the schedule's value).
    pub latency: Duration,
    /// Whether this fault is an error (vs. latency only).
    pub error: bool,
    /// The roll's hash — a deterministic token callers may reuse to
    /// derive further per-fault randomness (e.g. retry jitter).
    pub token: u64,
}

impl Fault {
    /// Apply the fault's latency (no-op for zero stalls).
    pub fn stall(&self) {
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
    }
}

/// Rolls faults against a [`FaultPlan`].
///
/// Each site keeps its own atomic roll counter; roll `n` at a site hashes
/// `seed ^ salt(site) ^ f(n)`, so outcomes are a pure function of
/// `(seed, site, n)` — reproducible across thread interleavings for any
/// fixed per-site roll order, and trivially so single-threaded. A site
/// with no schedule short-circuits before touching its counter.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    counters: [AtomicU64; N_SITES],
    injected: [AtomicU64; N_SITES],
}

impl FaultInjector {
    /// Create an injector over `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            injected: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The plan being rolled.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Roll at `site`: `None` (nothing happens) or the fault to apply.
    #[inline]
    pub fn roll(&self, site: FaultSite) -> Option<Fault> {
        let sched = self.plan.sites[site as usize]?;
        let n = self.counters[site as usize].fetch_add(1, Ordering::Relaxed);
        let token =
            splitmix64(self.plan.seed ^ site.salt() ^ n.wrapping_mul(0x2545_F491_4F6C_DD1D));
        if unit_f64(token) < sched.probability {
            self.injected[site as usize].fetch_add(1, Ordering::Relaxed);
            Some(Fault { site, latency: sched.latency, error: sched.error, token })
        } else {
            None
        }
    }

    /// Faults injected so far at `site`.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site as usize].load(Ordering::Relaxed)
    }

    /// Faults injected so far across all sites.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_faults_and_keeps_counters_idle() {
        let inj = FaultInjector::new(FaultPlan::new(9));
        for _ in 0..1000 {
            assert!(inj.roll(FaultSite::DataRead).is_none());
        }
        assert_eq!(inj.total_injected(), 0);
        // The site had no schedule, so its counter never advanced.
        assert_eq!(inj.counters[FaultSite::DataRead as usize].load(Ordering::Relaxed), 0);
    }

    #[test]
    fn rolls_are_deterministic_under_seed() {
        let plan = FaultPlan::new(3).with_site(FaultSite::Sample, SiteSchedule::error(0.3));
        let run = || {
            let inj = FaultInjector::new(plan.clone());
            (0..200).map(|_| inj.roll(FaultSite::Sample).is_some()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        assert!(run().iter().any(|&f| f), "p=0.3 over 200 rolls fires");
        assert!(run().iter().any(|&f| !f), "p=0.3 over 200 rolls also misses");
    }

    #[test]
    fn probability_is_roughly_honored() {
        let plan = FaultPlan::new(11).with_site(FaultSite::DataRead, SiteSchedule::error(0.2));
        let inj = FaultInjector::new(plan);
        for _ in 0..10_000 {
            inj.roll(FaultSite::DataRead);
        }
        let rate = inj.injected(FaultSite::DataRead) as f64 / 10_000.0;
        assert!((0.15..0.25).contains(&rate), "rate {rate}");
    }

    #[test]
    fn sites_roll_independently() {
        let plan = FaultPlan::new(5)
            .with_site(FaultSite::DataRead, SiteSchedule::error(1.0))
            .with_site(FaultSite::Emit, SiteSchedule::error(0.0));
        let inj = FaultInjector::new(plan);
        assert!(inj.roll(FaultSite::DataRead).is_some());
        assert!(inj.roll(FaultSite::Emit).is_none());
        assert!(inj.roll(FaultSite::Sample).is_none(), "unscheduled site is silent");
    }

    #[test]
    fn parse_full_spec() {
        let plan =
            FaultPlan::parse("seed=17, read=0.5, shard=0.1, sample=0.2, emit=0.05, latency_us=250")
                .unwrap();
        assert_eq!(plan.seed, 17);
        let read = plan.site(FaultSite::DataRead).unwrap();
        assert_eq!(read.probability, 0.5);
        assert_eq!(read.latency, Duration::from_micros(250));
        assert!(read.error);
        assert!(!plan.is_empty());
    }

    #[test]
    fn parse_storage_sites() {
        let plan = FaultPlan::parse("seed=4,wal=0.2,fsync=0.1,snap=0.5").unwrap();
        assert_eq!(plan.site(FaultSite::WalAppend).unwrap().probability, 0.2);
        assert_eq!(plan.site(FaultSite::WalFsync).unwrap().probability, 0.1);
        assert_eq!(plan.site(FaultSite::SnapshotWrite).unwrap().probability, 0.5);
        assert!(plan.site(FaultSite::DataRead).is_none());
        let inj = FaultInjector::new(FaultPlan::new(1).with_site(
            FaultSite::WalFsync,
            SiteSchedule::error(1.0),
        ));
        assert!(inj.roll(FaultSite::WalFsync).is_some());
        assert!(inj.roll(FaultSite::WalAppend).is_none(), "storage sites roll independently");
    }

    #[test]
    fn parse_latency_only_and_rejects_garbage() {
        let plan = FaultPlan::parse("emit=1.0,latency_only,latency_us=10").unwrap();
        let emit = plan.site(FaultSite::Emit).unwrap();
        assert!(!emit.error);
        assert_eq!(emit.latency, Duration::from_micros(10));
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("read=1.5").is_err());
        assert!(FaultPlan::parse("read").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }
}
