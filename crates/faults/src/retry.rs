//! Exponential backoff with deterministic full jitter.

use std::time::Duration;

use crate::{splitmix64, unit_f64};

/// Retry schedule for a failed operation: up to `max_retries` attempts,
/// sleeping `base · 2^attempt` (capped at `cap`) scaled by a jitter
/// factor in `[0.5, 1.0)`. The jitter is derived from the caller's token
/// (e.g. the fault's roll hash) so a seeded chaos run reproduces its
/// exact sleep schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum retry attempts after the initial failure.
    pub max_retries: u32,
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound on any single delay (pre-jitter).
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base: Duration::from_micros(50),
            cap: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// The jittered delay before retry `attempt` (0-based). Guaranteed in
    /// `[exp/2, exp]` where `exp = min(cap, base · 2^attempt)`.
    pub fn delay(&self, attempt: u32, token: u64) -> Duration {
        let exp =
            self.base.saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX)).min(self.cap);
        let jitter = 0.5 + 0.5 * unit_f64(splitmix64(token ^ u64::from(attempt)));
        exp.mul_f64(jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_grows_exponentially_until_cap() {
        let p = RetryPolicy {
            max_retries: 5,
            base: Duration::from_micros(100),
            cap: Duration::from_micros(350),
        };
        // Pre-jitter envelopes: 100, 200, 350 (capped), 350, ...
        assert!(p.delay(0, 1) <= Duration::from_micros(100));
        assert!(p.delay(1, 1) <= Duration::from_micros(200));
        assert!(p.delay(1, 1) >= Duration::from_micros(100));
        assert!(p.delay(4, 1) <= Duration::from_micros(350));
        assert!(p.delay(4, 1) >= Duration::from_micros(175));
    }

    #[test]
    fn jitter_stays_within_half_to_full_envelope() {
        let p = RetryPolicy::default();
        for attempt in 0..=p.max_retries {
            let exp = p.base.saturating_mul(1 << attempt).min(p.cap);
            for token in 0..500u64 {
                let d = p.delay(attempt, token);
                assert!(d >= exp.mul_f64(0.5), "attempt {attempt} token {token}: {d:?} < half");
                assert!(d <= exp, "attempt {attempt} token {token}: {d:?} > envelope");
            }
        }
    }

    #[test]
    fn jitter_is_deterministic_per_token_and_varies_across_tokens() {
        let p = RetryPolicy::default();
        assert_eq!(p.delay(1, 99), p.delay(1, 99));
        let distinct: std::collections::HashSet<Duration> =
            (0..50u64).map(|t| p.delay(0, t)).collect();
        assert!(distinct.len() > 25, "jitter spreads: {} distinct", distinct.len());
    }

    #[test]
    fn huge_attempt_does_not_overflow() {
        let p = RetryPolicy::default();
        assert!(p.delay(63, 7) <= p.cap);
    }
}
