//! Degradation observability counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters recording how often each rung of the
/// degradation ladder was exercised. One instance typically lives for a
/// whole process (CLI session, server) and is fed by every run.
#[derive(Debug, Default)]
pub struct DegradeStats {
    /// Data-source read retries performed.
    pub retries: AtomicU64,
    /// Circuit-breaker trips (closed→open and failed-probe re-opens).
    pub breaker_trips: AtomicU64,
    /// Runs that fell back to already-cached samples because their
    /// source's breaker was open.
    pub cache_fallbacks: AtomicU64,
    /// Cache shards rebuilt after lock poisoning / torn state.
    pub poison_recoveries: AtomicU64,
    /// Answers completed with `degraded: true`.
    pub degraded_answers: AtomicU64,
    /// Answers completed clean.
    pub clean_answers: AtomicU64,
}

impl DegradeStats {
    /// A plain-value copy of the counters.
    pub fn snapshot(&self) -> DegradeSnapshot {
        DegradeSnapshot {
            retries: self.retries.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            cache_fallbacks: self.cache_fallbacks.load(Ordering::Relaxed),
            poison_recoveries: self.poison_recoveries.load(Ordering::Relaxed),
            degraded_answers: self.degraded_answers.load(Ordering::Relaxed),
            clean_answers: self.clean_answers.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`DegradeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegradeSnapshot {
    /// See [`DegradeStats::retries`].
    pub retries: u64,
    /// See [`DegradeStats::breaker_trips`].
    pub breaker_trips: u64,
    /// See [`DegradeStats::cache_fallbacks`].
    pub cache_fallbacks: u64,
    /// See [`DegradeStats::poison_recoveries`].
    pub poison_recoveries: u64,
    /// See [`DegradeStats::degraded_answers`].
    pub degraded_answers: u64,
    /// See [`DegradeStats::clean_answers`].
    pub clean_answers: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let s = DegradeStats::default();
        s.retries.fetch_add(3, Ordering::Relaxed);
        s.degraded_answers.fetch_add(1, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.retries, 3);
        assert_eq!(snap.degraded_answers, 1);
        assert_eq!(snap.clean_answers, 0);
    }
}
