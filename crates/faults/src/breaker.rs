//! Per-source circuit breaker: closed → open → half-open.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, consecutive failures are counted.
    Closed,
    /// Tripped: requests are refused until the cooldown elapses.
    Open,
    /// Cooling down finished: exactly one probe request is in flight.
    HalfOpen,
}

const CLOSED: u8 = 0;
const OPEN: u8 = 1;
const HALF_OPEN: u8 = 2;

/// A lock-free circuit breaker guarding one upstream source.
///
/// `threshold` consecutive failures trip it open; after `cooldown` the
/// next [`allow`](CircuitBreaker::allow) call wins a CAS and becomes the
/// single half-open probe. The probe's [`on_success`] closes the breaker,
/// its [`on_failure`] re-opens it for another cooldown.
///
/// [`on_success`]: CircuitBreaker::on_success
/// [`on_failure`]: CircuitBreaker::on_failure
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    state: AtomicU8,
    consecutive: AtomicU32,
    trips: AtomicU64,
    /// When the breaker last opened, as micros since `epoch` (valid only
    /// while not closed).
    opened_at_us: AtomicU64,
    epoch: Instant,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive failures
    /// and probing again `cooldown` after each trip.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            state: AtomicU8::new(CLOSED),
            consecutive: AtomicU32::new(0),
            trips: AtomicU64::new(0),
            opened_at_us: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Current state (half-open is reported while a probe is pending).
    pub fn state(&self) -> BreakerState {
        match self.state.load(Ordering::Acquire) {
            OPEN => BreakerState::Open,
            HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Times this breaker has tripped open (re-opens after a failed probe
    /// included).
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Whether the caller may attempt the guarded operation now. While
    /// open, returns `false` until the cooldown elapses; the first caller
    /// after that becomes the half-open probe (everyone else keeps
    /// getting `false` until the probe reports back).
    pub fn allow(&self) -> bool {
        match self.state.load(Ordering::Acquire) {
            CLOSED => true,
            HALF_OPEN => false,
            _ => {
                let opened = self.opened_at_us.load(Ordering::Acquire);
                let elapsed = (self.epoch.elapsed().as_micros() as u64).saturating_sub(opened);
                if Duration::from_micros(elapsed) < self.cooldown {
                    return false;
                }
                // Cooldown over: exactly one caller wins the probe slot.
                self.state
                    .compare_exchange(OPEN, HALF_OPEN, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            }
        }
    }

    /// Report a successful guarded operation: resets the failure streak
    /// and closes the breaker (a half-open probe succeeding).
    pub fn on_success(&self) {
        self.consecutive.store(0, Ordering::Relaxed);
        if self.state.load(Ordering::Acquire) != CLOSED {
            self.state.store(CLOSED, Ordering::Release);
        }
    }

    /// Report a failed guarded operation. Returns `true` when this
    /// failure tripped the breaker open (including a failed half-open
    /// probe re-opening it).
    pub fn on_failure(&self) -> bool {
        if self.state.compare_exchange(HALF_OPEN, OPEN, Ordering::AcqRel, Ordering::Acquire).is_ok()
        {
            self.stamp_open();
            return true;
        }
        let streak = self.consecutive.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= self.threshold
            && self
                .state
                .compare_exchange(CLOSED, OPEN, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            self.stamp_open();
            return true;
        }
        false
    }

    fn stamp_open(&self) {
        self.opened_at_us.store(self.epoch.elapsed().as_micros() as u64, Ordering::Release);
        self.trips.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(threshold, Duration::from_millis(cooldown_ms))
    }

    #[test]
    fn stays_closed_below_threshold_and_resets_on_success() {
        let b = breaker(3, 60_000);
        assert!(!b.on_failure());
        assert!(!b.on_failure());
        b.on_success();
        assert!(!b.on_failure());
        assert!(!b.on_failure());
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn trips_open_at_threshold_and_refuses() {
        let b = breaker(3, 60_000);
        assert!(!b.on_failure());
        assert!(!b.on_failure());
        assert!(b.on_failure(), "third consecutive failure trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(), "open breaker refuses while cooling down");
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn half_open_probe_success_closes() {
        let b = breaker(1, 0);
        assert!(b.on_failure());
        // Zero cooldown: the next allow() becomes the probe...
        assert!(b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // ...and only that one caller gets through.
        assert!(!b.allow());
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let b = breaker(1, 0);
        assert!(b.on_failure());
        assert!(b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.on_failure(), "failed probe counts as a fresh trip");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn cooldown_gates_the_probe() {
        let b = breaker(1, 30);
        assert!(b.on_failure());
        assert!(!b.allow(), "cooldown not elapsed");
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.allow(), "cooldown elapsed: probe granted");
    }

    #[test]
    fn closed_to_open_to_half_open_to_closed_cycle() {
        let b = breaker(2, 10);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure();
        assert!(b.on_failure());
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(20));
        assert!(b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 1);
    }
}
