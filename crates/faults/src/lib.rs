//! # voxolap-faults
//!
//! Deterministic fault injection and graceful-degradation primitives
//! (DESIGN.md §12).
//!
//! The pipeline stages of the streaming planner — Ingest, Plan/Sample,
//! Commit, Emit — each expose a named **fault site** ([`FaultSite`]). A
//! seeded [`FaultPlan`] assigns a probability/latency/error schedule to
//! any subset of sites; a [`FaultInjector`] rolls against it with a
//! counter-hash (splitmix64 over `seed ^ site ^ counter`), so a schedule
//! is reproducible from its seed alone, independent of thread
//! interleaving, and consumes **no planner randomness**: with no schedule
//! attached every roll is a branch on a `None` — planning output stays
//! bit-identical to a build without the harness.
//!
//! On top of the injector, the crate carries the degradation ladder the
//! engine climbs when a site actually fails:
//!
//! 1. [`RetryPolicy`] — exponential backoff with deterministic full
//!    jitter around data-source reads;
//! 2. [`CircuitBreaker`] — per-source closed → open → half-open breaker;
//!    while open, ingestion stops and planning continues on the sample
//!    cache already built (semantic-cache warm rows included);
//! 3. the *anytime answer*: when a deadline or the run's fault budget
//!    ([`RunState`]) is exhausted mid-plan, the planner commits the best
//!    baseline it has and stops, tagging the answer `degraded`.
//!
//! [`DegradeStats`] aggregates what happened across runs for
//! observability (`GET /stats`).

mod breaker;
mod hub;
mod plan;
mod retry;
mod stats;

pub use breaker::{BreakerState, CircuitBreaker};
pub use hub::{DegradeReason, Resilience, RunState};
pub use plan::{Fault, FaultInjector, FaultPlan, FaultSite, SiteSchedule};
pub use retry::RetryPolicy;
pub use stats::{DegradeSnapshot, DegradeStats};

/// splitmix64 — the crate's only randomness primitive. Stateless: the
/// caller supplies the full input, so identical inputs give identical
/// outputs on every thread.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Map a hash to a uniform f64 in `[0, 1)`.
#[inline]
pub(crate) fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_stateless_and_spread() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        let u = unit_f64(splitmix64(7));
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn unit_f64_covers_range() {
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for i in 0..10_000u64 {
            let u = unit_f64(splitmix64(i));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01, "min {lo}");
        assert!(hi > 0.99, "max {hi}");
    }
}
