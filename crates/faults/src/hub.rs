//! The resilience bundle an engine carries, and per-run degrade state.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::breaker::CircuitBreaker;
use crate::plan::{Fault, FaultInjector, FaultPlan, FaultSite};
use crate::retry::RetryPolicy;
use crate::stats::DegradeStats;

/// Why a run's answer was degraded (the first cause wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The planning deadline expired; an anytime answer was emitted.
    Deadline = 1,
    /// The run's fault budget was exhausted mid-plan.
    FaultBudget = 2,
    /// The data source's breaker opened; planning continued on cached
    /// samples only.
    CacheFallback = 3,
    /// Sentence emission failed; the speech was cut short.
    EmitFailure = 4,
}

impl DegradeReason {
    fn from_u8(v: u8) -> Option<DegradeReason> {
        match v {
            1 => Some(DegradeReason::Deadline),
            2 => Some(DegradeReason::FaultBudget),
            3 => Some(DegradeReason::CacheFallback),
            4 => Some(DegradeReason::EmitFailure),
            _ => None,
        }
    }

    /// Stable wire name (surfaced in logs and stats).
    pub fn name(self) -> &'static str {
        match self {
            DegradeReason::Deadline => "deadline",
            DegradeReason::FaultBudget => "fault_budget",
            DegradeReason::CacheFallback => "cache_fallback",
            DegradeReason::EmitFailure => "emit_failure",
        }
    }
}

/// Per-run degrade state: the fault tally against the budget, and the
/// degraded flag the answer is tagged with. Shared (via `Arc`) between
/// the samplers, the sentence source, and the emitting stream of one run.
#[derive(Debug)]
pub struct RunState {
    faults: AtomicU64,
    budget: u64,
    reason: AtomicU8,
    fell_back: AtomicBool,
}

impl RunState {
    /// Fresh state with the given fault budget (`u64::MAX` = unlimited).
    pub fn new(budget: u64) -> Self {
        RunState {
            faults: AtomicU64::new(0),
            budget,
            reason: AtomicU8::new(0),
            fell_back: AtomicBool::new(false),
        }
    }

    /// Count one observed fault; returns the new tally.
    pub fn note_fault(&self) -> u64 {
        self.faults.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Faults observed so far.
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Whether the fault budget is exhausted (the anytime-answer trigger).
    pub fn budget_exhausted(&self) -> bool {
        self.faults.load(Ordering::Relaxed) >= self.budget
    }

    /// Tag the run degraded; the first recorded reason is kept.
    pub fn mark_degraded(&self, reason: DegradeReason) {
        let _ = self.reason.compare_exchange(0, reason as u8, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Record that this run fell back to cached samples because its data
    /// source became unavailable; `true` exactly once per run, so the
    /// caller can count fallbacks without double-counting.
    pub fn note_fallback(&self) -> bool {
        !self.fell_back.swap(true, Ordering::Relaxed)
    }

    /// Whether the answer must be tagged `degraded: true`.
    pub fn degraded(&self) -> bool {
        self.reason.load(Ordering::Relaxed) != 0
    }

    /// The first degrade cause, if any.
    pub fn reason(&self) -> Option<DegradeReason> {
        DegradeReason::from_u8(self.reason.load(Ordering::Relaxed))
    }
}

impl Default for RunState {
    fn default() -> Self {
        RunState::new(u64::MAX)
    }
}

/// Everything an engine needs to degrade gracefully, bundled: the
/// (optional) fault injector, the retry policy, per-source circuit
/// breakers, the per-run fault budget, and the process-wide
/// [`DegradeStats`]. Engines hold it behind an `Arc`; with no injector it
/// is inert — every roll is a `None` branch and no planner randomness or
/// iteration count changes.
#[derive(Debug)]
pub struct Resilience {
    injector: Option<Arc<FaultInjector>>,
    retry: RetryPolicy,
    breaker_threshold: u32,
    breaker_cooldown: Duration,
    fault_budget: u64,
    stats: Arc<DegradeStats>,
    breakers: Mutex<HashMap<String, Arc<CircuitBreaker>>>,
}

impl Default for Resilience {
    fn default() -> Self {
        Resilience::new(None)
    }
}

impl Resilience {
    /// A bundle with default ladder settings; `plan` enables injection.
    pub fn new(plan: Option<FaultPlan>) -> Self {
        Resilience {
            injector: plan.map(|p| Arc::new(FaultInjector::new(p))),
            retry: RetryPolicy::default(),
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_millis(10),
            fault_budget: 256,
            stats: Arc::new(DegradeStats::default()),
            breakers: Mutex::new(HashMap::new()),
        }
    }

    /// Parse the full `--fault-plan` spec: every [`FaultPlan::parse`] key
    /// plus the ladder keys `budget=N` (per-run fault budget),
    /// `retries=N`, `backoff_us=N` (retry base), `breaker=N` (trip
    /// threshold), and `cooldown_ms=N`.
    pub fn from_spec(spec: &str) -> Result<Resilience, String> {
        let mut plan_parts: Vec<&str> = Vec::new();
        let mut out = Resilience::new(None);
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let bad = |what: &str| format!("fault-plan: bad {what} in {part:?}");
            match part.split_once('=').map(|(k, v)| (k.trim(), v.trim())) {
                Some(("budget", v)) => out.fault_budget = v.parse().map_err(|_| bad("budget"))?,
                Some(("retries", v)) => {
                    out.retry.max_retries = v.parse().map_err(|_| bad("retries"))?;
                }
                Some(("backoff_us", v)) => {
                    out.retry.base = Duration::from_micros(v.parse().map_err(|_| bad("backoff"))?);
                }
                Some(("breaker", v)) => {
                    out.breaker_threshold = v.parse().map_err(|_| bad("breaker threshold"))?;
                }
                Some(("cooldown_ms", v)) => {
                    out.breaker_cooldown =
                        Duration::from_millis(v.parse().map_err(|_| bad("cooldown"))?);
                }
                _ => plan_parts.push(part),
            }
        }
        let plan = FaultPlan::parse(&plan_parts.join(","))?;
        if !plan.is_empty() || plan.seed != 0 {
            out.injector = Some(Arc::new(FaultInjector::new(plan)));
        }
        Ok(out)
    }

    /// Override the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Override breaker trip threshold and cooldown.
    pub fn with_breaker(mut self, threshold: u32, cooldown: Duration) -> Self {
        self.breaker_threshold = threshold;
        self.breaker_cooldown = cooldown;
        self
    }

    /// Override the per-run fault budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.fault_budget = budget;
        self
    }

    /// The attached injector, if any (shared with engine caches).
    pub fn injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// Roll the injector at `site` (`None` without an injector or when
    /// the roll misses).
    #[inline]
    pub fn roll(&self, site: FaultSite) -> Option<Fault> {
        self.injector.as_ref()?.roll(site)
    }

    /// The retry policy for source reads.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// A fresh per-run state carrying this bundle's fault budget.
    pub fn new_run(&self) -> Arc<RunState> {
        Arc::new(RunState::new(self.fault_budget))
    }

    /// The breaker guarding `source`, created on first use. The registry
    /// lock itself recovers from poisoning — the map only ever grows, so
    /// a panicked holder cannot leave it torn.
    pub fn breaker(&self, source: &str) -> Arc<CircuitBreaker> {
        let mut map = self.breakers.lock().unwrap_or_else(|poisoned| {
            self.breakers.clear_poison();
            poisoned.into_inner()
        });
        map.entry(source.to_string())
            .or_insert_with(|| {
                Arc::new(CircuitBreaker::new(self.breaker_threshold, self.breaker_cooldown))
            })
            .clone()
    }

    /// The shared degradation counters.
    pub fn stats(&self) -> &Arc<DegradeStats> {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SiteSchedule;

    #[test]
    fn inert_bundle_never_rolls_faults() {
        let r = Resilience::default();
        assert!(r.injector().is_none());
        for site in FaultSite::ALL {
            assert!(r.roll(site).is_none());
        }
    }

    #[test]
    fn breakers_are_per_source_and_cached() {
        let r = Resilience::default();
        let a = r.breaker("table");
        let b = r.breaker("table");
        assert!(Arc::ptr_eq(&a, &b), "same source, same breaker");
        let c = r.breaker("other");
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn run_state_counts_fallback_once() {
        let run = RunState::default();
        assert!(run.note_fallback(), "first fallback counts");
        assert!(!run.note_fallback(), "repeat fallbacks do not");
    }

    #[test]
    fn run_state_tracks_budget_and_first_reason() {
        let run = RunState::new(2);
        assert!(!run.budget_exhausted());
        run.note_fault();
        assert!(!run.budget_exhausted());
        run.note_fault();
        assert!(run.budget_exhausted());
        assert!(!run.degraded());
        run.mark_degraded(DegradeReason::FaultBudget);
        run.mark_degraded(DegradeReason::Deadline);
        assert_eq!(run.reason(), Some(DegradeReason::FaultBudget), "first cause wins");
        assert!(run.degraded());
    }

    #[test]
    fn from_spec_parses_plan_and_ladder_keys() {
        let r = Resilience::from_spec(
            "seed=9,read=0.25,budget=32,retries=4,backoff_us=10,breaker=3,cooldown_ms=5",
        )
        .unwrap();
        let inj = r.injector().expect("plan attached");
        assert_eq!(inj.plan().seed, 9);
        assert_eq!(inj.plan().site(FaultSite::DataRead).unwrap().probability, 0.25);
        assert_eq!(r.retry().max_retries, 4);
        assert_eq!(r.retry().base, Duration::from_micros(10));
        assert_eq!(r.fault_budget, 32);
        let run = r.new_run();
        for _ in 0..32 {
            run.note_fault();
        }
        assert!(run.budget_exhausted());
        assert!(Resilience::from_spec("nonsense").is_err());
    }

    #[test]
    fn roll_respects_attached_plan() {
        let plan = FaultPlan::new(1).with_site(FaultSite::Emit, SiteSchedule::error(1.0));
        let r = Resilience::new(Some(plan));
        assert!(r.roll(FaultSite::Emit).is_some());
        assert!(r.roll(FaultSite::DataRead).is_none());
        assert_eq!(r.stats().snapshot().retries, 0);
    }
}
