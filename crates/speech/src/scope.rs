//! Compilation of speeches against a query's result layout.
//!
//! A [`CompiledSpeech`] resolves, once per speech:
//!
//! * each refinement's **scope** — the set of result aggregates its
//!   predicates cover, stored as per-dimension coordinate masks so that a
//!   membership test costs `O(#dimensions)`;
//! * each refinement's **additive delta** Δ — the paper's semantics make
//!   changes relative "either to the baseline value or to the last
//!   refinement whose scope subsumes the current one" (§3.2), so the
//!   reference value chains through subsuming refinements;
//! * the belief **mean** `M(a, t)` for any aggregate `a` (paper §3.4):
//!   the baseline sets all means, an in-scope refinement adds Δ, and
//!   out-of-scope aggregates absorb `−m·Δ/(n−m)` to keep the overall
//!   average consistent with the baseline (Theorem A.1).
//!
//! Computing the mean for a *single* aggregate costs `O(k)` in the number
//! of fragments (Lemma A.2) — the planner never instantiates the full
//! belief model during sampling.

use voxolap_data::schema::Schema;
use voxolap_engine::query::{AggIdx, ResultLayout};

use crate::ast::{Refinement, Speech};

/// The aggregate scope of one refinement, as per-dimension coordinate masks.
#[derive(Debug, Clone)]
pub struct RefinementScope {
    /// `masks[d]` is `None` when dimension `d` is unrestricted, else a
    /// boolean mask over that dimension's coordinates.
    masks: Vec<Option<Vec<bool>>>,
    /// Number of aggregates in scope (`m` in the paper's formulas).
    size: usize,
}

impl RefinementScope {
    /// Resolve a refinement's predicates against a layout.
    pub fn compile(r: &Refinement, layout: &ResultLayout, schema: &Schema) -> Self {
        let n_dims = schema.dimensions().len();
        let mut masks: Vec<Option<Vec<bool>>> = vec![None; n_dims];
        let mut size = layout.n_aggregates();
        for p in &r.predicates {
            let radix = layout.radix(p.dim) as usize;
            let mut mask = vec![false; radix];
            let covered = layout.coord_indices_under(p.dim, p.member, schema);
            for &c in &covered {
                mask[c as usize] = true;
            }
            // Multiple predicates on one dimension intersect.
            let merged = match masks[p.dim.index()].take() {
                None => mask,
                Some(prev) => prev.iter().zip(&mask).map(|(&a, &b)| a && b).collect(),
            };
            masks[p.dim.index()] = Some(merged);
        }
        // Scope size = product over dims of allowed coordinate counts.
        size = masks.iter().enumerate().fold(size, |acc, (d, m)| match m {
            None => acc,
            Some(mask) => {
                let radix = layout.radix(voxolap_data::DimId(d as u8)) as usize;
                let allowed = mask.iter().filter(|&&b| b).count();
                acc / radix * allowed
            }
        });
        RefinementScope { masks, size }
    }

    /// Number of aggregates in scope (`m`).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Membership test on decomposed aggregate coordinates.
    #[inline]
    pub fn contains_coords(&self, coords: &[u32]) -> bool {
        self.masks.iter().zip(coords).all(|(m, &c)| match m {
            None => true,
            Some(mask) => mask[c as usize],
        })
    }

    /// Membership test on an aggregate index.
    pub fn contains(&self, agg: AggIdx, layout: &ResultLayout) -> bool {
        self.contains_coords(&layout.coords_of_agg(agg))
    }
}

/// One refinement with its resolved scope and additive delta.
#[derive(Debug, Clone)]
pub struct CompiledRefinement {
    /// The resolved aggregate scope.
    pub scope: RefinementScope,
    /// The additive change Δ applied to in-scope aggregates.
    pub delta: f64,
}

/// A speech compiled against a query layout: ready for O(k) belief-mean
/// evaluation per aggregate.
#[derive(Debug, Clone)]
pub struct CompiledSpeech {
    baseline_value: f64,
    refinements: Vec<CompiledRefinement>,
    n_aggs: usize,
}

impl CompiledSpeech {
    /// Compile `speech` against `layout`.
    pub fn compile(speech: &Speech, layout: &ResultLayout, schema: &Schema) -> Self {
        let n_aggs = layout.n_aggregates();
        let baseline = speech.baseline.value;

        // Reference values chain through subsuming refinements: the
        // reference of refinement j is the value implied by the *last*
        // previous refinement whose scope subsumes j's, or the baseline.
        let is_anc =
            |dim: voxolap_data::DimId, a: voxolap_data::MemberId, d: voxolap_data::MemberId| {
                schema.dimension(dim).is_ancestor_or_self(a, d)
            };
        let mut implied_values: Vec<f64> = Vec::with_capacity(speech.refinements.len());
        let mut compiled = Vec::with_capacity(speech.refinements.len());
        for (j, r) in speech.refinements.iter().enumerate() {
            let mut reference = baseline;
            for i in (0..j).rev() {
                if speech.refinements[i].subsumes(r, is_anc) {
                    reference = implied_values[i];
                    break;
                }
            }
            let implied = reference * r.change.factor();
            implied_values.push(implied);
            compiled.push(CompiledRefinement {
                scope: RefinementScope::compile(r, layout, schema),
                delta: implied - reference,
            });
        }
        CompiledSpeech { baseline_value: baseline, refinements: compiled, n_aggs }
    }

    /// The baseline value (absolute claim).
    pub fn baseline_value(&self) -> f64 {
        self.baseline_value
    }

    /// Compiled refinements in speaking order.
    pub fn refinements(&self) -> &[CompiledRefinement] {
        &self.refinements
    }

    /// Number of result aggregates (`n`).
    pub fn n_aggregates(&self) -> usize {
        self.n_aggs
    }

    /// Belief mean `M(a, t)` for one aggregate — O(k) (paper Lemma A.2).
    pub fn mean_for(&self, agg: AggIdx, layout: &ResultLayout) -> f64 {
        let coords = layout.coords_of_agg(agg);
        let mut mean = self.baseline_value;
        let n = self.n_aggs as f64;
        for r in &self.refinements {
            let m = r.scope.size() as f64;
            if r.scope.contains_coords(&coords) {
                mean += r.delta;
            } else if m < n {
                // Out-of-scope compensation keeping the baseline consistent.
                mean -= m * r.delta / (n - m);
            }
        }
        mean
    }

    /// Belief means for every aggregate (used for exact quality).
    pub fn means_all(&self, layout: &ResultLayout) -> Vec<f64> {
        (0..self.n_aggs as u32).map(|a| self.mean_for(a, layout)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::salary::SalaryConfig;
    use voxolap_data::{DimId, Table};
    use voxolap_engine::query::{AggFct, Query};

    use crate::ast::{Baseline, Change, Direction, Predicate, Speech};

    fn setup() -> (Table, Query) {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .build(table.schema())
            .unwrap();
        (table, q)
    }

    fn ne_refinement(schema: &voxolap_data::Schema, percent: u32) -> crate::ast::Refinement {
        let ne = schema.dimension(DimId(0)).member_by_phrase("the North East").unwrap();
        crate::ast::Refinement {
            predicates: vec![Predicate { dim: DimId(0), member: ne }],
            change: Change { direction: Direction::Increase, percent },
        }
    }

    #[test]
    fn example_3_4_reproduced_exactly() {
        // "The average salary is 80 K. Values increase by 50% for graduates
        // from the Northeast." -> Northeast 120,000; others 66,667.
        let (table, q) = setup();
        let schema = table.schema();
        let speech = Speech {
            baseline: Baseline::point(80.0),
            refinements: vec![ne_refinement(schema, 50)],
        };
        let cs = CompiledSpeech::compile(&speech, q.layout(), schema);
        assert_eq!(cs.n_aggregates(), 4);
        let means = cs.means_all(q.layout());
        // Find the Northeast aggregate.
        let ne = schema.dimension(DimId(0)).member_by_phrase("the North East").unwrap();
        let ne_idx = q.layout().coords(DimId(0)).iter().position(|&m| m == ne).unwrap();
        assert!((means[ne_idx] - 120.0).abs() < 1e-9);
        for (i, &m) in means.iter().enumerate() {
            if i != ne_idx {
                assert!((m - 200.0 / 3.0).abs() < 1e-6, "others get 66.667, got {m}");
            }
        }
    }

    #[test]
    fn baseline_consistency_theorem_a1() {
        // The mean over all aggregates always equals the baseline value.
        let (table, q) = setup();
        let schema = table.schema();
        let speech = Speech {
            baseline: Baseline::point(80.0),
            refinements: vec![ne_refinement(schema, 50), {
                let mw = schema.dimension(DimId(0)).member_by_phrase("the Midwest").unwrap();
                crate::ast::Refinement {
                    predicates: vec![Predicate { dim: DimId(0), member: mw }],
                    change: Change { direction: Direction::Decrease, percent: 25 },
                }
            }],
        };
        let cs = CompiledSpeech::compile(&speech, q.layout(), schema);
        let means = cs.means_all(q.layout());
        let avg: f64 = means.iter().sum::<f64>() / means.len() as f64;
        assert!((avg - 80.0).abs() < 1e-9, "average of means {avg} == baseline");
    }

    #[test]
    fn scope_size_multiplies_across_dims() {
        let table = SalaryConfig::paper_scale().generate();
        let schema = table.schema();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1)) // 4 regions
            .group_by(DimId(1), LevelId(1)) // 2 rough bins
            .build(schema)
            .unwrap();
        let r = ne_refinement(schema, 10);
        let scope = RefinementScope::compile(&r, q.layout(), schema);
        // NE fixes the region coordinate: 1 x 2 = 2 of 8 aggregates.
        assert_eq!(scope.size(), 2);
        let n_in: usize =
            (0..q.n_aggregates() as u32).filter(|&a| scope.contains(a, q.layout())).count();
        assert_eq!(n_in, 2);
    }

    #[test]
    fn chained_reference_uses_subsuming_refinement() {
        // Region-level claim then state-level claim under the same region:
        // the second change is relative to the first's implied value.
        let table = SalaryConfig::paper_scale().generate();
        let schema = table.schema();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(2)) // by state (16 states)
            .build(schema)
            .unwrap();
        let college = schema.dimension(DimId(0));
        let ne = college.member_by_phrase("the North East").unwrap();
        let ny = college.member_by_phrase("New York").unwrap();
        let speech = Speech {
            baseline: Baseline::point(100.0),
            refinements: vec![
                crate::ast::Refinement {
                    predicates: vec![Predicate { dim: DimId(0), member: ne }],
                    change: Change { direction: Direction::Increase, percent: 10 },
                },
                crate::ast::Refinement {
                    predicates: vec![Predicate { dim: DimId(0), member: ny }],
                    change: Change { direction: Direction::Increase, percent: 50 },
                },
            ],
        };
        let cs = CompiledSpeech::compile(&speech, q.layout(), schema);
        // First delta: 100 * 0.1 = 10. Second reference = 110, delta = 55.
        assert!((cs.refinements()[0].delta - 10.0).abs() < 1e-9);
        assert!((cs.refinements()[1].delta - 55.0).abs() < 1e-9);
    }

    #[test]
    fn non_subsuming_refinements_reference_baseline() {
        let table = SalaryConfig::paper_scale().generate();
        let schema = table.schema();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(schema)
            .unwrap();
        let hi = schema.dimension(DimId(1)).member_by_phrase("at least 50 K").unwrap();
        let speech = Speech {
            baseline: Baseline::point(80.0),
            refinements: vec![
                ne_refinement(schema, 50),
                crate::ast::Refinement {
                    predicates: vec![Predicate { dim: DimId(1), member: hi }],
                    change: Change { direction: Direction::Increase, percent: 25 },
                },
            ],
        };
        let cs = CompiledSpeech::compile(&speech, q.layout(), schema);
        // Second refinement is on a different dimension: reference is the
        // baseline, delta = 80 * 0.25 = 20.
        assert!((cs.refinements()[1].delta - 20.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_only_speech_means_are_uniform() {
        let (table, q) = setup();
        let cs = CompiledSpeech::compile(&Speech::baseline_only(42.0), q.layout(), table.schema());
        assert!(cs.means_all(q.layout()).iter().all(|&m| (m - 42.0).abs() < 1e-12));
    }

    #[test]
    fn full_scope_refinement_does_not_divide_by_zero() {
        let (table, q) = setup();
        let schema = table.schema();
        let root = schema.dimension(DimId(0)).root();
        let speech = Speech {
            baseline: Baseline::point(10.0),
            refinements: vec![crate::ast::Refinement {
                predicates: vec![Predicate { dim: DimId(0), member: root }],
                change: Change { direction: Direction::Increase, percent: 100 },
            }],
        };
        let cs = CompiledSpeech::compile(&speech, q.layout(), schema);
        let means = cs.means_all(q.layout());
        assert!(means.iter().all(|m| m.is_finite()));
    }
}
