//! EBNF-faithful text rendering of speeches (paper Figure 1).
//!
//! The preamble is derived entirely from the query: it names the scope of
//! every dimension (paper Example 3.1: *"Considering graduates from any
//! college and a start salary of any amount. Results are broken down by
//! region and rough start salary."*) and therefore carries no planning
//! choices — which is why the engine can start speaking it before any data
//! has been read.

use voxolap_data::schema::{MeasureUnit, Schema};
use voxolap_engine::query::{AggFct, Query};

use crate::ast::{Direction, Refinement, Speech};
use crate::verbalize::{verbalize_range, verbalize_value};

/// The unit baseline values are verbalized in, given the aggregation
/// function: averages keep the measure's unit; counts are plain row
/// numbers; sums of fraction measures (0/1 flags) are plain totals, not
/// percentages.
pub fn render_unit(fct: AggFct, measure_unit: MeasureUnit) -> MeasureUnit {
    match fct {
        AggFct::Avg => measure_unit,
        AggFct::Count => MeasureUnit::Plain,
        AggFct::Sum => {
            if measure_unit == MeasureUnit::Fraction {
                MeasureUnit::Plain
            } else {
                measure_unit
            }
        }
    }
}

/// The aggregate name `<A>` for a query: "average mid-career salary",
/// "total departure delay in minutes", or "number of rows" (a count does
/// not involve the measure column).
pub fn aggregate_phrase(fct: AggFct, measure_name: &str) -> String {
    match fct {
        AggFct::Count => "number of rows".to_string(),
        _ => format!("{} {}", fct.spoken(), measure_name),
    }
}

/// Renders speeches for one query against one schema.
#[derive(Debug, Clone, Copy)]
pub struct Renderer<'a> {
    schema: &'a Schema,
    query: &'a Query,
}

/// Join phrases Oxford-free as the grammar prescribes:
/// `a`, `a and b`, `a, b and c`.
fn join_phrases(parts: &[String]) -> String {
    match parts.len() {
        0 => String::new(),
        1 => parts[0].clone(),
        _ => {
            let head = parts[..parts.len() - 1].join(", ");
            format!("{head} and {}", parts[parts.len() - 1])
        }
    }
}

/// Uppercase the first character of a sentence.
fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

impl<'a> Renderer<'a> {
    /// Create a renderer for `query` over `schema`.
    pub fn new(schema: &'a Schema, query: &'a Query) -> Self {
        Renderer { schema, query }
    }

    /// The preamble (`<Pr>`): query scope plus breakdown levels.
    pub fn preamble(&self) -> String {
        let layout = self.query.layout();
        let scope_parts: Vec<String> =
            self.schema.dims().map(|(d, dim)| dim.predicate_phrase(layout.scope(d))).collect();
        let mut out = format!("Considering {}.", join_phrases(&scope_parts));
        let level_parts: Vec<String> = self
            .query
            .group_by()
            .iter()
            .map(|&(d, l)| self.schema.dimension(d).level_name(l).to_string())
            .collect();
        if !level_parts.is_empty() {
            out.push_str(&format!(" Results are broken down by {}.", join_phrases(&level_parts)));
        }
        out
    }

    /// The baseline sentence (`<B> ::= <V> is the <A>.`). `<V>` is either a
    /// point value ("90 K", "around two percent") or a spoken range
    /// ("five to ten percent").
    pub fn baseline_sentence(&self, speech: &Speech) -> String {
        let measure = self.schema.measure(self.query.measure());
        let unit = render_unit(self.query.fct(), measure.unit);
        let v = match speech.baseline.spoken_range {
            Some((lo, hi)) => verbalize_range(lo, hi, unit),
            None => verbalize_value(speech.baseline.value, unit),
        };
        let a = aggregate_phrase(self.query.fct(), &measure.name);
        capitalize(&format!("{v} is the {a}."))
    }

    /// One refinement sentence
    /// (`<R> ::= Values <C> for <P> (, <P>)* and <P>.`).
    pub fn refinement_sentence(&self, r: &Refinement) -> String {
        let verb = match r.change.direction {
            Direction::Increase => "increase",
            Direction::Decrease => "decrease",
        };
        let preds: Vec<String> = r
            .predicates
            .iter()
            .map(|p| self.schema.dimension(p.dim).predicate_phrase(p.member))
            .collect();
        format!("Values {verb} by {} percent for {}.", r.change.percent, join_phrases(&preds))
    }

    /// The speech body: baseline plus refinements (no preamble). This is
    /// the part the character-budget constraint applies to.
    pub fn body_text(&self, speech: &Speech) -> String {
        let mut out = self.baseline_sentence(speech);
        for r in &speech.refinements {
            out.push(' ');
            out.push_str(&self.refinement_sentence(r));
        }
        out
    }

    /// Body length in characters (the quantity bounded by user preferences).
    pub fn body_len(&self, speech: &Speech) -> usize {
        self.body_text(speech).chars().count()
    }

    /// The complete speech text: preamble followed by the body.
    pub fn speech_text(&self, speech: &Speech) -> String {
        format!("{} {}", self.preamble(), self.body_text(speech))
    }

    /// The sentence a given fragment index contributes:
    /// fragment 0 is the baseline, fragment `i ≥ 1` the `i`-th refinement.
    /// Used by the pipelined engine to hand single sentences to the TTS.
    pub fn fragment_sentence(&self, speech: &Speech, fragment: usize) -> String {
        if fragment == 0 {
            self.baseline_sentence(speech)
        } else {
            self.refinement_sentence(&speech.refinements[fragment - 1])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::salary::SalaryConfig;
    use voxolap_data::DimId;
    use voxolap_engine::query::AggFct;

    use crate::ast::{Baseline, Change, Predicate};

    fn setup() -> (voxolap_data::Table, Query) {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        (table, q)
    }

    fn example_speech(schema: &Schema) -> Speech {
        let college = schema.dimension(DimId(0));
        let start = schema.dimension(DimId(1));
        let ne = college.member_by_phrase("the North East").unwrap();
        let hi = start.member_by_phrase("at least 50 K").unwrap();
        Speech {
            baseline: Baseline::point(90.0),
            refinements: vec![
                Refinement {
                    predicates: vec![Predicate { dim: DimId(0), member: ne }],
                    change: Change { direction: Direction::Increase, percent: 5 },
                },
                Refinement {
                    predicates: vec![Predicate { dim: DimId(1), member: hi }],
                    change: Change { direction: Direction::Increase, percent: 20 },
                },
            ],
        }
    }

    #[test]
    fn preamble_matches_example_3_1() {
        let (table, q) = setup();
        let r = Renderer::new(table.schema(), &q);
        assert_eq!(
            r.preamble(),
            "Considering graduates from any college and a start salary of any amount. \
             Results are broken down by region and rough start salary."
        );
    }

    #[test]
    fn body_matches_example_3_1() {
        let (table, q) = setup();
        let r = Renderer::new(table.schema(), &q);
        let s = example_speech(table.schema());
        assert_eq!(
            r.body_text(&s),
            "90 K is the average mid-career salary. \
             Values increase by 5 percent for graduates from the North East. \
             Values increase by 20 percent for a start salary of at least 50 K."
        );
    }

    #[test]
    fn fragment_sentences_decompose_body() {
        let (table, q) = setup();
        let r = Renderer::new(table.schema(), &q);
        let s = example_speech(table.schema());
        let joined = format!(
            "{} {} {}",
            r.fragment_sentence(&s, 0),
            r.fragment_sentence(&s, 1),
            r.fragment_sentence(&s, 2)
        );
        assert_eq!(joined, r.body_text(&s));
    }

    #[test]
    fn body_len_counts_characters() {
        let (table, q) = setup();
        let r = Renderer::new(table.schema(), &q);
        let s = Speech::baseline_only(90.0);
        assert_eq!(r.body_len(&s), r.body_text(&s).chars().count());
    }

    #[test]
    fn range_baseline_renders_as_in_table_13() {
        let (table, q) = setup();
        let r = Renderer::new(table.schema(), &q);
        let speech =
            Speech { baseline: crate::ast::Baseline::range(80.0, 90.0), refinements: Vec::new() };
        assert_eq!(r.baseline_sentence(&speech), "80 to 90 K is the average mid-career salary.");
    }

    #[test]
    fn decrease_direction_renders() {
        let (table, q) = setup();
        let schema = table.schema();
        let r = Renderer::new(schema, &q);
        let mw = schema.dimension(DimId(0)).member_by_phrase("the Midwest").unwrap();
        let refinement = Refinement {
            predicates: vec![Predicate { dim: DimId(0), member: mw }],
            change: Change { direction: Direction::Decrease, percent: 10 },
        };
        assert_eq!(
            r.refinement_sentence(&refinement),
            "Values decrease by 10 percent for graduates from the Midwest."
        );
    }

    #[test]
    fn multi_predicate_refinement_joins_with_and() {
        let (table, q) = setup();
        let schema = table.schema();
        let r = Renderer::new(schema, &q);
        let ne = schema.dimension(DimId(0)).member_by_phrase("the North East").unwrap();
        let hi = schema.dimension(DimId(1)).member_by_phrase("at least 50 K").unwrap();
        let refinement = Refinement {
            predicates: vec![
                Predicate { dim: DimId(0), member: ne },
                Predicate { dim: DimId(1), member: hi },
            ],
            change: Change { direction: Direction::Increase, percent: 25 },
        };
        let text = r.refinement_sentence(&refinement);
        assert!(
            text.ends_with("graduates from the North East and a start salary of at least 50 K."),
            "{text}"
        );
    }

    #[test]
    fn speech_text_concatenates_preamble_and_body() {
        let (table, q) = setup();
        let r = Renderer::new(table.schema(), &q);
        let s = Speech::baseline_only(90.0);
        let full = r.speech_text(&s);
        assert!(full.starts_with("Considering"));
        assert!(full.ends_with("90 K is the average mid-career salary."));
    }

    #[test]
    fn ungrouped_query_preamble_has_no_breakdown() {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Count).build(table.schema()).unwrap();
        let r = Renderer::new(table.schema(), &q);
        assert!(!r.preamble().contains("broken down"));
    }

    #[test]
    fn join_phrases_shapes() {
        assert_eq!(join_phrases(&[]), "");
        assert_eq!(join_phrases(&["a".into()]), "a");
        assert_eq!(join_phrases(&["a".into(), "b".into()]), "a and b");
        assert_eq!(join_phrases(&["a".into(), "b".into(), "c".into()]), "a, b and c");
    }
}
