//! Speech abstract syntax (paper Figure 1).
//!
//! ```text
//! <Speech>     ::= <Pr> <B> <R>*
//! <Pr>         ::= Considering <P> (, <P>)* and <P>.
//!                  [Results are broken down by <L> (, <L>)* and <L>.]
//! <B>          ::= <V> is the <A>.
//! <R>          ::= Values <C> for <P> (, <P>)* and <P>.
//! <C>          ::= (increase|decrease) by <Q>
//! <P>          ::= <Dc> <M>
//! ```
//!
//! The preamble is derived from the query and carries no free choices, so
//! the AST holds only the baseline and the refinements. Changes are
//! *relative* (a percentage of a reference value), which is what makes
//! speeches extensible without contradiction (paper Example 3.2).

use voxolap_data::dimension::MemberId;
use voxolap_data::schema::DimId;

/// Direction of a change descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Values increase relative to the reference.
    Increase,
    /// Values decrease relative to the reference.
    Decrease,
}

/// Relative change descriptor (`<C>` with quantifier `<Q>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Change {
    /// Increase or decrease.
    pub direction: Direction,
    /// Quantifier, in percent of the reference value.
    pub percent: u32,
}

impl Change {
    /// Signed multiplicative factor: `1 + percent/100` for increases,
    /// `1 - percent/100` for decreases.
    pub fn factor(&self) -> f64 {
        let p = self.percent as f64 / 100.0;
        match self.direction {
            Direction::Increase => 1.0 + p,
            Direction::Decrease => 1.0 - p,
        }
    }

    /// Additive delta relative to `reference`.
    pub fn delta(&self, reference: f64) -> f64 {
        reference * (self.factor() - 1.0)
    }
}

/// A predicate fixing one dimension to a member (`<P> ::= <Dc> <M>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// The restricted dimension.
    pub dim: DimId,
    /// The member the dimension is fixed to (at or above grouping level).
    pub member: MemberId,
}

/// The baseline statement (`<B>`): the only absolute claim in a speech.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Baseline {
    /// The claimed typical aggregate value (raw units of the measure).
    /// For range baselines this is the range midpoint — the value the
    /// belief semantics anchor on.
    pub value: f64,
    /// Optional spoken range (paper Table 13: "Five to ten percent is the
    /// average cancellation probability"). Affects rendering only; belief
    /// semantics use `value`.
    pub spoken_range: Option<(f64, f64)>,
}

impl Baseline {
    /// A point baseline.
    pub fn point(value: f64) -> Self {
        Baseline { value, spoken_range: None }
    }

    /// A range baseline anchored on the midpoint.
    pub fn range(lo: f64, hi: f64) -> Self {
        Baseline { value: (lo + hi) / 2.0, spoken_range: Some((lo, hi)) }
    }
}

/// A refinement statement (`<R>`): predicates define its scope, the change
/// descriptor its effect relative to the baseline or the last subsuming
/// refinement.
#[derive(Debug, Clone, PartialEq)]
pub struct Refinement {
    /// Scope predicates (non-empty; at most one per dimension).
    pub predicates: Vec<Predicate>,
    /// The relative change.
    pub change: Change,
}

impl Refinement {
    /// `true` iff this refinement's scope subsumes `other`'s — i.e. every
    /// predicate of `self` is implied by `other`'s predicates, checked with
    /// the given ancestor test. A dimension without predicate is implicitly
    /// the root (all rows), which subsumes everything.
    pub fn subsumes(
        &self,
        other: &Refinement,
        is_ancestor_or_self: impl Fn(DimId, MemberId, MemberId) -> bool,
    ) -> bool {
        self.predicates.iter().all(|p| {
            other
                .predicates
                .iter()
                .find(|q| q.dim == p.dim)
                .is_some_and(|q| is_ancestor_or_self(p.dim, p.member, q.member))
        })
    }
}

/// A full speech: baseline plus refinements. The preamble is derived from
/// the query at rendering time.
#[derive(Debug, Clone, PartialEq)]
pub struct Speech {
    /// The baseline statement.
    pub baseline: Baseline,
    /// Refinements, in speaking order.
    pub refinements: Vec<Refinement>,
}

impl Speech {
    /// A speech consisting of only a (point) baseline.
    pub fn baseline_only(value: f64) -> Self {
        Speech { baseline: Baseline::point(value), refinements: Vec::new() }
    }

    /// Extend with one more refinement (returns a new speech — prefixes are
    /// shared freely in the search tree).
    pub fn with_refinement(&self, r: Refinement) -> Self {
        let mut s = self.clone();
        s.refinements.push(r);
        s
    }

    /// Number of speech fragments: the baseline plus each refinement.
    pub fn fragment_count(&self) -> usize {
        1 + self.refinements.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(dim: u8, member: u32) -> Predicate {
        Predicate { dim: DimId(dim), member: MemberId(member) }
    }

    #[test]
    fn change_factor_and_delta() {
        let up = Change { direction: Direction::Increase, percent: 50 };
        assert!((up.factor() - 1.5).abs() < 1e-12);
        assert!((up.delta(80.0) - 40.0).abs() < 1e-12);
        let down = Change { direction: Direction::Decrease, percent: 25 };
        assert!((down.factor() - 0.75).abs() < 1e-12);
        assert!((down.delta(100.0) + 25.0).abs() < 1e-12);
    }

    #[test]
    fn with_refinement_is_persistent() {
        let base = Speech::baseline_only(80.0);
        let r = Refinement {
            predicates: vec![p(0, 1)],
            change: Change { direction: Direction::Increase, percent: 5 },
        };
        let extended = base.with_refinement(r);
        assert_eq!(base.fragment_count(), 1);
        assert_eq!(extended.fragment_count(), 2);
    }

    #[test]
    fn subsumption_via_ancestor_test() {
        // Pretend member 1 is an ancestor of member 2 in dim 0.
        let anc = |_: DimId, a: MemberId, d: MemberId| a == d || (a.0 == 1 && d.0 == 2);
        let coarse = Refinement {
            predicates: vec![p(0, 1)],
            change: Change { direction: Direction::Increase, percent: 10 },
        };
        let fine = Refinement {
            predicates: vec![p(0, 2), p(1, 7)],
            change: Change { direction: Direction::Increase, percent: 10 },
        };
        assert!(coarse.subsumes(&fine, anc), "coarser scope subsumes finer");
        assert!(!fine.subsumes(&coarse, anc), "finer scope does not subsume coarser");
        // A refinement subsumes itself.
        assert!(coarse.subsumes(&coarse, anc));
    }

    #[test]
    fn disjoint_dims_do_not_subsume() {
        let anc = |_: DimId, a: MemberId, d: MemberId| a == d;
        let on_dim0 = Refinement {
            predicates: vec![p(0, 1)],
            change: Change { direction: Direction::Increase, percent: 10 },
        };
        let on_dim1 = Refinement {
            predicates: vec![p(1, 1)],
            change: Change { direction: Direction::Increase, percent: 10 },
        };
        assert!(!on_dim0.subsumes(&on_dim1, anc));
        assert!(!on_dim1.subsumes(&on_dim0, anc));
    }
}
