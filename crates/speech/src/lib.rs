//! # voxolap-speech
//!
//! The speech grammar of paper §3.2 and everything needed to work with it:
//!
//! * [`ast`] — the abstract syntax (preamble ∘ baseline ∘ refinement*), with
//!   relative change descriptors;
//! * [`verbalize`] — number verbalization at one significant digit
//!   ("around two percent", "90 K");
//! * [`render`] — EBNF-faithful text rendering of speeches;
//! * [`scope`] — compilation of refinement predicates into aggregate-scope
//!   masks over a query's [`ResultLayout`](voxolap_engine::ResultLayout);
//! * [`candidates`] — enumeration of baseline and refinement candidates
//!   (the `SG.Refinements` speech-generation function);
//! * [`constraints`] — user-preference limits on speech length (characters)
//!   and fragment count (`SG.IsValid`).
//!
//! ```
//! use voxolap_data::salary::SalaryConfig;
//! use voxolap_data::{DimId, dimension::LevelId};
//! use voxolap_engine::query::{AggFct, Query};
//! use voxolap_speech::ast::{Speech, Baseline, Refinement, Predicate, Change, Direction};
//! use voxolap_speech::render::Renderer;
//!
//! let table = SalaryConfig::paper_scale().generate();
//! let schema = table.schema();
//! let query = Query::builder(AggFct::Avg)
//!     .group_by(DimId(0), LevelId(1))
//!     .group_by(DimId(1), LevelId(1))
//!     .build(schema).unwrap();
//!
//! let college = schema.dimension(DimId(0));
//! let ne = college.member_by_phrase("the North East").unwrap();
//! let speech = Speech {
//!     baseline: Baseline::point(90.0),
//!     refinements: vec![Refinement {
//!         predicates: vec![Predicate { dim: DimId(0), member: ne }],
//!         change: Change { direction: Direction::Increase, percent: 5 },
//!     }],
//! };
//! let text = Renderer::new(schema, &query).speech_text(&speech);
//! assert!(text.contains("90 K is the average"));
//! assert!(text.contains("increase by 5 percent"));
//! ```

pub mod ast;
pub mod candidates;
pub mod constraints;
pub mod parse;
pub mod render;
pub mod scope;
pub mod verbalize;

pub use ast::{Baseline, Change, Direction, Predicate, Refinement, Speech};
pub use candidates::{CandidateConfig, CandidateGenerator};
pub use constraints::SpeechConstraints;
pub use parse::{parse_body, SpeechParseError};
pub use render::{aggregate_phrase, render_unit, Renderer};
pub use scope::{CompiledSpeech, RefinementScope};
