//! Number verbalization.
//!
//! Following the paper's setup (§B.2, citing prior user studies), numerical
//! values are spoken at **one significant digit**. Fractions are spoken as
//! percentages with small numbers written out ("around two percent",
//! "around one point five percent"); dollar amounts in thousands ("90 K").

use voxolap_data::schema::MeasureUnit;

/// Round `v` to `digits` significant digits (`digits ≥ 1`).
///
/// `0`, `NaN`, and infinities are returned unchanged. Rounding goes
/// through scientific-notation formatting rather than multiply/divide by
/// powers of ten — the arithmetic route returns values like
/// `199999.99999999997` for `round_significant(200000.0, 1)` because
/// `1e-5` is not exactly representable.
pub fn round_significant(v: f64, digits: u32) -> f64 {
    if v == 0.0 || !v.is_finite() {
        return v;
    }
    let prec = (digits.max(1) - 1) as usize;
    format!("{v:.prec$e}").parse().expect("scientific notation round-trips")
}

/// English words for small cardinals; larger values fall back to digits.
pub fn number_word(n: u32) -> String {
    const SMALL: [&str; 21] = [
        "zero",
        "one",
        "two",
        "three",
        "four",
        "five",
        "six",
        "seven",
        "eight",
        "nine",
        "ten",
        "eleven",
        "twelve",
        "thirteen",
        "fourteen",
        "fifteen",
        "sixteen",
        "seventeen",
        "eighteen",
        "nineteen",
        "twenty",
    ];
    const TENS: [(u32, &str); 8] = [
        (30, "thirty"),
        (40, "forty"),
        (50, "fifty"),
        (60, "sixty"),
        (70, "seventy"),
        (80, "eighty"),
        (90, "ninety"),
        (100, "one hundred"),
    ];
    if (n as usize) < SMALL.len() {
        return SMALL[n as usize].to_string();
    }
    for (v, w) in TENS {
        if n == v {
            return w.to_string();
        }
    }
    n.to_string()
}

/// Speak a (already rounded) percentage number: `2.0` → `"two"`,
/// `1.5` → `"one point five"`, `0.25` → `"a quarter"`, `0.5` → `"half a"`,
/// `35.0` → `"35"`.
pub fn percent_number(p: f64) -> String {
    if (p - 0.25).abs() < 1e-9 {
        return "a quarter".to_string();
    }
    if (p - 0.5).abs() < 1e-9 {
        return "half a".to_string();
    }
    let rounded = (p * 10.0).round() / 10.0;
    let int = rounded.trunc() as u32;
    let tenth = ((rounded - rounded.trunc()) * 10.0).round() as u32;
    if tenth == 0 {
        if int <= 20 {
            number_word(int)
        } else {
            int.to_string()
        }
    } else if int <= 20 {
        format!("{} point {}", number_word(int), number_word(tenth))
    } else {
        format!("{rounded}")
    }
}

/// Verbalize an aggregate value `v` for the baseline statement.
///
/// * `Fraction` — `0.02` → `"around two percent"`;
/// * `DollarsK` — `90.0` → `"90 K"`;
/// * `Plain` — one-significant-digit number.
pub fn verbalize_value(v: f64, unit: MeasureUnit) -> String {
    match unit {
        MeasureUnit::Fraction => {
            let p = round_significant(v * 100.0, 2);
            format!("around {} percent", percent_number(p))
        }
        MeasureUnit::DollarsK => {
            let k = round_significant(v, 2);
            if k == k.trunc() {
                format!("{} K", k as i64)
            } else {
                format!("{k} K")
            }
        }
        MeasureUnit::Plain => {
            let r = round_significant(v, 1);
            if r == r.trunc() && r.abs() < 1e15 {
                format!("{}", r as i64)
            } else {
                format!("{r}")
            }
        }
    }
}

/// Verbalize a value range for range baselines (paper Table 13:
/// "Five to ten percent is the average cancellation probability").
pub fn verbalize_range(lo: f64, hi: f64, unit: MeasureUnit) -> String {
    match unit {
        MeasureUnit::Fraction => {
            let l = percent_number(round_significant(lo * 100.0, 2));
            let h = percent_number(round_significant(hi * 100.0, 2));
            format!("{l} to {h} percent")
        }
        MeasureUnit::DollarsK => {
            let fmt = |v: f64| {
                let k = round_significant(v, 2);
                if k == k.trunc() {
                    format!("{}", k as i64)
                } else {
                    format!("{k}")
                }
            };
            format!("{} to {} K", fmt(lo), fmt(hi))
        }
        MeasureUnit::Plain => {
            // Two significant digits: range bounds come from the
            // one-significant-digit grid, so rounding them back to one
            // digit would collapse 150000..200000 into a single value.
            let fmt = |v: f64| {
                let r = round_significant(v, 2);
                if r == r.trunc() && r.abs() < 1e15 {
                    format!("{}", r as i64)
                } else {
                    format!("{r}")
                }
            };
            format!("{} to {}", fmt(lo), fmt(hi))
        }
    }
}

/// One-significant-digit candidate values around an estimate `v`:
/// the baseline value grid the planner searches over (paper Figure 2 shows
/// sibling baselines "70 K", "80 K", "90 K").
///
/// Returns values of the form `m · 10^e` (`m ∈ 1..=9`) within
/// `[0.4·v, 2.6·v]`, plus the halfway mantissas (1.5, 2.5, …) at the
/// dominant magnitude, sorted ascending. Empty for non-positive or
/// non-finite `v`.
pub fn baseline_grid(v: f64) -> Vec<f64> {
    if !(v.is_finite() && v > 0.0) {
        return Vec::new();
    }
    let lo = 0.4 * v;
    let hi = 2.6 * v;
    let e_lo = lo.log10().floor() as i32;
    let e_hi = hi.log10().floor() as i32;
    let mut out = Vec::new();
    for e in e_lo..=e_hi {
        let base = 10f64.powi(e);
        for m in 1..=9 {
            let cand = m as f64 * base;
            if cand >= lo && cand <= hi {
                out.push(cand);
            }
        }
        // Halfway mantissas give finer resolution near the estimate
        // ("one point five percent" in the paper's holistic speech).
        for m in [1.5, 2.5] {
            let cand = m * base;
            if cand >= lo && cand <= hi {
                out.push(cand);
            }
        }
    }
    out.sort_by(f64::total_cmp);
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_significant_is_exact_at_magnitude_boundaries() {
        // The arithmetic implementation returned 199999.99999999997 here.
        assert_eq!(round_significant(200000.0, 1), 200000.0);
        assert_eq!(round_significant(150000.0, 2), 150000.0);
        assert_eq!(round_significant(199999.99999999997, 1), 200000.0);
        assert_eq!(round_significant(1e-5, 1), 1e-5);
    }

    #[test]
    fn round_significant_basics() {
        assert_eq!(round_significant(0.0555, 1), 0.06);
        assert_eq!(round_significant(0.0555, 2), 0.056);
        assert_eq!(round_significant(87.3, 1), 90.0);
        assert_eq!(round_significant(87.3, 2), 87.0);
        assert_eq!(round_significant(-87.3, 1), -90.0);
        assert_eq!(round_significant(0.0, 1), 0.0);
        assert!(round_significant(f64::NAN, 1).is_nan());
    }

    #[test]
    fn number_words() {
        assert_eq!(number_word(0), "zero");
        assert_eq!(number_word(7), "seven");
        assert_eq!(number_word(20), "twenty");
        assert_eq!(number_word(50), "fifty");
        assert_eq!(number_word(37), "37");
    }

    #[test]
    fn percent_numbers_match_paper_style() {
        assert_eq!(percent_number(2.0), "two");
        assert_eq!(percent_number(1.5), "one point five");
        assert_eq!(percent_number(0.25), "a quarter");
        assert_eq!(percent_number(0.5), "half a");
        assert_eq!(percent_number(10.0), "ten");
        assert_eq!(percent_number(35.0), "35");
    }

    #[test]
    fn verbalize_fraction_values() {
        use MeasureUnit::Fraction;
        assert_eq!(verbalize_value(0.02, Fraction), "around two percent");
        assert_eq!(verbalize_value(0.015, Fraction), "around one point five percent");
        assert_eq!(verbalize_value(0.0025, Fraction), "around a quarter percent");
    }

    #[test]
    fn verbalize_dollar_values() {
        use MeasureUnit::DollarsK;
        assert_eq!(verbalize_value(90.0, DollarsK), "90 K");
        assert_eq!(verbalize_value(88.7, DollarsK), "89 K");
    }

    #[test]
    fn verbalize_plain_values() {
        use MeasureUnit::Plain;
        assert_eq!(verbalize_value(4321.0, Plain), "4000");
        assert_eq!(verbalize_value(7.0, Plain), "7");
    }

    #[test]
    fn verbalize_ranges_match_paper_style() {
        use MeasureUnit::*;
        // Paper Table 13: "Five to ten percent is the Average
        // cancellation probability."
        assert_eq!(verbalize_range(0.05, 0.10, Fraction), "five to ten percent");
        assert_eq!(verbalize_range(80.0, 90.0, DollarsK), "80 to 90 K");
        assert_eq!(verbalize_range(5.0, 10.0, Plain), "5 to 10");
        assert_eq!(verbalize_range(150_000.0, 200_000.0, Plain), "150000 to 200000");
    }

    #[test]
    fn baseline_grid_spans_estimate() {
        let grid = baseline_grid(0.02);
        assert!(grid.contains(&0.02));
        assert!(grid.contains(&0.01));
        assert!(grid.contains(&0.05));
        assert!(grid.iter().all(|&g| (0.008..=0.052).contains(&g)));
        // Sorted, deduped.
        for w in grid.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn baseline_grid_dollar_scale() {
        let grid = baseline_grid(88.0);
        assert!(grid.contains(&90.0));
        assert!(grid.contains(&80.0));
        assert!(grid.contains(&70.0));
        assert!(grid.contains(&150.0));
    }

    #[test]
    fn baseline_grid_handles_degenerate_inputs() {
        assert!(baseline_grid(0.0).is_empty());
        assert!(baseline_grid(-3.0).is_empty());
        assert!(baseline_grid(f64::NAN).is_empty());
    }
}
