//! Candidate enumeration: the speech-generation functions `SG.Preamble`
//! and `SG.Refinements` that span the planner's search space.
//!
//! * **Baseline candidates** come from the one-significant-digit value grid
//!   around a (cache- or exact-) estimate of the overall aggregate value —
//!   paper Figure 2 shows sibling baselines "70 K", "80 K", "90 K".
//! * **Refinement candidates** combine a predicate pool (grouping-level
//!   members of grouped dimensions plus their coarser ancestors within the
//!   query scope) with change directions and a quantifier menu. The
//!   quantifier menu {5, 10, 20, 25, 50, 100, 200} covers the changes seen
//!   in all of the paper's example speeches.
//!
//! The pool size bounds `m`, the branching factor of the search tree; the
//! paper's complexity results (Theorems A.3/A.4) are stated in terms of it.

use voxolap_data::dimension::{LevelId, MemberId};
use voxolap_data::schema::{DimId, Schema};
use voxolap_engine::query::Query;

use crate::ast::{Baseline, Change, Direction, Predicate, Refinement, Speech};
use crate::verbalize::baseline_grid;

/// Configuration of the candidate space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateConfig {
    /// Change quantifiers, in percent.
    pub quantifiers: Vec<u32>,
    /// Allow "decrease" changes (decreases above 99 % are always excluded —
    /// aggregate values would go non-positive).
    pub allow_decrease: bool,
    /// Maximum predicates per refinement (the paper's examples use one;
    /// two-predicate refinements pinpoint single aggregates).
    pub max_predicates: usize,
    /// Also offer predicates at levels coarser than the grouping level
    /// (e.g. region-level claims on a by-state breakdown).
    pub include_coarser_levels: bool,
}

impl Default for CandidateConfig {
    fn default() -> Self {
        CandidateConfig {
            quantifiers: vec![5, 10, 20, 25, 50, 100, 200],
            allow_decrease: true,
            max_predicates: 1,
            include_coarser_levels: true,
        }
    }
}

/// Enumerates baseline and refinement candidates for one query.
#[derive(Debug, Clone)]
pub struct CandidateGenerator<'a> {
    schema: &'a Schema,
    query: &'a Query,
    config: CandidateConfig,
    /// Predicate pool, precomputed at construction.
    pool: Vec<Predicate>,
}

impl<'a> CandidateGenerator<'a> {
    /// Build a generator; the predicate pool is resolved eagerly.
    pub fn new(schema: &'a Schema, query: &'a Query, config: CandidateConfig) -> Self {
        let pool = predicate_pool(schema, query, &config);
        CandidateGenerator { schema, query, config, pool }
    }

    /// The predicate pool (for introspection and size accounting).
    pub fn pool(&self) -> &[Predicate] {
        &self.pool
    }

    /// Baseline candidates around `estimate` (one per grid value).
    ///
    /// A zero estimate (e.g. no positive 0/1 measure observed yet) yields
    /// the single candidate "0"; negative estimates mirror the positive
    /// grid.
    pub fn baselines(&self, estimate: f64) -> Vec<Baseline> {
        if estimate == 0.0 {
            return vec![Baseline::point(0.0)];
        }
        if estimate < 0.0 {
            return baseline_grid(-estimate)
                .into_iter()
                .rev()
                .map(|value| Baseline::point(-value))
                .collect();
        }
        let grid = baseline_grid(estimate);
        let mut out: Vec<Baseline> = grid.iter().map(|&v| Baseline::point(v)).collect();
        // Range baselines over adjacent grid values ("five to ten percent",
        // paper Table 13) — their belief anchors on the midpoint, trading
        // precision for honesty about spread.
        for w in grid.windows(2) {
            out.push(Baseline::range(w[0], w[1]));
        }
        out
    }

    /// `SG.Refinements(q, t)`: candidate next sentences extending `prefix`.
    ///
    /// Refinements whose predicate set already occurs in the prefix are
    /// excluded (repeating a scope re-states or contradicts the earlier
    /// claim). Validity against user preferences is checked separately by
    /// the caller (`SG.IsValid`).
    pub fn refinements(&self, prefix: &Speech) -> Vec<Refinement> {
        let mut out = Vec::new();
        let used: Vec<&[Predicate]> =
            prefix.refinements.iter().map(|r| r.predicates.as_slice()).collect();

        let push_for_predicates = |predicates: &[Predicate], out: &mut Vec<Refinement>| {
            if used.contains(&predicates) {
                return;
            }
            for &q in &self.config.quantifiers {
                out.push(Refinement {
                    predicates: predicates.to_vec(),
                    change: Change { direction: Direction::Increase, percent: q },
                });
                if self.config.allow_decrease && q < 100 {
                    out.push(Refinement {
                        predicates: predicates.to_vec(),
                        change: Change { direction: Direction::Decrease, percent: q },
                    });
                }
            }
        };

        for p in &self.pool {
            push_for_predicates(std::slice::from_ref(p), &mut out);
        }
        if self.config.max_predicates >= 2 {
            for (i, p) in self.pool.iter().enumerate() {
                for q in &self.pool[i + 1..] {
                    if p.dim != q.dim {
                        push_for_predicates(&[*p, *q], &mut out);
                    }
                }
            }
        }
        out
    }

    /// Upper bound on the branching factor `m` of the search tree.
    pub fn max_branching(&self) -> usize {
        let per_predicate = self.config.quantifiers.len() * 2;
        let single = self.pool.len();
        let pairs =
            if self.config.max_predicates >= 2 { single * single.saturating_sub(1) / 2 } else { 0 };
        (single + pairs) * per_predicate
    }

    /// The schema this generator renders against.
    pub fn schema(&self) -> &Schema {
        self.schema
    }

    /// The query this generator plans for.
    pub fn query(&self) -> &Query {
        self.query
    }
}

/// Build the predicate pool: for every grouped dimension, the members at
/// its grouping level within the query scope, plus (optionally) members at
/// strictly coarser levels below the scope member.
fn predicate_pool(schema: &Schema, query: &Query, config: &CandidateConfig) -> Vec<Predicate> {
    let layout = query.layout();
    let mut pool = Vec::new();
    for &(dim, group_level) in query.group_by() {
        let d = schema.dimension(dim);
        let scope = layout.scope(dim);
        let scope_level = d.member(scope).level;
        let first_level = if config.include_coarser_levels {
            scope_level.index() + 1
        } else {
            group_level.index()
        };
        for li in first_level..=group_level.index() {
            let level = LevelId(li as u8);
            for m in d.level_members(level) {
                if d.is_ancestor_or_self(scope, m) {
                    pool.push(Predicate { dim, member: m });
                }
            }
        }
    }
    pool
}

/// Convenience: the grouping-level coordinate members of one dimension
/// (exposed for tests and baselines that need the exact aggregate grid).
pub fn grouping_members(query: &Query, dim: DimId) -> &[MemberId] {
    query.layout().coords(dim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::flights::FlightsConfig;
    use voxolap_data::salary::SalaryConfig;
    use voxolap_engine::query::AggFct;

    fn salary_query() -> (voxolap_data::Table, Query) {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        (table, q)
    }

    #[test]
    fn pool_contains_grouping_level_members() {
        let (table, q) = salary_query();
        let g = CandidateGenerator::new(table.schema(), &q, CandidateConfig::default());
        // 4 regions + 2 rough salary bins, nothing coarser exists above
        // level 1 (the scope is the root).
        assert_eq!(g.pool().len(), 6);
    }

    #[test]
    fn pool_includes_coarser_levels_for_deep_groupings() {
        let table = FlightsConfig { rows: 100, seed: 1 }.generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(2)) // by state
            .build(table.schema())
            .unwrap();
        let with = CandidateGenerator::new(table.schema(), &q, CandidateConfig::default());
        let without = CandidateGenerator::new(
            table.schema(),
            &q,
            CandidateConfig { include_coarser_levels: false, ..CandidateConfig::default() },
        );
        // 24 states; the coarser pool adds the 5 regions.
        assert_eq!(without.pool().len(), 24);
        assert_eq!(with.pool().len(), 29);
    }

    #[test]
    fn pool_respects_filter_scope() {
        let table = FlightsConfig { rows: 100, seed: 1 }.generate();
        let schema = table.schema();
        let ne = schema.dimension(DimId(0)).member_by_phrase("the North East").unwrap();
        let q = Query::builder(AggFct::Avg)
            .filter(DimId(0), ne)
            .group_by(DimId(0), LevelId(2))
            .build(schema)
            .unwrap();
        let g = CandidateGenerator::new(schema, &q, CandidateConfig::default());
        // Only the 5 NE states; the region level is the scope level itself
        // so no coarser members are added.
        assert_eq!(g.pool().len(), 5);
        let airport = schema.dimension(DimId(0));
        assert!(g.pool().iter().all(|p| airport.is_ancestor_or_self(ne, p.member)));
    }

    #[test]
    fn baselines_come_from_value_grid() {
        let (table, q) = salary_query();
        let g = CandidateGenerator::new(table.schema(), &q, CandidateConfig::default());
        let b = g.baselines(88.0);
        assert!(b.iter().any(|x| x.value == 90.0 && x.spoken_range.is_none()));
        assert!(b.iter().any(|x| x.value == 80.0 && x.spoken_range.is_none()));
        assert!(b.len() >= 4);
    }

    #[test]
    fn baselines_include_adjacent_ranges() {
        let (table, q) = salary_query();
        let g = CandidateGenerator::new(table.schema(), &q, CandidateConfig::default());
        let b = g.baselines(88.0);
        let range = b
            .iter()
            .find(|x| x.spoken_range == Some((80.0, 90.0)))
            .expect("80-90 K range candidate exists");
        assert!((range.value - 85.0).abs() < 1e-9, "anchored on the midpoint");
    }

    #[test]
    fn zero_estimate_yields_single_zero_baseline() {
        let (table, q) = salary_query();
        let g = CandidateGenerator::new(table.schema(), &q, CandidateConfig::default());
        let b = g.baselines(0.0);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].value, 0.0);
    }

    #[test]
    fn refinements_cover_directions_and_quantifiers() {
        let (table, q) = salary_query();
        let g = CandidateGenerator::new(table.schema(), &q, CandidateConfig::default());
        let prefix = Speech::baseline_only(90.0);
        let refs = g.refinements(&prefix);
        // 6 predicates x (7 increases + 5 decreases < 100%).
        assert_eq!(refs.len(), 6 * (7 + 5));
        assert!(refs.iter().any(|r| r.change.direction == Direction::Decrease));
        // No decrease by >= 100%.
        assert!(refs
            .iter()
            .all(|r| r.change.direction == Direction::Increase || r.change.percent < 100));
    }

    #[test]
    fn used_predicates_are_not_reoffered() {
        let (table, q) = salary_query();
        let g = CandidateGenerator::new(table.schema(), &q, CandidateConfig::default());
        let prefix = Speech::baseline_only(90.0);
        let all = g.refinements(&prefix);
        let extended = prefix.with_refinement(all[0].clone());
        let rest = g.refinements(&extended);
        assert!(rest.iter().all(|r| r.predicates != all[0].predicates));
        assert!(rest.len() < all.len());
    }

    #[test]
    fn two_predicate_refinements_span_dimension_pairs() {
        let (table, q) = salary_query();
        let g = CandidateGenerator::new(
            table.schema(),
            &q,
            CandidateConfig { max_predicates: 2, ..CandidateConfig::default() },
        );
        let refs = g.refinements(&Speech::baseline_only(90.0));
        let pairs: Vec<_> = refs.iter().filter(|r| r.predicates.len() == 2).collect();
        // 4 regions x 2 bins = 8 cross-dimension pairs, each with 12
        // change variants.
        assert_eq!(pairs.len(), 8 * 12);
        assert!(pairs.iter().all(|r| r.predicates[0].dim != r.predicates[1].dim));
    }

    #[test]
    fn max_branching_bounds_actual_candidates() {
        let (table, q) = salary_query();
        let g = CandidateGenerator::new(table.schema(), &q, CandidateConfig::default());
        let refs = g.refinements(&Speech::baseline_only(90.0));
        assert!(refs.len() <= g.max_branching());
    }

    #[test]
    fn grouping_members_exposes_coords() {
        let (_table, q) = salary_query();
        assert_eq!(grouping_members(&q, DimId(0)).len(), 4);
        assert_eq!(grouping_members(&q, DimId(1)).len(), 2);
    }
}
