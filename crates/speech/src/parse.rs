//! Parsing rendered speech text back into the AST.
//!
//! The inverse of [`Renderer`](crate::render::Renderer): given the body
//! text of a speech ("90 K is the average mid-career salary. Values
//! increase by 5 percent for graduates from the North East."), recover the
//! [`Speech`] structure against the schema and query that produced it.
//!
//! Two uses: (a) round-trip property tests pin the renderer and grammar to
//! each other, and (b) the simulated-listener studies can operate on the
//! *text* a user actually hears instead of the planner's internal AST —
//! exactly the information boundary a real listener has.

use voxolap_data::schema::{MeasureUnit, Schema};
use voxolap_engine::query::Query;

use crate::ast::{Baseline, Change, Direction, Predicate, Refinement, Speech};
use crate::render::render_unit;

/// Parse failure, with the offending fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpeechParseError {
    /// What went wrong.
    pub message: String,
    /// The sentence (or fragment) that failed to parse.
    pub fragment: String,
}

impl std::fmt::Display for SpeechParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} in {:?}", self.message, self.fragment)
    }
}

impl std::error::Error for SpeechParseError {}

fn err(message: &str, fragment: &str) -> SpeechParseError {
    SpeechParseError { message: message.to_string(), fragment: fragment.to_string() }
}

/// Parse a spoken number word back to a value ("two" → 2.0,
/// "one point five" → 1.5, "a quarter" → 0.25, "35" → 35.0).
fn parse_spoken_number(text: &str) -> Option<f64> {
    const SMALL: [&str; 21] = [
        "zero",
        "one",
        "two",
        "three",
        "four",
        "five",
        "six",
        "seven",
        "eight",
        "nine",
        "ten",
        "eleven",
        "twelve",
        "thirteen",
        "fourteen",
        "fifteen",
        "sixteen",
        "seventeen",
        "eighteen",
        "nineteen",
        "twenty",
    ];
    const TENS: [(&str, f64); 8] = [
        ("thirty", 30.0),
        ("forty", 40.0),
        ("fifty", 50.0),
        ("sixty", 60.0),
        ("seventy", 70.0),
        ("eighty", 80.0),
        ("ninety", 90.0),
        ("one hundred", 100.0),
    ];
    let text = text.trim();
    if text == "a quarter" {
        return Some(0.25);
    }
    if text == "half a" || text == "half" {
        return Some(0.5);
    }
    if let Some((int_part, frac_part)) = text.split_once(" point ") {
        let int = parse_spoken_number(int_part)?;
        let frac = parse_spoken_number(frac_part)?;
        return Some(int + frac / 10.0);
    }
    if let Some(i) = SMALL.iter().position(|&w| w == text) {
        return Some(i as f64);
    }
    for (w, v) in TENS {
        if w == text {
            return Some(v);
        }
    }
    text.parse().ok()
}

/// Parse a baseline value phrase for the given render unit:
/// "around two percent", "five to ten percent", "90 K", "80 to 90 K",
/// "150000 to 200000", "300".
fn parse_value_phrase(phrase: &str, unit: MeasureUnit) -> Option<Baseline> {
    let phrase = phrase.trim();
    match unit {
        MeasureUnit::Fraction => {
            let body = phrase.strip_prefix("around ").unwrap_or(phrase);
            let body = body.strip_suffix(" percent")?;
            if let Some((lo, hi)) = body.split_once(" to ") {
                let lo = parse_spoken_number(lo)? / 100.0;
                let hi = parse_spoken_number(hi)? / 100.0;
                Some(Baseline::range(lo, hi))
            } else {
                Some(Baseline::point(parse_spoken_number(body)? / 100.0))
            }
        }
        MeasureUnit::DollarsK => {
            let body = phrase.strip_suffix(" K")?;
            if let Some((lo, hi)) = body.split_once(" to ") {
                Some(Baseline::range(lo.trim().parse().ok()?, hi.trim().parse().ok()?))
            } else {
                Some(Baseline::point(body.trim().parse().ok()?))
            }
        }
        MeasureUnit::Plain => {
            if let Some((lo, hi)) = phrase.split_once(" to ") {
                Some(Baseline::range(lo.trim().parse().ok()?, hi.trim().parse().ok()?))
            } else {
                Some(Baseline::point(phrase.trim().parse().ok()?))
            }
        }
    }
}

/// Resolve a predicate phrase ("graduates from the North East") against
/// the schema by matching each dimension's context prefix and member
/// phrases.
fn parse_predicate(phrase: &str, schema: &Schema) -> Option<Predicate> {
    let phrase = phrase.trim();
    for (dim_id, d) in schema.dims() {
        let Some(rest) = phrase.strip_prefix(d.context()) else { continue };
        let rest = rest.trim();
        if let Ok(m) = d.member_by_phrase(rest) {
            return Some(Predicate { dim: dim_id, member: m });
        }
    }
    None
}

/// Parse a refinement sentence
/// ("Values increase by 5 percent for graduates from the North East").
fn parse_refinement(sentence: &str, schema: &Schema) -> Result<Refinement, SpeechParseError> {
    let body = sentence
        .strip_prefix("Values ")
        .ok_or_else(|| err("refinement must start with \"Values\"", sentence))?;
    let (direction, rest) = if let Some(r) = body.strip_prefix("increase by ") {
        (Direction::Increase, r)
    } else if let Some(r) = body.strip_prefix("decrease by ") {
        (Direction::Decrease, r)
    } else {
        return Err(err("expected increase/decrease", sentence));
    };
    let (quant, scope) = rest
        .split_once(" percent for ")
        .ok_or_else(|| err("expected \"<Q> percent for <P>\"", sentence))?;
    let percent: u32 = quant.trim().parse().map_err(|_| err("bad quantifier", quant))?;
    let predicates: Vec<Predicate> = scope
        .split(" and ")
        .map(|p| parse_predicate(p, schema).ok_or_else(|| err("unknown predicate", p)))
        .collect::<Result<_, _>>()?;
    if predicates.is_empty() {
        return Err(err("refinement without predicates", sentence));
    }
    Ok(Refinement { predicates, change: Change { direction, percent } })
}

/// Parse a speech body (baseline sentence + refinement sentences, no
/// preamble) back into a [`Speech`].
pub fn parse_body(body: &str, schema: &Schema, query: &Query) -> Result<Speech, SpeechParseError> {
    let sentences: Vec<&str> = body
        .split(". ")
        .map(|s| s.trim().trim_end_matches('.'))
        .filter(|s| !s.is_empty())
        .collect();
    let Some((&first, rest)) = sentences.split_first() else {
        return Err(err("empty speech body", body));
    };

    // Baseline: "<V> is the <A>" with the first letter capitalized.
    let (value_phrase, _agg) = first
        .split_once(" is the ")
        .ok_or_else(|| err("baseline must contain \"is the\"", first))?;
    // Undo sentence capitalization: spoken-word values capitalize their
    // first word ("Around two percent", "Five to ten percent"), so retry
    // lowercased when the direct parse fails. Numeric values ("90 K") are
    // unaffected by lowercasing.
    let unit = render_unit(query.fct(), schema.measure(query.measure()).unit);
    let baseline = parse_value_phrase(value_phrase, unit)
        .or_else(|| parse_value_phrase(&value_phrase.to_lowercase(), unit))
        .ok_or_else(|| err("unparseable baseline value", value_phrase))?;

    let refinements =
        rest.iter().map(|s| parse_refinement(s, schema)).collect::<Result<Vec<_>, _>>()?;
    Ok(Speech { baseline, refinements })
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::flights::FlightsConfig;
    use voxolap_data::salary::SalaryConfig;
    use voxolap_data::DimId;
    use voxolap_engine::query::AggFct;

    use crate::render::Renderer;

    fn salary_setup() -> (voxolap_data::Table, Query) {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        (table, q)
    }

    #[test]
    fn round_trips_example_3_1() {
        let (table, q) = salary_setup();
        let schema = table.schema();
        let ne = schema.dimension(DimId(0)).member_by_phrase("the North East").unwrap();
        let hi = schema.dimension(DimId(1)).member_by_phrase("at least 50 K").unwrap();
        let speech = Speech {
            baseline: Baseline::point(90.0),
            refinements: vec![
                Refinement {
                    predicates: vec![Predicate { dim: DimId(0), member: ne }],
                    change: Change { direction: Direction::Increase, percent: 5 },
                },
                Refinement {
                    predicates: vec![Predicate { dim: DimId(1), member: hi }],
                    change: Change { direction: Direction::Increase, percent: 20 },
                },
            ],
        };
        let renderer = Renderer::new(schema, &q);
        let body = renderer.body_text(&speech);
        let parsed = parse_body(&body, schema, &q).unwrap();
        assert_eq!(parsed, speech);
    }

    #[test]
    fn round_trips_fraction_baselines() {
        let table = FlightsConfig { rows: 200, seed: 1 }.generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        let renderer = Renderer::new(table.schema(), &q);
        for value in [0.02, 0.015, 0.0025] {
            let speech = Speech::baseline_only(value);
            let body = renderer.body_text(&speech);
            let parsed = parse_body(&body, table.schema(), &q).unwrap();
            assert!(
                (parsed.baseline.value - value).abs() < 1e-9,
                "{body}: {} vs {value}",
                parsed.baseline.value
            );
        }
    }

    #[test]
    fn round_trips_range_baselines() {
        let (table, q) = salary_setup();
        let renderer = Renderer::new(table.schema(), &q);
        let speech = Speech { baseline: Baseline::range(80.0, 90.0), refinements: Vec::new() };
        let body = renderer.body_text(&speech);
        assert!(body.starts_with("80 to 90 K"));
        let parsed = parse_body(&body, table.schema(), &q).unwrap();
        assert_eq!(parsed.baseline.spoken_range, Some((80.0, 90.0)));
        assert!((parsed.baseline.value - 85.0).abs() < 1e-9);
    }

    #[test]
    fn fraction_range_baselines_round_trip() {
        // "Five to ten percent is the Average cancellation probability."
        // (paper Table 13's optimal speech) — the capitalized first word
        // must not break parsing.
        let table = FlightsConfig { rows: 200, seed: 1 }.generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        let renderer = Renderer::new(table.schema(), &q);
        let speech = Speech { baseline: Baseline::range(0.05, 0.10), refinements: Vec::new() };
        let body = renderer.body_text(&speech);
        assert!(body.starts_with("Five to ten percent"), "{body}");
        let parsed = parse_body(&body, table.schema(), &q).unwrap();
        assert_eq!(parsed.baseline.spoken_range, Some((0.05, 0.10)));
    }

    #[test]
    fn multi_predicate_refinements_round_trip() {
        let (table, q) = salary_setup();
        let schema = table.schema();
        let ne = schema.dimension(DimId(0)).member_by_phrase("the North East").unwrap();
        let hi = schema.dimension(DimId(1)).member_by_phrase("at least 50 K").unwrap();
        let speech = Speech {
            baseline: Baseline::point(80.0),
            refinements: vec![Refinement {
                predicates: vec![
                    Predicate { dim: DimId(0), member: ne },
                    Predicate { dim: DimId(1), member: hi },
                ],
                change: Change { direction: Direction::Decrease, percent: 25 },
            }],
        };
        let renderer = Renderer::new(schema, &q);
        let parsed = parse_body(&renderer.body_text(&speech), schema, &q).unwrap();
        assert_eq!(parsed, speech);
    }

    #[test]
    fn garbage_is_rejected_with_context() {
        let (table, q) = salary_setup();
        let schema = table.schema();
        let e = parse_body("The weather is nice.", schema, &q).unwrap_err();
        assert!(e.to_string().contains("is the"), "{e}");
        let e = parse_body(
            "90 K is the average mid-career salary. Values teleport by 5 percent for x.",
            schema,
            &q,
        )
        .unwrap_err();
        assert!(e.message.contains("increase/decrease"));
        let e = parse_body(
            "90 K is the average mid-career salary. \
             Values increase by 5 percent for citizens of Atlantis.",
            schema,
            &q,
        )
        .unwrap_err();
        assert!(e.message.contains("unknown predicate"));
    }

    #[test]
    fn spoken_numbers_parse() {
        assert_eq!(parse_spoken_number("two"), Some(2.0));
        assert_eq!(parse_spoken_number("one point five"), Some(1.5));
        assert_eq!(parse_spoken_number("a quarter"), Some(0.25));
        assert_eq!(parse_spoken_number("half a"), Some(0.5));
        assert_eq!(parse_spoken_number("ninety"), Some(90.0));
        assert_eq!(parse_spoken_number("35"), Some(35.0));
        assert_eq!(parse_spoken_number("gibberish"), None);
    }

    #[test]
    fn count_bodies_round_trip() {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Count)
            .group_by(DimId(0), LevelId(1))
            .build(table.schema())
            .unwrap();
        let renderer = Renderer::new(table.schema(), &q);
        let speech = Speech::baseline_only(80.0);
        let body = renderer.body_text(&speech);
        assert_eq!(body, "80 is the number of rows.");
        let parsed = parse_body(&body, table.schema(), &q).unwrap();
        assert_eq!(parsed.baseline.value, 80.0);
    }
}
