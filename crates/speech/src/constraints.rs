//! User-preference constraints on speeches (`SG.IsValid`).
//!
//! Following prior work, speeches are constrained by a character budget and
//! a fragment budget (paper §2). The paper's experiments restrict the main
//! speech (without preamble) to 300 characters, "recommended for
//! voice-based interactions" by the Google Assistant SDK.

use crate::ast::Speech;
use crate::render::Renderer;

/// Threshold constraints on speech length and fragment count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeechConstraints {
    /// Maximum number of characters of the speech body (without preamble).
    pub max_chars: usize,
    /// Maximum number of refinement statements.
    pub max_refinements: usize,
}

impl SpeechConstraints {
    /// The paper's experimental configuration: 300 characters, and room for
    /// a small number of refinements.
    pub fn paper_default() -> Self {
        SpeechConstraints { max_chars: 300, max_refinements: 3 }
    }

    /// `SG.IsValid(t, p)`: does `speech` respect these preferences?
    pub fn is_valid(&self, renderer: &Renderer<'_>, speech: &Speech) -> bool {
        speech.refinements.len() <= self.max_refinements
            && renderer.body_len(speech) <= self.max_chars
    }

    /// `true` when `speech` already saturates the constraints — appending
    /// any refinement would necessarily violate them. (A cheap necessary
    /// check; the planner still validates each concrete extension.)
    pub fn at_fragment_limit(&self, speech: &Speech) -> bool {
        speech.refinements.len() >= self.max_refinements
    }
}

impl Default for SpeechConstraints {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::salary::SalaryConfig;
    use voxolap_data::DimId;
    use voxolap_engine::query::{AggFct, Query};

    use crate::ast::{Change, Direction, Predicate, Refinement};

    #[test]
    fn default_is_paper_configuration() {
        let c = SpeechConstraints::default();
        assert_eq!(c.max_chars, 300);
        assert_eq!(c.max_refinements, 3);
    }

    #[test]
    fn validity_enforces_both_budgets() {
        let table = SalaryConfig::paper_scale().generate();
        let schema = table.schema();
        let q = Query::builder(AggFct::Avg).group_by(DimId(0), LevelId(1)).build(schema).unwrap();
        let r = Renderer::new(schema, &q);
        let ne = schema.dimension(DimId(0)).member_by_phrase("the North East").unwrap();
        let refinement = Refinement {
            predicates: vec![Predicate { dim: DimId(0), member: ne }],
            change: Change { direction: Direction::Increase, percent: 5 },
        };

        let mut speech = Speech::baseline_only(90.0);
        let constraints = SpeechConstraints { max_chars: 300, max_refinements: 2 };
        assert!(constraints.is_valid(&r, &speech));

        speech = speech.with_refinement(refinement.clone());
        speech = speech.with_refinement(refinement.clone());
        assert!(constraints.is_valid(&r, &speech));
        assert!(constraints.at_fragment_limit(&speech));

        speech = speech.with_refinement(refinement.clone());
        assert!(!constraints.is_valid(&r, &speech), "third refinement over limit");

        let tight = SpeechConstraints { max_chars: 30, max_refinements: 5 };
        assert!(
            !tight.is_valid(&r, &Speech::baseline_only(90.0))
                || r.body_len(&Speech::baseline_only(90.0)) <= 30
        );
    }

    #[test]
    fn char_budget_alone_can_invalidate() {
        let table = SalaryConfig::paper_scale().generate();
        let schema = table.schema();
        let q = Query::builder(AggFct::Avg).group_by(DimId(0), LevelId(1)).build(schema).unwrap();
        let r = Renderer::new(schema, &q);
        let speech = Speech::baseline_only(90.0);
        let len = r.body_len(&speech);
        let just_enough = SpeechConstraints { max_chars: len, max_refinements: 0 };
        assert!(just_enough.is_valid(&r, &speech));
        let too_tight = SpeechConstraints { max_chars: len - 1, max_refinements: 0 };
        assert!(!too_tight.is_valid(&r, &speech));
    }
}
