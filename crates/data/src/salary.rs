//! Synthetic mid-career-salary dataset.
//!
//! Substitute for the Kaggle college-salaries data (320 rows, 36 KB) used in
//! the paper. The generator reproduces:
//!
//! * the schema — dimension *college location* (region → state →
//!   institution) and *start salary* (rough category → precise 10 K bin),
//!   with mid-career salary (in thousands of dollars) as the measure;
//! * the paper's running examples — the overall average mid-career salary is
//!   ≈ 80–90 K, values run ≈ 5 % higher for the North East and ≈ 20 % higher
//!   for start salaries of at least 50 K (Examples 3.1 and 3.4);
//! * scale — exactly 320 rows by default, one per institution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dimension::{DimensionBuilder, LevelId};
use crate::schema::{DimId, MeasureUnit, Schema};
use crate::table::{Table, TableBuilder};

/// Region names matching the paper's Example 3.4.
pub const REGIONS: [&str; 4] = ["the North East", "the Midwest", "the West", "the South"];

/// States per region.
const STATES: [&[&str]; 4] = [
    &["New York", "Massachusetts", "Pennsylvania", "Connecticut"],
    &["Ohio", "Illinois", "Michigan", "Wisconsin"],
    &["California", "Washington", "Oregon", "Colorado"],
    &["Texas", "Florida", "Georgia", "North Carolina"],
];

/// Precise start-salary bins (thousands of dollars). Bins below 50 K roll up
/// to the rough category `"less than 50 K"`, the others to `"at least 50 K"`.
pub const START_SALARY_BINS: [u32; 5] = [35, 45, 55, 65, 75];

/// Multiplicative salary lift per region (North East +5 %, Example 3.1).
const REGION_LIFT: [f64; 4] = [1.05, 0.99, 1.01, 0.97];

/// Multiplicative lift applied to rows with start salary ≥ 50 K (+20 %,
/// Example 3.1's "values increase by 20 % for a start salary of at least
/// 50 K").
const HIGH_START_LIFT: f64 = 1.20;

/// Configuration for the salary generator.
#[derive(Debug, Clone, Copy)]
pub struct SalaryConfig {
    /// Number of institutions (rows). Paper: 320.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SalaryConfig {
    /// The paper's dataset size: 320 institutions.
    pub fn paper_scale() -> Self {
        SalaryConfig { rows: 320, seed: 42 }
    }

    /// Build the salary schema (dimensions only).
    ///
    /// Institutions are named deterministically from the row count so the
    /// college dimension's leaf level has exactly `rows` members.
    pub fn schema(rows: usize) -> Schema {
        let mut b = DimensionBuilder::new("college location", "graduates from", "any college");
        let l_region = b.add_level("region");
        let l_state = b.add_level("state");
        let l_inst = b.add_level("institution");
        let mut inst = 0usize;
        // Deal institutions round-robin across states until `rows` leaves.
        let mut state_members = Vec::new();
        for (r, &region) in REGIONS.iter().enumerate() {
            let rm = b.add_member(l_region, b.root(), region);
            for &state in STATES[r] {
                state_members.push((b.add_member(l_state, rm, state), state.to_string()));
            }
        }
        while inst < rows {
            let (sm, state) = &state_members[inst % state_members.len()];
            let n = inst / state_members.len() + 1;
            b.add_member(l_inst, *sm, &format!("{state} Institute {n}"));
            inst += 1;
        }
        let college = b.build();

        let mut b = DimensionBuilder::new("start salary", "a start salary of", "any amount");
        let l_rough = b.add_level("rough start salary");
        let l_precise = b.add_level("precise start salary");
        let low = b.add_member(l_rough, b.root(), "less than 50 K");
        let high = b.add_member(l_rough, b.root(), "at least 50 K");
        for &bin in &START_SALARY_BINS {
            let parent = if bin < 50 { low } else { high };
            b.add_member(l_precise, parent, &format!("around {bin} K"));
        }
        let start_salary = b.build();

        Schema::new(
            "mid-career salary",
            vec![college, start_salary],
            "mid-career salary",
            MeasureUnit::DollarsK,
        )
    }

    /// Generate the dataset.
    pub fn generate(&self) -> Table {
        let schema = Self::schema(self.rows);
        let mut rng = StdRng::seed_from_u64(self.seed);

        let college = schema.dimension(DimId(0));
        let start = schema.dimension(DimId(1));
        let institutions = college.leaves().to_vec();
        let salary_bins = start.leaves().to_vec();
        let regions = college.level_members(LevelId(1));

        // Region index per institution, resolved before `schema` moves
        // into the builder.
        let region_of: Vec<usize> = institutions
            .iter()
            .map(|&leaf| {
                regions
                    .iter()
                    .position(|&r| college.is_ancestor_or_self(r, leaf))
                    .expect("every institution sits under a region")
            })
            .collect();

        let mut tb = TableBuilder::new(schema);
        for (idx, &inst) in institutions.iter().take(self.rows).enumerate() {
            let bin_idx = rng.gen_range(0..salary_bins.len());
            let bin_leaf = salary_bins[bin_idx];
            let high_start = START_SALARY_BINS[bin_idx] >= 50;
            let r = region_of[idx];
            // Base calibrated so the overall mean lands near 88 K
            // ("around 90 K" after one-significant-digit rounding, matching
            // Example 3.1's spoken baseline).
            let base = 80.0;
            let lift = REGION_LIFT[r] * if high_start { HIGH_START_LIFT } else { 1.0 };
            let noise = rng.gen_range(0.9..1.1);
            let mid_career = base * lift * noise;
            tb.push_row(&[inst, bin_leaf], mid_career).expect("valid leaf row");
        }
        tb.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape_matches_paper() {
        let s = SalaryConfig::schema(320);
        assert_eq!(s.dimensions().len(), 2);
        let college = s.dimension(DimId(0));
        assert_eq!(college.level_count(), 4); // root, region, state, institution
        assert_eq!(college.leaves().len(), 320);
        let start = s.dimension(DimId(1));
        assert_eq!(start.level_count(), 3); // root, rough, precise
        assert_eq!(start.level_members(LevelId(1)).len(), 2);
        assert_eq!(start.leaves().len(), START_SALARY_BINS.len());
    }

    #[test]
    fn row_count_matches_config() {
        let t = SalaryConfig::paper_scale().generate();
        assert_eq!(t.row_count(), 320);
    }

    #[test]
    fn deterministic_generation() {
        let a = SalaryConfig { rows: 100, seed: 9 }.generate();
        let b = SalaryConfig { rows: 100, seed: 9 }.generate();
        assert_eq!(a.measure(), b.measure());
    }

    #[test]
    fn calibration_matches_running_examples() {
        let t = SalaryConfig::paper_scale().generate();
        let overall: f64 = t.measure().iter().sum::<f64>() / t.row_count() as f64;
        assert!(overall > 80.0 && overall < 96.0, "overall mean {overall}");

        // High start salaries should run roughly 20% above low ones.
        let start = t.schema().dimension(DimId(1));
        let high = start.member_by_phrase("at least 50 K").unwrap();
        let (mut hi_sum, mut hi_n, mut lo_sum, mut lo_n) = (0.0, 0usize, 0.0, 0usize);
        for row in 0..t.row_count() {
            let leaf = t.member_at(DimId(1), row);
            if start.is_ancestor_or_self(high, leaf) {
                hi_sum += t.value_at(row);
                hi_n += 1;
            } else {
                lo_sum += t.value_at(row);
                lo_n += 1;
            }
        }
        let ratio = (hi_sum / hi_n as f64) / (lo_sum / lo_n as f64);
        assert!(
            (ratio - HIGH_START_LIFT).abs() < 0.06,
            "high/low start-salary ratio {ratio:.3}, expected ~{HIGH_START_LIFT}"
        );
    }

    #[test]
    fn northeast_lift_present() {
        let t = SalaryConfig { rows: 320, seed: 7 }.generate();
        let college = t.schema().dimension(DimId(0));
        let ne = college.member_by_phrase("the North East").unwrap();
        let (mut ne_sum, mut ne_n, mut rest_sum, mut rest_n) = (0.0, 0usize, 0.0, 0usize);
        for row in 0..t.row_count() {
            let leaf = t.member_at(DimId(0), row);
            if college.is_ancestor_or_self(ne, leaf) {
                ne_sum += t.value_at(row);
                ne_n += 1;
            } else {
                rest_sum += t.value_at(row);
                rest_n += 1;
            }
        }
        assert!(ne_sum / ne_n as f64 > rest_sum / rest_n as f64, "NE average above the rest");
    }
}
