//! Synthetic flight-cancellations dataset.
//!
//! Substitute for the 2015 Kaggle flight-delays data (5.3 M rows, 600 MB)
//! used in the paper. The generator reproduces:
//!
//! * the schema — dimensions *start airport* (levels region → state → city →
//!   airport), *flight date* (season → month), *airline* (one level), and a
//!   0/1 cancellation measure whose average is the cancellation probability;
//! * the published group means — the per-(region, season) cancellation
//!   probabilities of the paper's Table 12 are the generator's base rates,
//!   so exact evaluation of `AVG(cancelled) GROUP BY region, season`
//!   reproduces that table up to sampling noise;
//! * scale — row count is configurable up to the paper's 5.3 M.
//!
//! Per-state and per-airline multiplicative factors add realistic
//! fine-grained structure. They are normalized to mean 1 (traffic-weighted)
//! so coarse group means stay pinned to Table 12.
//!
//! The table carries a second measure — **departure delay in minutes** —
//! exercising the paper's "multiple columns" extension (§2): queries pick
//! the measure to aggregate via
//! [`QueryBuilder::measure`](https://docs.rs/voxolap-engine). Delays share
//! the cancellation risk factors (bad-weather regions and seasons also
//! delay flights), scaled to a ~12-minute overall mean.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dimension::{DimensionBuilder, MemberId};
use crate::schema::{Measure, MeasureUnit, Schema};
use crate::table::{Table, TableBuilder};

/// Region names, matching the paper's Table 12 row labels.
pub const REGIONS: [&str; 5] =
    ["the North East", "the Midwest", "the South", "the West", "the United States territories"];

/// Season names (Winter first, as in the paper's examples).
pub const SEASONS: [&str; 4] = ["Winter", "Spring", "Summer", "Fall"];

/// Months by season (meteorological convention).
pub const MONTHS_BY_SEASON: [[&str; 3]; 4] = [
    ["December", "January", "February"],
    ["March", "April", "May"],
    ["June", "July", "August"],
    ["September", "October", "November"],
];

/// Airline names from the 2015 dataset (paper Table 13 cites
/// "American Eagle Airlines Inc.").
pub const AIRLINES: [&str; 14] = [
    "United Air Lines Inc.",
    "American Airlines Inc.",
    "US Airways Inc.",
    "Frontier Airlines Inc.",
    "JetBlue Airways",
    "Skywest Airlines Inc.",
    "Alaska Airlines Inc.",
    "Spirit Air Lines",
    "Southwest Airlines Co.",
    "Delta Air Lines Inc.",
    "Atlantic Southeast Airlines",
    "Hawaiian Airlines Inc.",
    "American Eagle Airlines Inc.",
    "Virgin America",
];

/// Paper Table 12: exact cancellation probability per (region, season).
/// Index order: `TABLE12[region][season]` with [`REGIONS`] / [`SEASONS`] order.
pub const TABLE12: [[f64; 4]; 5] = [
    // Winter, Spring, Summer, Fall
    [0.0555, 0.02296, 0.01662, 0.00794],  // North East
    [0.03944, 0.01576, 0.018, 0.01313],   // Midwest
    [0.02851, 0.01656, 0.01097, 0.00537], // South
    [0.01562, 0.00725, 0.00927, 0.0056],  // West
    [0.01424, 0.0065, 0.00741, 0.00183],  // US territories
];

/// Share of flights departing from each region (traffic weights).
const REGION_WEIGHTS: [f64; 5] = [0.20, 0.25, 0.30, 0.22, 0.03];

/// States per region (subset of the real dataset's geography).
const STATES: [&[&str]; 5] = [
    &["New York", "Massachusetts", "Pennsylvania", "Connecticut", "New Jersey"],
    &["Illinois", "Ohio", "Michigan", "Minnesota", "Wisconsin", "Iowa"],
    &["Texas", "Florida", "Georgia", "North Carolina", "Tennessee", "Arkansas"],
    &["California", "Washington", "Colorado", "Oregon", "Nevada"],
    &["Puerto Rico", "Guam"],
];

/// Cities per state (keyed by state name).
const CITIES: [(&str, &[&str]); 24] = [
    ("New York", &["New York City", "Buffalo"]),
    ("Massachusetts", &["Boston"]),
    ("Pennsylvania", &["Philadelphia", "Pittsburgh"]),
    ("Connecticut", &["Hartford"]),
    ("New Jersey", &["Newark"]),
    ("Illinois", &["Chicago"]),
    ("Ohio", &["Columbus", "Cleveland"]),
    ("Michigan", &["Detroit"]),
    ("Minnesota", &["Minneapolis"]),
    ("Wisconsin", &["Milwaukee"]),
    ("Iowa", &["Des Moines"]),
    ("Texas", &["Dallas", "Houston", "Austin"]),
    ("Florida", &["Orlando", "Miami", "Tampa"]),
    ("Georgia", &["Atlanta"]),
    ("North Carolina", &["Charlotte"]),
    ("Tennessee", &["Nashville"]),
    ("Arkansas", &["Little Rock"]),
    ("California", &["Los Angeles", "San Francisco", "San Diego"]),
    ("Washington", &["Seattle"]),
    ("Colorado", &["Denver"]),
    ("Oregon", &["Portland"]),
    ("Nevada", &["Las Vegas"]),
    ("Puerto Rico", &["San Juan"]),
    ("Guam", &["Hagatna"]),
];

/// Configuration for the flights generator.
#[derive(Debug, Clone, Copy)]
pub struct FlightsConfig {
    /// Number of fact rows to generate.
    pub rows: usize,
    /// RNG seed — same seed, same dataset.
    pub seed: u64,
}

impl FlightsConfig {
    /// 20 000 rows — fast unit-test scale.
    pub fn small() -> Self {
        FlightsConfig { rows: 20_000, seed: 42 }
    }

    /// 200 000 rows — default benchmark scale.
    pub fn medium() -> Self {
        FlightsConfig { rows: 200_000, seed: 42 }
    }

    /// 5.3 M rows — the paper's full dataset scale.
    pub fn paper_scale() -> Self {
        FlightsConfig { rows: 5_300_000, seed: 42 }
    }

    /// Build the flights schema (dimensions only, no rows).
    pub fn schema() -> Schema {
        // Start airport: region -> state -> city -> airport.
        let mut b = DimensionBuilder::new("start airport", "flights starting from", "anywhere");
        let l_region = b.add_level("region");
        let l_state = b.add_level("state");
        let l_city = b.add_level("city");
        let l_airport = b.add_level("airport");
        for (r, &region) in REGIONS.iter().enumerate() {
            let rm = b.add_member(l_region, b.root(), region);
            for &state in STATES[r] {
                let sm = b.add_member(l_state, rm, state);
                let cities = CITIES
                    .iter()
                    .find(|(s, _)| *s == state)
                    .map(|(_, c)| *c)
                    .unwrap_or(&[] as &[&str]);
                for &city in cities {
                    let cm = b.add_member(l_city, sm, city);
                    b.add_member(l_airport, cm, &format!("{city} International"));
                    if city.len() % 2 == 0 {
                        // Larger cities get a second airport.
                        b.add_member(l_airport, cm, &format!("{city} Regional"));
                    }
                }
            }
        }
        let airport = b.build();

        // Flight date: season -> month.
        let mut b = DimensionBuilder::new("flight date", "flights scheduled in", "any date");
        let l_season = b.add_level("season");
        let l_month = b.add_level("month");
        for (s, &season) in SEASONS.iter().enumerate() {
            let sm = b.add_member(l_season, b.root(), season);
            for &month in &MONTHS_BY_SEASON[s] {
                b.add_member(l_month, sm, month);
            }
        }
        let date = b.build();

        // Airline: single level.
        let mut b = DimensionBuilder::new("airline", "flights operated by", "any airline");
        let l_airline = b.add_level("airline");
        for &a in &AIRLINES {
            b.add_member(l_airline, b.root(), a);
        }
        let airline = b.build();

        Schema::with_measures(
            "flight cancellations",
            vec![airport, date, airline],
            vec![
                Measure {
                    name: "cancellation probability".to_string(),
                    unit: MeasureUnit::Fraction,
                },
                Measure {
                    name: "departure delay in minutes".to_string(),
                    unit: MeasureUnit::Plain,
                },
            ],
        )
    }

    /// Generate the dataset.
    pub fn generate(&self) -> Table {
        let schema = Self::schema();
        let mut rng = StdRng::seed_from_u64(self.seed);

        let airport_dim = schema.dimension(crate::schema::DimId(0));
        let date_dim = schema.dimension(crate::schema::DimId(1));
        let airline_dim = schema.dimension(crate::schema::DimId(2));

        // Pre-index airport leaves by region, and leaf -> region index.
        let region_members = airport_dim.level_members(crate::dimension::LevelId(1));
        let leaves_by_region: Vec<Vec<MemberId>> =
            region_members.iter().map(|&r| airport_dim.leaves_under(r)).collect();

        // Per-airport-leaf factor, normalized per region to mean 1 so that
        // region x season means stay pinned to Table 12.
        let mut leaf_factor = vec![1.0f64; airport_dim.member_count()];
        for leaves in &leaves_by_region {
            let mut sum = 0.0;
            for &l in leaves {
                let f = rng.gen_range(0.6..1.4);
                leaf_factor[l.index()] = f;
                sum += f;
            }
            let mean = sum / leaves.len() as f64;
            for &l in leaves {
                leaf_factor[l.index()] /= mean;
            }
        }

        // Airline factors, weighted mean 1 under the airline draw weights.
        let airline_members = airline_dim.leaves().to_vec();
        let airline_weights: Vec<f64> =
            (0..airline_members.len()).map(|i| 1.0 + (i % 5) as f64 * 0.45).collect();
        let weight_sum: f64 = airline_weights.iter().sum();
        let mut airline_factor: Vec<f64> =
            (0..airline_members.len()).map(|_| rng.gen_range(0.5..1.5)).collect();
        let weighted_mean: f64 =
            airline_factor.iter().zip(&airline_weights).map(|(f, w)| f * w / weight_sum).sum();
        for f in &mut airline_factor {
            *f /= weighted_mean;
        }

        // Month leaves by season, month factor 1 (uniform within season).
        let season_members = date_dim.level_members(crate::dimension::LevelId(1));
        let months_by_season: Vec<Vec<MemberId>> =
            season_members.iter().map(|&s| date_dim.leaves_under(s)).collect();

        let mut tb = TableBuilder::new(schema);
        for _ in 0..self.rows {
            // Region by traffic weight.
            let mut x: f64 = rng.gen();
            let mut region = REGION_WEIGHTS.len() - 1;
            for (i, w) in REGION_WEIGHTS.iter().enumerate() {
                if x < *w {
                    region = i;
                    break;
                }
                x -= w;
            }
            let leaves = &leaves_by_region[region];
            let airport = leaves[rng.gen_range(0..leaves.len())];

            let season = rng.gen_range(0..SEASONS.len());
            let months = &months_by_season[season];
            let month = months[rng.gen_range(0..months.len())];

            // Airline by weight.
            let mut x = rng.gen_range(0.0..weight_sum);
            let mut airline_idx = airline_members.len() - 1;
            for (i, w) in airline_weights.iter().enumerate() {
                if x < *w {
                    airline_idx = i;
                    break;
                }
                x -= w;
            }
            let airline = airline_members[airline_idx];

            let risk = TABLE12[region][season]
                * leaf_factor[airport.index()]
                * airline_factor[airline_idx];
            let p = risk.clamp(0.0, 1.0);
            let cancelled = if rng.gen::<f64>() < p { 1.0 } else { 0.0 };
            // Delay shares the risk landscape: the overall mean lands near
            // 12 minutes (risk mean ~0.0145 x 830), with noise and a floor
            // at zero.
            let delay = (risk * 830.0 * rng.gen_range(0.3..1.7)).max(0.0);

            tb.push_row_values(&[airport, month, airline], &[cancelled, delay])
                .expect("generator produces valid leaf rows");
        }
        tb.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::LevelId;
    use crate::schema::DimId;

    #[test]
    fn schema_shape_matches_paper() {
        let s = FlightsConfig::schema();
        assert_eq!(s.dimensions().len(), 3);
        let airport = s.dimension(DimId(0));
        // root + region + state + city + airport
        assert_eq!(airport.level_count(), 5);
        assert_eq!(airport.level_members(LevelId(1)).len(), 5);
        let date = s.dimension(DimId(1));
        assert_eq!(date.level_count(), 3);
        assert_eq!(date.level_members(LevelId(1)).len(), 4);
        assert_eq!(date.leaves().len(), 12);
        let airline = s.dimension(DimId(2));
        assert_eq!(airline.leaves().len(), 14);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FlightsConfig { rows: 500, seed: 1 }.generate();
        let b = FlightsConfig { rows: 500, seed: 1 }.generate();
        assert_eq!(a.measure(), b.measure());
        let c = FlightsConfig { rows: 500, seed: 2 }.generate();
        assert_ne!(a.measure(), c.measure());
    }

    #[test]
    fn primary_measure_is_binary() {
        let t = FlightsConfig { rows: 1_000, seed: 5 }.generate();
        assert!(t.measure().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn delay_measure_has_plausible_scale() {
        use crate::schema::MeasureId;
        let t = FlightsConfig { rows: 30_000, seed: 5 }.generate();
        assert_eq!(t.schema().measure_count(), 2);
        let delays = t.measure_column(MeasureId(1));
        assert!(delays.iter().all(|&d| d >= 0.0));
        let mean = delays.iter().sum::<f64>() / delays.len() as f64;
        assert!((5.0..25.0).contains(&mean), "mean delay {mean} minutes");
        // Winter flights are delayed more than fall flights.
        let date = t.schema().dimension(DimId(1));
        let winter = date.member_by_phrase("Winter").unwrap();
        let fall = date.member_by_phrase("Fall").unwrap();
        let seasonal = |season| {
            let (mut sum, mut n) = (0.0, 0usize);
            for row in 0..t.row_count() {
                if date.is_ancestor_or_self(season, t.member_at(DimId(1), row)) {
                    sum += t.measure_value(MeasureId(1), row);
                    n += 1;
                }
            }
            sum / n as f64
        };
        assert!(seasonal(winter) > seasonal(fall), "winter delays exceed fall delays");
    }

    #[test]
    fn group_means_track_table12() {
        // With enough rows, AVG(cancelled) per (region, season) must be
        // close to the paper's Table 12 base rates.
        let t = FlightsConfig { rows: 120_000, seed: 42 }.generate();
        let airport = t.schema().dimension(DimId(0));
        let date = t.schema().dimension(DimId(1));
        let regions = airport.level_members(LevelId(1));
        let seasons = date.level_members(LevelId(1));
        let mut sums = vec![vec![0.0f64; 4]; 5];
        let mut counts = vec![vec![0usize; 4]; 5];
        for row in 0..t.row_count() {
            let leaf_airport = t.member_at(DimId(0), row);
            let leaf_month = t.member_at(DimId(1), row);
            let r = regions
                .iter()
                .position(|&reg| airport.is_ancestor_or_self(reg, leaf_airport))
                .unwrap();
            let s =
                seasons.iter().position(|&sea| date.is_ancestor_or_self(sea, leaf_month)).unwrap();
            sums[r][s] += t.value_at(row);
            counts[r][s] += 1;
        }
        // Check the biggest cells (small ones are noisy at this scale).
        for (r, s) in [(0usize, 0usize), (1, 0), (2, 0), (0, 1), (1, 2)] {
            let mean = sums[r][s] / counts[r][s] as f64;
            let expect = TABLE12[r][s];
            assert!(
                (mean - expect).abs() < expect * 0.35 + 0.002,
                "region {r} season {s}: mean {mean:.4} vs table {expect:.4}"
            );
        }
    }

    #[test]
    fn winter_northeast_is_worst() {
        let t = FlightsConfig { rows: 60_000, seed: 42 }.generate();
        // Overall cancellation rate should be low single digits.
        let overall: f64 = t.measure().iter().sum::<f64>() / t.row_count() as f64;
        assert!(overall > 0.005 && overall < 0.05, "overall {overall}");
    }
}
