//! Columnar in-memory fact tables and streaming scanners.
//!
//! A [`Table`] stores one leaf [`MemberId`] column per dimension plus one
//! `f64` measure column. A [`RowScanner`] streams rows in a deterministic
//! pseudo-random order — this is the row source the sampling cache consumes
//! (paper §4.3 assumes rows arrive in random order so that cache contents
//! form uniform samples).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dimension::MemberId;
use crate::error::DataError;
use crate::schema::{DimId, MeasureId, Schema};

/// Borrowed view of one fact row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row<'a> {
    /// Leaf member ids, one per dimension (schema order).
    pub members: &'a [MemberId],
    /// Value of the scanned measure.
    pub value: f64,
}

/// An in-memory columnar fact table (one or more measure columns).
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    /// `dim_cols[d][r]` = leaf member of row `r` in dimension `d`.
    dim_cols: Vec<Vec<MemberId>>,
    /// `measures[m][r]` = value of measure `m` in row `r`.
    measures: Vec<Vec<f64>>,
    /// Shuffled row orders memoized by seed, shared across clones so that
    /// re-scanning the same (table, seed) pair never re-shuffles a full
    /// index `Vec`; shard scanners stride into the shared permutation.
    shuffle_memo: Arc<Mutex<HashMap<u64, Arc<[u32]>>>>,
}

impl Table {
    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of fact rows.
    pub fn row_count(&self) -> usize {
        self.measures[0].len()
    }

    /// Leaf member of row `row` in dimension `dim`.
    #[inline]
    pub fn member_at(&self, dim: DimId, row: usize) -> MemberId {
        self.dim_cols[dim.index()][row]
    }

    /// Primary-measure value of row `row`.
    #[inline]
    pub fn value_at(&self, row: usize) -> f64 {
        self.measures[0][row]
    }

    /// Value of measure `m` in row `row`.
    #[inline]
    pub fn measure_value(&self, m: MeasureId, row: usize) -> f64 {
        self.measures[m.index()][row]
    }

    /// Materialize row `row` into per-dimension leaf ids.
    pub fn row_members(&self, row: usize) -> Vec<MemberId> {
        self.dim_cols.iter().map(|c| c[row]).collect()
    }

    /// Approximate in-memory size in bytes (for dataset statistics).
    pub fn approx_bytes(&self) -> usize {
        self.dim_cols.len() * self.row_count() * std::mem::size_of::<MemberId>()
            + self.measures.len() * self.row_count() * std::mem::size_of::<f64>()
    }

    /// Full primary-measure column (read-only).
    pub fn measure(&self) -> &[f64] {
        &self.measures[0]
    }

    /// Full column of one measure (read-only).
    pub fn measure_column(&self, m: MeasureId) -> &[f64] {
        &self.measures[m.index()]
    }

    /// The seeded permutation of row indices, computed once per
    /// (table, seed) pair and shared by every scanner built from it.
    pub fn shuffled_order(&self, seed: u64) -> Arc<[u32]> {
        let mut memo = self.shuffle_memo.lock();
        if let Some(order) = memo.get(&seed) {
            return order.clone();
        }
        let mut order: Vec<u32> = (0..self.row_count() as u32).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let order: Arc<[u32]> = order.into();
        memo.insert(seed, order.clone());
        order
    }

    /// Create a scanner over the primary measure delivering rows in a
    /// seeded pseudo-random order.
    pub fn scan_shuffled(&self, seed: u64) -> RowScanner<'_> {
        self.scan_shuffled_measure(seed, MeasureId::PRIMARY)
    }

    /// Create a shuffled scanner delivering values of measure `m`.
    pub fn scan_shuffled_measure(&self, seed: u64, m: MeasureId) -> RowScanner<'_> {
        self.scan_shuffled_shard_measure(seed, m, 0, 1)
    }

    /// Create a scanner over shard `shard` of `n_shards` of the seeded
    /// pseudo-random row order: one global permutation is stride-sliced
    /// (`order[shard], order[shard + n_shards], …`), so the shards of one
    /// seed partition the table exactly, each shard is itself a uniform
    /// random sample of the rows, and a single worker with `n_shards == 1`
    /// reproduces [`Table::scan_shuffled`] row for row. This is the row
    /// source for parallel ingestion workers.
    pub fn scan_shuffled_shard(&self, seed: u64, shard: usize, n_shards: usize) -> RowScanner<'_> {
        self.scan_shuffled_shard_measure(seed, MeasureId::PRIMARY, shard, n_shards)
    }

    /// [`Table::scan_shuffled_shard`] delivering values of measure `m`.
    pub fn scan_shuffled_shard_measure(
        &self,
        seed: u64,
        m: MeasureId,
        shard: usize,
        n_shards: usize,
    ) -> RowScanner<'_> {
        assert!(n_shards > 0 && shard < n_shards, "shard {shard} of {n_shards}");
        RowScanner {
            table: self,
            measure: m,
            order: self.shuffled_order(seed),
            shard,
            n_shards,
            pos: 0,
            base: 0,
            buf: vec![MemberId::ROOT; self.dim_cols.len()],
        }
    }

    /// Create a scanner over the primary measure in storage order.
    pub fn scan_sequential(&self) -> RowScanner<'_> {
        let order: Vec<u32> = (0..self.row_count() as u32).collect();
        RowScanner {
            table: self,
            measure: MeasureId::PRIMARY,
            order: order.into(),
            shard: 0,
            n_shards: 1,
            pos: 0,
            base: 0,
            buf: vec![MemberId::ROOT; self.dim_cols.len()],
        }
    }
}

/// Streaming scanner over a [`Table`].
///
/// Not an `Iterator` because the row view borrows an internal buffer
/// (a lending iterator); call [`RowScanner::next_row`] in a loop.
#[derive(Debug)]
pub struct RowScanner<'a> {
    table: &'a Table,
    measure: MeasureId,
    /// Shared global permutation; this scanner visits positions
    /// `shard, shard + n_shards, shard + 2·n_shards, …` of it.
    order: Arc<[u32]>,
    shard: usize,
    n_shards: usize,
    /// Next in-shard position to deliver.
    pos: usize,
    /// In-shard position the scan started from (set by [`RowScanner::skip`]);
    /// rows before it count as already consumed by an earlier scan.
    base: usize,
    buf: Vec<MemberId>,
}

impl<'a> RowScanner<'a> {
    /// Number of rows in this scanner's shard of the permutation.
    fn shard_len(&self) -> usize {
        self.order.len().saturating_sub(self.shard).div_ceil(self.n_shards)
    }

    /// Number of rows delivered so far (excluding any skipped prefix).
    pub fn rows_read(&self) -> usize {
        self.pos - self.base
    }

    /// `true` when the whole shard has been streamed.
    pub fn exhausted(&self) -> bool {
        self.pos >= self.shard_len()
    }

    /// Skip the first `rows` rows of the shard without delivering them, as
    /// if a previous scan had already consumed that prefix. Skipped rows do
    /// not count toward [`RowScanner::rows_read`]. This is how a
    /// warm-started engine resumes the seeded scan where a cached query's
    /// sample left off.
    pub fn skip(&mut self, rows: usize) {
        self.pos = rows.min(self.shard_len());
        self.base = self.pos;
    }

    /// Deliver the next row, or `None` when exhausted.
    pub fn next_row(&mut self) -> Option<Row<'_>> {
        let idx = self.shard + self.pos * self.n_shards;
        if idx >= self.order.len() {
            return None;
        }
        let r = self.order[idx] as usize;
        self.pos += 1;
        for (d, col) in self.table.dim_cols.iter().enumerate() {
            self.buf[d] = col[r];
        }
        Some(Row { members: &self.buf, value: self.table.measures[self.measure.index()][r] })
    }

    /// Restart the scan from where it started (the skipped prefix, if any,
    /// stays skipped).
    pub fn rewind(&mut self) {
        self.pos = self.base;
    }
}

/// Builder accumulating rows for a [`Table`].
#[derive(Debug)]
pub struct TableBuilder {
    schema: Schema,
    dim_cols: Vec<Vec<MemberId>>,
    measures: Vec<Vec<f64>>,
}

impl TableBuilder {
    /// Start building a table for `schema`.
    pub fn new(schema: Schema) -> Self {
        let n_dims = schema.dimensions().len();
        let n_measures = schema.measure_count();
        TableBuilder {
            schema,
            dim_cols: vec![Vec::new(); n_dims],
            measures: vec![Vec::new(); n_measures],
        }
    }

    /// Append one fact row with a single measure value (requires a
    /// single-measure schema; use [`TableBuilder::push_row_values`] for
    /// multi-measure tables).
    ///
    /// `members` must hold one **leaf** member per dimension, in schema
    /// order. Returns an error on arity or level mismatches.
    pub fn push_row(&mut self, members: &[MemberId], value: f64) -> Result<(), DataError> {
        self.push_row_values(members, &[value])
    }

    /// Append one fact row with one value per measure column.
    pub fn push_row_values(
        &mut self,
        members: &[MemberId],
        values: &[f64],
    ) -> Result<(), DataError> {
        if members.len() != self.dim_cols.len() {
            return Err(DataError::LengthMismatch {
                expected: self.dim_cols.len(),
                actual: members.len(),
            });
        }
        if values.len() != self.measures.len() {
            return Err(DataError::LengthMismatch {
                expected: self.measures.len(),
                actual: values.len(),
            });
        }
        for (d, &m) in members.iter().enumerate() {
            let dim = self.schema.dimension(DimId(d as u8));
            if m.index() >= dim.member_count() {
                return Err(DataError::InvalidId { kind: "member", id: m.index() });
            }
            let level = dim.member(m).level;
            if level != dim.leaf_level() {
                return Err(DataError::LevelMismatch {
                    expected: dim.leaf_level().index(),
                    actual: level.index(),
                });
            }
        }
        for (d, &m) in members.iter().enumerate() {
            self.dim_cols[d].push(m);
        }
        for (col, &v) in self.measures.iter_mut().zip(values) {
            col.push(v);
        }
        Ok(())
    }

    /// Rows accumulated so far.
    pub fn row_count(&self) -> usize {
        self.measures[0].len()
    }

    /// Schema the table is being built against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Finalize the table.
    pub fn build(self) -> Table {
        Table {
            schema: self.schema,
            dim_cols: self.dim_cols,
            measures: self.measures,
            shuffle_memo: Arc::new(Mutex::new(HashMap::new())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::DimensionBuilder;
    use crate::schema::MeasureUnit;

    fn tiny_table() -> Table {
        let mut b = DimensionBuilder::new("region", "in", "anywhere");
        let l = b.add_level("region");
        let ne = b.add_member(l, b.root(), "the North East");
        let mw = b.add_member(l, b.root(), "the Midwest");
        let dim = b.build();
        let schema = Schema::new("t", vec![dim], "value", MeasureUnit::Plain);
        let mut tb = TableBuilder::new(schema);
        for (m, v) in [(ne, 1.0), (mw, 2.0), (ne, 3.0), (mw, 4.0)] {
            tb.push_row(&[m], v).unwrap();
        }
        tb.build()
    }

    #[test]
    fn builder_and_access() {
        let t = tiny_table();
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.value_at(2), 3.0);
        assert_eq!(t.row_members(0), vec![MemberId(1)]);
        assert!(t.approx_bytes() > 0);
    }

    #[test]
    fn push_row_rejects_wrong_arity() {
        let t = tiny_table();
        let mut tb = TableBuilder::new(t.schema().clone());
        let err = tb.push_row(&[], 1.0).unwrap_err();
        assert!(matches!(err, DataError::LengthMismatch { .. }));
    }

    #[test]
    fn push_row_rejects_non_leaf() {
        let t = tiny_table();
        let mut tb = TableBuilder::new(t.schema().clone());
        let err = tb.push_row(&[MemberId::ROOT], 1.0).unwrap_err();
        assert!(matches!(err, DataError::LevelMismatch { .. }));
    }

    #[test]
    fn push_row_rejects_out_of_range_member() {
        let t = tiny_table();
        let mut tb = TableBuilder::new(t.schema().clone());
        let err = tb.push_row(&[MemberId(99)], 1.0).unwrap_err();
        assert!(matches!(err, DataError::InvalidId { .. }));
    }

    #[test]
    fn sequential_scan_visits_all_rows_in_order() {
        let t = tiny_table();
        let mut s = t.scan_sequential();
        let mut vals = Vec::new();
        while let Some(r) = s.next_row() {
            vals.push(r.value);
        }
        assert_eq!(vals, vec![1.0, 2.0, 3.0, 4.0]);
        assert!(s.exhausted());
        assert_eq!(s.rows_read(), 4);
    }

    #[test]
    fn shuffled_scan_is_a_permutation_and_deterministic() {
        let t = tiny_table();
        let collect = |seed| {
            let mut s = t.scan_shuffled(seed);
            let mut vals = Vec::new();
            while let Some(r) = s.next_row() {
                vals.push(r.value);
            }
            vals
        };
        let a = collect(7);
        let b = collect(7);
        assert_eq!(a, b, "same seed, same order");
        let mut sorted = a.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(sorted, vec![1.0, 2.0, 3.0, 4.0], "permutation covers all rows");
    }

    #[test]
    fn shards_partition_the_shuffled_order() {
        let t = tiny_table();
        // Shard 0 of 1 == the plain shuffled scan, row for row.
        let mut full = t.scan_shuffled(9);
        let mut solo = t.scan_shuffled_shard(9, 0, 1);
        while let Some(a) = full.next_row() {
            let b = solo.next_row().unwrap();
            assert_eq!(a.value, b.value);
        }
        assert!(solo.next_row().is_none());

        // Shards of one seed partition the table: union of values ==
        // multiset of all rows, and they interleave the global order.
        for n_shards in [2usize, 3] {
            let mut all = Vec::new();
            for shard in 0..n_shards {
                let mut s = t.scan_shuffled_shard(9, shard, n_shards);
                while let Some(r) = s.next_row() {
                    all.push(r.value);
                }
            }
            all.sort_by(f64::total_cmp);
            assert_eq!(all, vec![1.0, 2.0, 3.0, 4.0], "{n_shards} shards");
        }
    }

    #[test]
    fn shuffled_order_is_memoized_and_shared_across_clones() {
        let t = tiny_table();
        let a = t.shuffled_order(5);
        let b = t.shuffled_order(5);
        assert!(Arc::ptr_eq(&a, &b), "same seed reuses the permutation");
        let c = t.clone().shuffled_order(5);
        assert!(Arc::ptr_eq(&a, &c), "clones share the memo");
        let d = t.shuffled_order(6);
        assert!(!Arc::ptr_eq(&a, &d), "different seed, different permutation");
    }

    #[test]
    fn skip_resumes_the_seeded_scan_where_a_prefix_left_off() {
        let t = tiny_table();
        let mut full = t.scan_shuffled(3);
        full.next_row();
        full.next_row();
        let mut resumed = t.scan_shuffled(3);
        resumed.skip(2);
        assert_eq!(resumed.rows_read(), 0, "skipped rows are not counted as read");
        while let Some(expect) = full.next_row() {
            let expect = expect.value;
            assert_eq!(resumed.next_row().unwrap().value, expect);
        }
        assert!(resumed.exhausted());
        assert_eq!(resumed.rows_read(), 2);
        resumed.rewind();
        assert_eq!(resumed.rows_read(), 0, "rewind returns to the skip point");
    }

    #[test]
    fn rewind_restarts_scan() {
        let t = tiny_table();
        let mut s = t.scan_shuffled(3);
        let first = s.next_row().unwrap().value;
        while s.next_row().is_some() {}
        s.rewind();
        assert_eq!(s.next_row().unwrap().value, first);
    }
}
