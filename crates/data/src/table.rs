//! Columnar in-memory fact tables and streaming scanners.
//!
//! A [`Table`] stores one dense dictionary-id column per dimension — packed
//! at the narrowest integer width the dimension's cardinality allows
//! ([`DimColumn`]) — plus one `f64` column per measure. A [`RowScanner`]
//! streams rows in a deterministic pseudo-random order driven by the
//! chunked two-level scan scheme in [`crate::chunk`]: a seeded permutation
//! of 64K-row chunks plus an on-the-fly in-chunk bijection. This is the row
//! source the sampling cache consumes (paper §4.3 assumes rows arrive in
//! random order so that cache contents form uniform samples); parallel
//! scanners claim whole chunks from a shared [`MorselPool`] so they
//! partition the order without touching a shared memory stream.

use std::sync::Arc;

use crate::chunk::{Morsel, MorselPool, ScanOrder, CHUNK_ROWS};
use crate::dimension::{Dimension, MemberId};
use crate::error::DataError;
use crate::schema::{DimId, MeasureId, Schema};

/// Borrowed view of one fact row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row<'a> {
    /// Leaf member ids, one per dimension (schema order).
    pub members: &'a [MemberId],
    /// Value of the scanned measure.
    pub value: f64,
}

/// Borrowed view of one dimension's packed dictionary ids over a
/// contiguous row range (one chunk of the table). The variants mirror
/// [`DimColumn`]; downstream kernels match once per column and then walk
/// the raw integer slice without per-row width dispatch.
#[derive(Debug, Clone, Copy)]
pub enum DimSlice<'a> {
    /// Ids of a dimension with at most 256 members.
    U8(&'a [u8]),
    /// Ids of a dimension with at most 65 536 members.
    U16(&'a [u16]),
    /// Everything larger.
    U32(&'a [u32]),
}

impl DimSlice<'_> {
    /// Leaf id at in-slice index `i`.
    #[inline]
    pub fn get(&self, i: usize) -> MemberId {
        match self {
            DimSlice::U8(v) => MemberId(v[i] as u32),
            DimSlice::U16(v) => MemberId(v[i] as u32),
            DimSlice::U32(v) => MemberId(v[i]),
        }
    }

    /// Number of rows covered by the slice.
    pub fn len(&self) -> usize {
        match self {
            DimSlice::U8(v) => v.len(),
            DimSlice::U16(v) => v.len(),
            DimSlice::U32(v) => v.len(),
        }
    }

    /// `true` iff the slice covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Borrowed columnar view of one scan batch. All rows of a block lie in a
/// **single chunk**: `dims` and `values` cover the whole chunk contiguously
/// and `rows` holds the in-chunk indices the batch visits, in scan order —
/// so consumers index `dims[d]` / `values` directly with `rows[i]` and all
/// column accesses stay within one chunk's cache-resident slices.
#[derive(Debug, Clone, Copy)]
pub struct RowBlock<'a> {
    /// First global row of the chunk this block lies in.
    pub base: usize,
    /// In-chunk row indices visited by the block, in scan order.
    pub rows: &'a [u32],
    /// Per-dimension dictionary-id slices of the chunk (schema order).
    pub dims: &'a [DimSlice<'a>],
    /// The chunk's values of the scanned measure.
    pub values: &'a [f64],
}

impl RowBlock<'_> {
    /// Number of rows the block delivers.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the block delivers no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// One dimension's leaf-member column, packed at the narrowest width that
/// holds every dictionary id of the dimension (ids are dense, so the
/// member count bounds them).
#[derive(Debug, Clone)]
pub enum DimColumn {
    /// Dimensions with at most 256 members.
    U8(Vec<u8>),
    /// Dimensions with at most 65 536 members.
    U16(Vec<u16>),
    /// Everything larger.
    U32(Vec<u32>),
}

impl DimColumn {
    /// An empty column sized for a dimension with `members` dictionary
    /// entries.
    pub fn for_cardinality(members: usize) -> Self {
        if members <= u8::MAX as usize + 1 {
            DimColumn::U8(Vec::new())
        } else if members <= u16::MAX as usize + 1 {
            DimColumn::U16(Vec::new())
        } else {
            DimColumn::U32(Vec::new())
        }
    }

    /// Append one leaf id (the builder validated the range).
    fn push(&mut self, m: MemberId) {
        match self {
            DimColumn::U8(v) => v.push(m.0 as u8),
            DimColumn::U16(v) => v.push(m.0 as u16),
            DimColumn::U32(v) => v.push(m.0),
        }
    }

    /// Leaf id of row `row`.
    #[inline]
    pub fn get(&self, row: usize) -> MemberId {
        match self {
            DimColumn::U8(v) => MemberId(v[row] as u32),
            DimColumn::U16(v) => MemberId(v[row] as u32),
            DimColumn::U32(v) => MemberId(v[row]),
        }
    }

    /// Rows stored.
    pub fn len(&self) -> usize {
        match self {
            DimColumn::U8(v) => v.len(),
            DimColumn::U16(v) => v.len(),
            DimColumn::U32(v) => v.len(),
        }
    }

    /// `true` iff no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Storage bytes per row at this width.
    pub fn bytes_per_row(&self) -> usize {
        match self {
            DimColumn::U8(_) => 1,
            DimColumn::U16(_) => 2,
            DimColumn::U32(_) => 4,
        }
    }

    /// Borrow the packed ids of rows `base..base + len` (one chunk).
    #[inline]
    pub fn slice(&self, base: usize, len: usize) -> DimSlice<'_> {
        match self {
            DimColumn::U8(v) => DimSlice::U8(&v[base..base + len]),
            DimColumn::U16(v) => DimSlice::U16(&v[base..base + len]),
            DimColumn::U32(v) => DimSlice::U32(&v[base..base + len]),
        }
    }

    /// Re-pack to the narrowest width that holds ids of a dictionary with
    /// `members` entries. Widths only ever grow (dictionary extension
    /// never removes members), so existing ids transfer losslessly.
    fn repacked_for_cardinality(self, members: usize) -> Self {
        let needs_u16 = members > u8::MAX as usize + 1;
        let needs_u32 = members > u16::MAX as usize + 1;
        match self {
            DimColumn::U8(v) if needs_u32 => {
                DimColumn::U32(v.into_iter().map(|x| x as u32).collect())
            }
            DimColumn::U8(v) if needs_u16 => {
                DimColumn::U16(v.into_iter().map(|x| x as u16).collect())
            }
            DimColumn::U16(v) if needs_u32 => {
                DimColumn::U32(v.into_iter().map(|x| x as u32).collect())
            }
            other => other,
        }
    }
}

/// Monotonically increasing revision counter of a [`Table`]: the seed load
/// is version 0 and every append batch produces a table one version
/// higher. Caches stamp entries with the version they were computed
/// against so stale results can be invalidated or repaired.
pub type TableVersion = u64;

/// One dimension value of an ingest row.
#[derive(Debug, Clone, PartialEq)]
pub enum DimValue {
    /// Phrase of an **existing leaf** member (e.g. `"Kahului HI"`).
    Phrase(String),
    /// Full level-1-to-leaf phrase path; members missing along the path
    /// are created, extending the dimension's dictionary.
    Path(Vec<String>),
}

/// One fact row to append: a dimension value per schema dimension plus a
/// value per measure column.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestRow {
    /// One value per dimension, in schema order.
    pub dims: Vec<DimValue>,
    /// One value per measure column, in schema order.
    pub values: Vec<f64>,
}

/// An in-memory columnar fact table (one or more measure columns).
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    /// `dim_cols[d]` = packed leaf ids of dimension `d`, one per row.
    dim_cols: Vec<DimColumn>,
    /// `measures[m][r]` = value of measure `m` in row `r`.
    measures: Vec<Vec<f64>>,
    /// Revision of this table value (0 = seed load).
    version: TableVersion,
    /// Row counts of the seed load and every append batch, in order.
    /// Scan orders chunk and shuffle per segment so the old-prefix
    /// permutation survives appends.
    segments: Vec<usize>,
}

impl Table {
    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Revision of this table value (0 = seed load, +1 per append batch).
    pub fn version(&self) -> TableVersion {
        self.version
    }

    /// Row counts of the seed load and each append batch, in order.
    pub fn segments(&self) -> &[usize] {
        &self.segments
    }

    /// Append a batch of rows, producing the next version of the table.
    ///
    /// The storage is copied (readers keep scanning the old value
    /// untouched — see [`crate::live::LiveTable`] for the swap-on-append
    /// wrapper), the batch becomes a new sealed segment of the scan order,
    /// and dictionaries grow for any [`DimValue::Path`] members not seen
    /// before (packed columns re-widen when a dictionary outgrows its
    /// integer width). Validation happens before any state is built, so an
    /// error leaves nothing half-appended. Returns the grown table and the
    /// number of dictionary members created.
    pub fn append_rows(&self, rows: &[IngestRow]) -> Result<(Table, usize), DataError> {
        let mut dims: Vec<Dimension> = self.schema.dimensions().to_vec();
        let mut created = 0usize;
        let mut resolved: Vec<(Vec<MemberId>, &[f64])> = Vec::with_capacity(rows.len());
        for row in rows {
            if row.dims.len() != dims.len() {
                return Err(DataError::LengthMismatch {
                    expected: dims.len(),
                    actual: row.dims.len(),
                });
            }
            if row.values.len() != self.measures.len() {
                return Err(DataError::LengthMismatch {
                    expected: self.measures.len(),
                    actual: row.values.len(),
                });
            }
            let mut members = Vec::with_capacity(dims.len());
            for (dim, value) in dims.iter_mut().zip(&row.dims) {
                let m = match value {
                    DimValue::Phrase(p) => {
                        let m = dim.member_by_phrase(p)?;
                        if dim.member(m).level != dim.leaf_level() {
                            return Err(DataError::LevelMismatch {
                                expected: dim.leaf_level().index(),
                                actual: dim.member(m).level.index(),
                            });
                        }
                        m
                    }
                    DimValue::Path(path) => {
                        let (m, new) = dim.resolve_or_extend_path(path)?;
                        created += new;
                        m
                    }
                };
                members.push(m);
            }
            resolved.push((members, &row.values));
        }

        let schema =
            Schema::with_measures(self.schema.name(), dims, self.schema.measures().to_vec());
        let mut dim_cols: Vec<DimColumn> = self
            .dim_cols
            .iter()
            .cloned()
            .zip(schema.dimensions())
            .map(|(col, d)| col.repacked_for_cardinality(d.member_count()))
            .collect();
        let mut measures = self.measures.clone();
        for (members, values) in &resolved {
            for (col, &m) in dim_cols.iter_mut().zip(members) {
                col.push(m);
            }
            for (col, &v) in measures.iter_mut().zip(*values) {
                col.push(v);
            }
        }
        let mut segments = self.segments.clone();
        if !rows.is_empty() {
            segments.push(rows.len());
        }
        let table = Table { schema, dim_cols, measures, version: self.version + 1, segments };
        Ok((table, created))
    }

    /// Number of fact rows.
    pub fn row_count(&self) -> usize {
        self.measures[0].len()
    }

    /// Leaf member of row `row` in dimension `dim`.
    #[inline]
    pub fn member_at(&self, dim: DimId, row: usize) -> MemberId {
        self.dim_cols[dim.index()].get(row)
    }

    /// Primary-measure value of row `row`.
    #[inline]
    pub fn value_at(&self, row: usize) -> f64 {
        self.measures[0][row]
    }

    /// Value of measure `m` in row `row`.
    #[inline]
    pub fn measure_value(&self, m: MeasureId, row: usize) -> f64 {
        self.measures[m.index()][row]
    }

    /// Materialize row `row` into per-dimension leaf ids.
    pub fn row_members(&self, row: usize) -> Vec<MemberId> {
        self.dim_cols.iter().map(|c| c.get(row)).collect()
    }

    /// Approximate in-memory size in bytes (for dataset statistics):
    /// packed dimension columns, measure columns, and the materialized
    /// chunk slots one live scan order holds (the in-chunk permutations
    /// are computed on the fly and take no memory).
    pub fn approx_bytes(&self) -> usize {
        let rows = self.row_count();
        self.dim_cols.iter().map(|c| c.bytes_per_row() * rows).sum::<usize>()
            + self.measures.len() * rows * std::mem::size_of::<f64>()
            + self.scan_order(0).approx_bytes()
    }

    /// Full primary-measure column (read-only).
    pub fn measure(&self) -> &[f64] {
        &self.measures[0]
    }

    /// Full column of one measure (read-only).
    pub fn measure_column(&self, m: MeasureId) -> &[f64] {
        &self.measures[m.index()]
    }

    /// The seeded two-level scan order over this table's rows, segmented
    /// along append boundaries so old-prefix positions are stable across
    /// appends.
    pub fn scan_order(&self, seed: u64) -> ScanOrder {
        ScanOrder::segmented(&self.segments, seed, CHUNK_ROWS)
    }

    /// A shared morsel pool over the seeded scan order — the work source
    /// for a team of parallel scanners ([`Table::scan_pooled`]).
    pub fn morsel_pool(&self, seed: u64) -> Arc<MorselPool> {
        Arc::new(MorselPool::new(self.scan_order(seed)))
    }

    /// Create a scanner over the primary measure delivering rows in a
    /// seeded pseudo-random order.
    pub fn scan_shuffled(&self, seed: u64) -> RowScanner<'_> {
        self.scan_shuffled_measure(seed, MeasureId::PRIMARY)
    }

    /// Create a shuffled scanner delivering values of measure `m`.
    pub fn scan_shuffled_measure(&self, seed: u64, m: MeasureId) -> RowScanner<'_> {
        self.scan_pooled(self.morsel_pool(seed), m)
    }

    /// Create a scanner claiming morsels from a shared pool. Scanners on
    /// one pool partition the seeded order with zero overlap: each claims
    /// whole chunks from the pool's atomic counter and streams them
    /// privately. A single scanner on a fresh pool reproduces
    /// [`Table::scan_shuffled_measure`] row for row.
    pub fn scan_pooled(&self, pool: Arc<MorselPool>, m: MeasureId) -> RowScanner<'_> {
        assert_eq!(pool.order().rows(), self.row_count(), "pool built for another table");
        RowScanner {
            table: self,
            measure: m,
            pool,
            cur: None,
            read: 0,
            done: false,
            buf: vec![MemberId::ROOT; self.dim_cols.len()],
            idx_buf: Vec::new(),
            dim_slices: Vec::with_capacity(self.dim_cols.len()),
        }
    }

    /// Create a scanner over the primary measure in storage order.
    pub fn scan_sequential(&self) -> RowScanner<'_> {
        let pool = Arc::new(MorselPool::new(ScanOrder::sequential(self.row_count())));
        self.scan_pooled(pool, MeasureId::PRIMARY)
    }
}

/// Streaming scanner over a [`Table`].
///
/// Not an `Iterator` because the row view borrows an internal buffer
/// (a lending iterator); call [`RowScanner::next_row`] in a loop.
#[derive(Debug)]
pub struct RowScanner<'a> {
    table: &'a Table,
    measure: MeasureId,
    /// Work source; possibly shared with other scanners.
    pool: Arc<MorselPool>,
    /// The morsel currently being streamed.
    cur: Option<Morsel>,
    /// Rows delivered by this scanner (resumed prefixes excluded).
    read: usize,
    /// Set once the pool reports no morsels left.
    done: bool,
    buf: Vec<MemberId>,
    /// Reused in-chunk row-index buffer for [`RowScanner::next_block`].
    idx_buf: Vec<u32>,
    /// Reused per-dimension chunk-slice buffer for
    /// [`RowScanner::next_block`].
    dim_slices: Vec<DimSlice<'a>>,
}

impl<'a> RowScanner<'a> {
    /// Number of rows delivered so far (excluding any resumed prefix).
    pub fn rows_read(&self) -> usize {
        self.read
    }

    /// `true` once the scanner has drained its share of the pool.
    pub fn exhausted(&self) -> bool {
        self.done && self.cur.is_none()
    }

    /// Resume the scan from an earlier scan's snapshot (per-chunk-position
    /// progress, see [`MorselPool::progress_vec`]); the recorded prefix is
    /// skipped and does not count toward [`RowScanner::rows_read`]. Only
    /// valid on a fresh scanner with a private pool.
    pub fn resume(&mut self, progress: &[u32]) {
        assert!(self.read == 0 && self.cur.is_none(), "resume before reading");
        self.pool.resume(progress);
    }

    /// Per-chunk-position progress of the underlying pool — the snapshot
    /// a later scan can [`RowScanner::resume`] from.
    pub fn progress(&self) -> Vec<u32> {
        self.pool.progress_vec()
    }

    /// Deliver the next row, or `None` when this scanner's share of the
    /// pool is exhausted.
    pub fn next_row(&mut self) -> Option<Row<'_>> {
        loop {
            if let Some(m) = self.cur.as_mut() {
                if m.off < m.len {
                    let r = m.base + m.perm.apply(m.off) as usize;
                    m.off += 1;
                    self.pool.record(m.pos, m.off);
                    self.read += 1;
                    for (d, col) in self.table.dim_cols.iter().enumerate() {
                        self.buf[d] = col.get(r);
                    }
                    let value = self.table.measures[self.measure.index()][r];
                    return Some(Row { members: &self.buf, value });
                }
                self.cur = None;
            }
            if self.done {
                return None;
            }
            match self.pool.claim() {
                Some(m) => self.cur = Some(m),
                None => {
                    self.done = true;
                    return None;
                }
            }
        }
    }

    /// Stream up to `max_rows` rows through `f`, morsel by morsel — the
    /// vectorized ingest path. Column accesses inside one batch stay
    /// within a single chunk's contiguous slices, and pool progress is
    /// published once per batch instead of once per row. Returns the
    /// number of rows delivered (less than `max_rows` only on exhaustion).
    pub fn for_each_row(&mut self, max_rows: usize, mut f: impl FnMut(&[MemberId], f64)) -> usize {
        let mvals: &[f64] = &self.table.measures[self.measure.index()];
        let mut delivered = 0usize;
        while delivered < max_rows {
            let Some(m) = self.cur.as_mut() else {
                if self.done {
                    break;
                }
                match self.pool.claim() {
                    Some(c) => self.cur = Some(c),
                    None => self.done = true,
                }
                continue;
            };
            if m.off >= m.len {
                self.cur = None;
                continue;
            }
            let n = ((m.len - m.off) as usize).min(max_rows - delivered);
            let chunk_vals = &mvals[m.base..m.base + m.len as usize];
            for _ in 0..n {
                let j = m.perm.apply(m.off) as usize;
                m.off += 1;
                let r = m.base + j;
                for (d, col) in self.table.dim_cols.iter().enumerate() {
                    self.buf[d] = col.get(r);
                }
                f(&self.buf, chunk_vals[j]);
            }
            self.pool.record(m.pos, m.off);
            delivered += n;
        }
        self.read += delivered;
        delivered
    }

    /// Deliver the next batch of up to `max_rows` rows as a columnar
    /// [`RowBlock`], or `None` on exhaustion. A block never crosses a
    /// chunk boundary, so its `dims` and `values` are contiguous slices of
    /// the chunk and its `rows` are in-chunk indices in scan order. Pool
    /// progress is published once per block. Blocks concatenate to exactly
    /// the [`RowScanner::next_row`] row sequence.
    pub fn next_block(&mut self, max_rows: usize) -> Option<RowBlock<'_>> {
        if max_rows == 0 {
            return None;
        }
        loop {
            if let Some(m) = self.cur.as_mut() {
                if m.off < m.len {
                    let n = ((m.len - m.off) as usize).min(max_rows);
                    self.idx_buf.clear();
                    self.idx_buf.reserve(n);
                    for _ in 0..n {
                        self.idx_buf.push(m.perm.apply(m.off));
                        m.off += 1;
                    }
                    self.pool.record(m.pos, m.off);
                    self.read += n;
                    let base = m.base;
                    let len = m.len as usize;
                    self.dim_slices.clear();
                    for col in &self.table.dim_cols {
                        self.dim_slices.push(col.slice(base, len));
                    }
                    let values = &self.table.measures[self.measure.index()][base..base + len];
                    return Some(RowBlock {
                        base,
                        rows: &self.idx_buf,
                        dims: &self.dim_slices,
                        values,
                    });
                }
                self.cur = None;
            }
            if self.done {
                return None;
            }
            match self.pool.claim() {
                Some(m) => self.cur = Some(m),
                None => {
                    self.done = true;
                    return None;
                }
            }
        }
    }
}

/// Builder accumulating rows for a [`Table`].
#[derive(Debug)]
pub struct TableBuilder {
    schema: Schema,
    dim_cols: Vec<DimColumn>,
    measures: Vec<Vec<f64>>,
}

impl TableBuilder {
    /// Start building a table for `schema`.
    pub fn new(schema: Schema) -> Self {
        let dim_cols = schema
            .dimensions()
            .iter()
            .map(|d| DimColumn::for_cardinality(d.member_count()))
            .collect();
        let n_measures = schema.measure_count();
        TableBuilder { schema, dim_cols, measures: vec![Vec::new(); n_measures] }
    }

    /// Append one fact row with a single measure value (requires a
    /// single-measure schema; use [`TableBuilder::push_row_values`] for
    /// multi-measure tables).
    ///
    /// `members` must hold one **leaf** member per dimension, in schema
    /// order. Returns an error on arity or level mismatches.
    pub fn push_row(&mut self, members: &[MemberId], value: f64) -> Result<(), DataError> {
        self.push_row_values(members, &[value])
    }

    /// Append one fact row with one value per measure column.
    pub fn push_row_values(
        &mut self,
        members: &[MemberId],
        values: &[f64],
    ) -> Result<(), DataError> {
        if members.len() != self.dim_cols.len() {
            return Err(DataError::LengthMismatch {
                expected: self.dim_cols.len(),
                actual: members.len(),
            });
        }
        if values.len() != self.measures.len() {
            return Err(DataError::LengthMismatch {
                expected: self.measures.len(),
                actual: values.len(),
            });
        }
        for (d, &m) in members.iter().enumerate() {
            let dim = self.schema.dimension(DimId(d as u8));
            if m.index() >= dim.member_count() {
                return Err(DataError::InvalidId { kind: "member", id: m.index() });
            }
            let level = dim.member(m).level;
            if level != dim.leaf_level() {
                return Err(DataError::LevelMismatch {
                    expected: dim.leaf_level().index(),
                    actual: level.index(),
                });
            }
        }
        for (d, &m) in members.iter().enumerate() {
            self.dim_cols[d].push(m);
        }
        for (col, &v) in self.measures.iter_mut().zip(values) {
            col.push(v);
        }
        Ok(())
    }

    /// Rows accumulated so far.
    pub fn row_count(&self) -> usize {
        self.measures[0].len()
    }

    /// Schema the table is being built against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Finalize the table (version 0, one seed segment).
    pub fn build(self) -> Table {
        let rows = self.measures[0].len();
        Table {
            schema: self.schema,
            dim_cols: self.dim_cols,
            measures: self.measures,
            version: 0,
            segments: vec![rows],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::DimensionBuilder;
    use crate::schema::MeasureUnit;

    fn tiny_table() -> Table {
        let mut b = DimensionBuilder::new("region", "in", "anywhere");
        let l = b.add_level("region");
        let ne = b.add_member(l, b.root(), "the North East");
        let mw = b.add_member(l, b.root(), "the Midwest");
        let dim = b.build();
        let schema = Schema::new("t", vec![dim], "value", MeasureUnit::Plain);
        let mut tb = TableBuilder::new(schema);
        for (m, v) in [(ne, 1.0), (mw, 2.0), (ne, 3.0), (mw, 4.0)] {
            tb.push_row(&[m], v).unwrap();
        }
        tb.build()
    }

    #[test]
    fn builder_and_access() {
        let t = tiny_table();
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.value_at(2), 3.0);
        assert_eq!(t.row_members(0), vec![MemberId(1)]);
        assert!(t.approx_bytes() > 0);
    }

    #[test]
    fn small_cardinality_dimensions_pack_to_one_byte() {
        let t = tiny_table();
        // 3 members (root + 2 leaves) -> u8 ids: 1 byte per dimension row
        // plus 8 per measure row plus the (single-chunk) scan-order slot
        // (base + len + id).
        assert_eq!(t.approx_bytes(), 4 * (1 + 8) + 16);
    }

    #[test]
    fn push_row_rejects_wrong_arity() {
        let t = tiny_table();
        let mut tb = TableBuilder::new(t.schema().clone());
        let err = tb.push_row(&[], 1.0).unwrap_err();
        assert!(matches!(err, DataError::LengthMismatch { .. }));
    }

    #[test]
    fn push_row_rejects_non_leaf() {
        let t = tiny_table();
        let mut tb = TableBuilder::new(t.schema().clone());
        let err = tb.push_row(&[MemberId::ROOT], 1.0).unwrap_err();
        assert!(matches!(err, DataError::LevelMismatch { .. }));
    }

    #[test]
    fn push_row_rejects_out_of_range_member() {
        let t = tiny_table();
        let mut tb = TableBuilder::new(t.schema().clone());
        let err = tb.push_row(&[MemberId(99)], 1.0).unwrap_err();
        assert!(matches!(err, DataError::InvalidId { .. }));
    }

    #[test]
    fn sequential_scan_visits_all_rows_in_order() {
        let t = tiny_table();
        let mut s = t.scan_sequential();
        let mut vals = Vec::new();
        while let Some(r) = s.next_row() {
            vals.push(r.value);
        }
        assert_eq!(vals, vec![1.0, 2.0, 3.0, 4.0]);
        assert!(s.exhausted());
        assert_eq!(s.rows_read(), 4);
    }

    #[test]
    fn shuffled_scan_is_a_permutation_and_deterministic() {
        let t = tiny_table();
        let collect = |seed| {
            let mut s = t.scan_shuffled(seed);
            let mut vals = Vec::new();
            while let Some(r) = s.next_row() {
                vals.push(r.value);
            }
            vals
        };
        let a = collect(7);
        let b = collect(7);
        assert_eq!(a, b, "same seed, same order");
        let mut sorted = a.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(sorted, vec![1.0, 2.0, 3.0, 4.0], "permutation covers all rows");
    }

    #[test]
    fn pooled_scanners_partition_the_shuffled_order() {
        // A single scanner on a fresh pool == the plain shuffled scan.
        let t = tiny_table();
        let mut full = t.scan_shuffled(9);
        let mut solo = t.scan_pooled(t.morsel_pool(9), MeasureId::PRIMARY);
        while let Some(a) = full.next_row() {
            let b = solo.next_row().unwrap();
            assert_eq!(a.value, b.value);
        }
        assert!(solo.next_row().is_none());

        // Scanners sharing one pool partition the table: union of values
        // == multiset of all rows.
        for n_scanners in [2usize, 3] {
            let pool = t.morsel_pool(9);
            let mut all = Vec::new();
            for _ in 0..n_scanners {
                let mut s = t.scan_pooled(pool.clone(), MeasureId::PRIMARY);
                while let Some(r) = s.next_row() {
                    all.push(r.value);
                }
            }
            all.sort_by(f64::total_cmp);
            assert_eq!(all, vec![1.0, 2.0, 3.0, 4.0], "{n_scanners} scanners");
        }
    }

    #[test]
    fn resume_continues_the_seeded_scan_where_a_prefix_left_off() {
        let t = tiny_table();
        let mut donor = t.scan_shuffled(3);
        donor.next_row();
        donor.next_row();
        let snapshot = donor.progress();
        let mut resumed = t.scan_shuffled(3);
        resumed.resume(&snapshot);
        assert_eq!(resumed.rows_read(), 0, "resumed rows are not counted as read");
        while let Some(expect) = donor.next_row() {
            let expect = expect.value;
            assert_eq!(resumed.next_row().unwrap().value, expect);
        }
        assert!(resumed.next_row().is_none());
        assert_eq!(resumed.rows_read(), 2);
    }

    #[test]
    fn block_scan_delivers_the_same_rows_as_next_row() {
        let t = tiny_table();
        let mut by_row = t.scan_shuffled(5);
        let mut expect = Vec::new();
        while let Some(r) = by_row.next_row() {
            expect.push((r.members.to_vec(), r.value));
        }
        let mut blocked = t.scan_shuffled(5);
        let mut got = Vec::new();
        // Odd block size exercises the mid-morsel resume of the loop.
        while let Some(b) = blocked.next_block(3) {
            for &r in b.rows {
                let members: Vec<MemberId> = b.dims.iter().map(|d| d.get(r as usize)).collect();
                got.push((members, b.values[r as usize]));
            }
        }
        assert_eq!(got, expect);
        assert_eq!(blocked.rows_read(), expect.len());
        assert!(blocked.exhausted());
    }

    #[test]
    fn zero_sized_block_request_returns_none_without_consuming() {
        let t = tiny_table();
        let mut s = t.scan_shuffled(5);
        assert!(s.next_block(0).is_none());
        assert_eq!(s.rows_read(), 0);
        assert!(s.next_block(10).is_some(), "scan not perturbed");
    }

    #[test]
    fn batch_scan_delivers_the_same_rows_as_next_row() {
        let t = tiny_table();
        let mut by_row = t.scan_shuffled(5);
        let mut expect = Vec::new();
        while let Some(r) = by_row.next_row() {
            expect.push((r.members.to_vec(), r.value));
        }
        let mut batched = t.scan_shuffled(5);
        let mut got = Vec::new();
        // Odd batch size exercises the mid-morsel resume of the loop.
        while batched.for_each_row(3, |m, v| got.push((m.to_vec(), v))) > 0 {}
        assert_eq!(got, expect);
        assert_eq!(batched.rows_read(), expect.len());
    }
}
