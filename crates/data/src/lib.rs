//! # voxolap-data
//!
//! Data substrate for VoxOLAP: an in-memory columnar store with dimension
//! hierarchies, streaming (shuffled) row scanners, and deterministic
//! synthetic dataset generators reproducing the statistical structure of the
//! two datasets used in the paper's evaluation (flight cancellations and
//! mid-career salaries).
//!
//! The engine layered on top of this crate only requires that rows "can be
//! produced without significant startup overheads and at a sufficiently high
//! frequency" (paper §2). [`table::RowScanner`] delivers rows of a
//! [`table::Table`] in a deterministic pseudo-random order, which is what
//! the sampling cache in `voxolap-engine` consumes.
//!
//! ## Quick example
//!
//! ```
//! use voxolap_data::flights::FlightsConfig;
//!
//! // A small deterministic flights dataset (paper uses 5.3M rows).
//! let table = FlightsConfig::small().generate();
//! assert!(table.row_count() > 0);
//! // Three dimensions: start airport, flight date, airline.
//! assert_eq!(table.schema().dimensions().len(), 3);
//! ```

pub mod chunk;
pub mod csv;
pub mod dimension;
pub mod durable;
pub mod error;
pub mod flights;
pub mod live;
pub mod salary;
pub mod schema;
pub mod star;
pub mod stats;
pub mod table;
pub mod wal;

pub use chunk::{InChunkPerm, Morsel, MorselPool, ScanOrder, CHUNK_ROWS};
pub use dimension::{Dimension, DimensionBuilder, LevelId, Member, MemberId};
pub use durable::{
    DurabilityOptions, DurabilitySnapshot, DurabilityStats, DurableTable, RecoveryReport,
};
pub use error::DataError;
pub use live::{AppendReport, LiveTable};
pub use wal::{FsyncMode, WalBatch};
pub use schema::{DimId, Schema};
pub use star::{DimensionTable, FactTable, StarSchema};
pub use stats::DatasetStats;
pub use table::{
    DimSlice, DimValue, IngestRow, Row, RowBlock, RowScanner, Table, TableBuilder, TableVersion,
};
