//! Dimension hierarchies.
//!
//! A *dimension* structures the value domain of a filter column into a tree
//! (paper §2): each hierarchy has named *levels* at increasing granularity,
//! and *members* at each level. Level `0` is always the implicit root level
//! holding a single catch-all member (e.g. *"any college"*). Deeper levels
//! are the ones queries can group by or restrict to (e.g. *region*, *state*,
//! *specific institution* for the college dimension of the salary dataset).
//!
//! Fact rows reference **leaf** members (deepest level); coarser members are
//! reached via parent links. Ancestor tests — the core operation for scope
//! checks in the engine — cost `O(depth)` where depth is bounded by the
//! number of levels (at most 5 in the paper's datasets).

use crate::error::DataError;

/// Identifier of a member within one dimension's member arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemberId(pub u32);

impl MemberId {
    /// The root member of any dimension.
    pub const ROOT: MemberId = MemberId(0);

    /// Index into the member arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a level within one dimension (0 = root level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LevelId(pub u8);

impl LevelId {
    /// The root level.
    pub const ROOT: LevelId = LevelId(0);

    /// Index of the level (0 = root).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A node in a dimension hierarchy.
#[derive(Debug, Clone)]
pub struct Member {
    /// Spoken phrase for this member, e.g. `"the North East"` or
    /// `"any college"` for the root.
    pub phrase: String,
    /// Level this member lives at.
    pub level: LevelId,
    /// Parent member; `None` only for the root.
    pub parent: Option<MemberId>,
    /// Children, in insertion order.
    pub children: Vec<MemberId>,
}

/// A dimension hierarchy: named levels plus a member tree.
///
/// Build one with [`DimensionBuilder`].
#[derive(Debug, Clone)]
pub struct Dimension {
    name: String,
    context: String,
    level_names: Vec<String>,
    members: Vec<Member>,
    /// Leaf members (deepest level), in insertion order. Fact rows index
    /// conceptually into this set via their `MemberId`.
    leaves: Vec<MemberId>,
}

impl Dimension {
    /// Machine-readable dimension name (e.g. `"start airport"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Spoken context template prefix used to embed member phrases,
    /// e.g. `"flights starting from"` (paper grammar symbol `<Dc>`).
    pub fn context(&self) -> &str {
        &self.context
    }

    /// Number of levels including the root level.
    pub fn level_count(&self) -> usize {
        self.level_names.len()
    }

    /// Deepest (leaf) level.
    pub fn leaf_level(&self) -> LevelId {
        LevelId((self.level_names.len() - 1) as u8)
    }

    /// Spoken name of a level (paper grammar symbol `<L>`),
    /// e.g. `"region"`.
    pub fn level_name(&self, level: LevelId) -> &str {
        &self.level_names[level.index()]
    }

    /// Resolve a level by its name.
    pub fn level_by_name(&self, name: &str) -> Result<LevelId, DataError> {
        self.level_names
            .iter()
            .position(|n| n == name)
            .map(|i| LevelId(i as u8))
            .ok_or_else(|| DataError::UnknownName { kind: "level", name: name.to_string() })
    }

    /// Access a member node.
    pub fn member(&self, id: MemberId) -> &Member {
        &self.members[id.index()]
    }

    /// Total number of members in the hierarchy.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Root member (level 0 catch-all, e.g. "any college").
    pub fn root(&self) -> MemberId {
        MemberId::ROOT
    }

    /// All members at a given level, in insertion order.
    pub fn level_members(&self, level: LevelId) -> Vec<MemberId> {
        (0..self.members.len())
            .map(|i| MemberId(i as u32))
            .filter(|m| self.members[m.index()].level == level)
            .collect()
    }

    /// All leaf members.
    pub fn leaves(&self) -> &[MemberId] {
        &self.leaves
    }

    /// Resolve a member by its phrase.
    pub fn member_by_phrase(&self, phrase: &str) -> Result<MemberId, DataError> {
        self.members
            .iter()
            .position(|m| m.phrase == phrase)
            .map(|i| MemberId(i as u32))
            .ok_or_else(|| DataError::UnknownName { kind: "member", name: phrase.to_string() })
    }

    /// `true` iff `ancestor` lies on the path from `descendant` to the root
    /// (a member is considered its own ancestor).
    pub fn is_ancestor_or_self(&self, ancestor: MemberId, descendant: MemberId) -> bool {
        let mut cur = descendant;
        loop {
            if cur == ancestor {
                return true;
            }
            match self.members[cur.index()].parent {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// The ancestor of `member` at `level`.
    ///
    /// Returns an error if `member` is shallower than `level`.
    pub fn ancestor_at_level(
        &self,
        member: MemberId,
        level: LevelId,
    ) -> Result<MemberId, DataError> {
        let mut cur = member;
        loop {
            let m = &self.members[cur.index()];
            if m.level == level {
                return Ok(cur);
            }
            match m.parent {
                Some(p) => cur = p,
                None => {
                    return Err(DataError::LevelMismatch {
                        expected: level.index(),
                        actual: self.members[member.index()].level.index(),
                    })
                }
            }
        }
    }

    /// Path of member ids from the root (inclusive) to `member` (inclusive).
    pub fn path(&self, member: MemberId) -> Vec<MemberId> {
        let mut path = vec![member];
        let mut cur = member;
        while let Some(p) = self.members[cur.index()].parent {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// All leaf members under `member` (inclusive if `member` is a leaf).
    pub fn leaves_under(&self, member: MemberId) -> Vec<MemberId> {
        let mut out = Vec::new();
        let mut stack = vec![member];
        while let Some(m) = stack.pop() {
            let node = &self.members[m.index()];
            if node.children.is_empty() {
                if node.level == self.leaf_level() {
                    out.push(m);
                }
            } else {
                stack.extend(node.children.iter().copied());
            }
        }
        out.sort();
        out
    }

    /// Render the spoken predicate phrase for `member`
    /// (paper symbol `<P> ::= <Dc> <M>`), e.g.
    /// `"flights starting from the North East"`.
    pub fn predicate_phrase(&self, member: MemberId) -> String {
        format!("{} {}", self.context, self.members[member.index()].phrase)
    }

    /// Child of `parent` whose phrase is `phrase`, if any. Lookup is
    /// scoped to one parent so identical phrases in different subtrees
    /// (e.g. two states sharing a city name) stay distinct.
    pub fn child_by_phrase(&self, parent: MemberId, phrase: &str) -> Option<MemberId> {
        self.members[parent.index()]
            .children
            .iter()
            .copied()
            .find(|c| self.members[c.index()].phrase == phrase)
    }

    /// Append a new member under `parent` (one level deeper), extending
    /// the dictionary of a live dimension. Ids of existing members are
    /// never disturbed — the new member takes the next dense id, so packed
    /// fact columns referencing the old dictionary stay valid.
    pub fn extend_member(&mut self, parent: MemberId, phrase: &str) -> Result<MemberId, DataError> {
        let parent_level = self.members[parent.index()].level;
        let level = LevelId(parent_level.0 + 1);
        if level.index() >= self.level_names.len() {
            return Err(DataError::LevelMismatch {
                expected: self.leaf_level().index(),
                actual: level.index(),
            });
        }
        let id = MemberId(self.members.len() as u32);
        self.members.push(Member {
            phrase: phrase.to_string(),
            level,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.members[parent.index()].children.push(id);
        if level == self.leaf_level() {
            self.leaves.push(id);
        }
        Ok(id)
    }

    /// Resolve a full level-1-to-leaf phrase path to a leaf member,
    /// creating any members missing along the way. Returns the leaf id and
    /// the number of members created.
    pub fn resolve_or_extend_path(
        &mut self,
        path: &[impl AsRef<str>],
    ) -> Result<(MemberId, usize), DataError> {
        if path.len() != self.level_count() - 1 {
            return Err(DataError::LengthMismatch {
                expected: self.level_count() - 1,
                actual: path.len(),
            });
        }
        let mut cur = MemberId::ROOT;
        let mut created = 0usize;
        for phrase in path {
            cur = match self.child_by_phrase(cur, phrase.as_ref()) {
                Some(c) => c,
                None => {
                    created += 1;
                    self.extend_member(cur, phrase.as_ref())?
                }
            };
        }
        Ok((cur, created))
    }
}

/// Incremental builder for a [`Dimension`].
///
/// ```
/// use voxolap_data::dimension::DimensionBuilder;
///
/// let mut b = DimensionBuilder::new("college location", "graduates from", "any college");
/// let region = b.add_level("region");
/// let ne = b.add_member(region, b.root(), "the North East");
/// let state = b.add_level("state");
/// b.add_member(state, ne, "New York");
/// let dim = b.build();
/// assert_eq!(dim.level_count(), 3); // root + region + state
/// ```
#[derive(Debug, Clone)]
pub struct DimensionBuilder {
    dim: Dimension,
}

impl DimensionBuilder {
    /// Start a dimension with a root catch-all member.
    pub fn new(name: &str, context: &str, root_phrase: &str) -> Self {
        DimensionBuilder {
            dim: Dimension {
                name: name.to_string(),
                context: context.to_string(),
                level_names: vec!["all".to_string()],
                members: vec![Member {
                    phrase: root_phrase.to_string(),
                    level: LevelId::ROOT,
                    parent: None,
                    children: Vec::new(),
                }],
                leaves: Vec::new(),
            },
        }
    }

    /// The root member id (always [`MemberId::ROOT`]).
    pub fn root(&self) -> MemberId {
        MemberId::ROOT
    }

    /// Append a new (deeper) level and return its id.
    pub fn add_level(&mut self, name: &str) -> LevelId {
        self.dim.level_names.push(name.to_string());
        LevelId((self.dim.level_names.len() - 1) as u8)
    }

    /// Add a member at `level` under `parent`.
    ///
    /// # Panics
    /// Panics if `level` is not exactly one deeper than the parent's level —
    /// hierarchies must be built top-down, level by level.
    pub fn add_member(&mut self, level: LevelId, parent: MemberId, phrase: &str) -> MemberId {
        let parent_level = self.dim.members[parent.index()].level;
        assert_eq!(
            parent_level.index() + 1,
            level.index(),
            "member at level {} must have parent at level {}",
            level.index(),
            level.index() - 1
        );
        let id = MemberId(self.dim.members.len() as u32);
        self.dim.members.push(Member {
            phrase: phrase.to_string(),
            level,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.dim.members[parent.index()].children.push(id);
        id
    }

    /// Finalize the dimension, computing its leaf set.
    pub fn build(mut self) -> Dimension {
        let leaf_level = self.dim.leaf_level();
        self.dim.leaves = (0..self.dim.members.len())
            .map(|i| MemberId(i as u32))
            .filter(|m| self.dim.members[m.index()].level == leaf_level)
            .collect();
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dim() -> Dimension {
        let mut b = DimensionBuilder::new("college location", "graduates from", "any college");
        let region = b.add_level("region");
        let ne = b.add_member(region, b.root(), "the North East");
        let mw = b.add_member(region, b.root(), "the Midwest");
        let state = b.add_level("state");
        let ny = b.add_member(state, ne, "New York");
        b.add_member(state, ne, "Massachusetts");
        b.add_member(state, mw, "Ohio");
        let _ = ny;
        b.build()
    }

    #[test]
    fn builder_produces_levels_and_members() {
        let d = sample_dim();
        assert_eq!(d.level_count(), 3);
        assert_eq!(d.member_count(), 6); // root + 2 regions + 3 states
        assert_eq!(d.level_name(LevelId(1)), "region");
        assert_eq!(d.leaf_level(), LevelId(2));
        assert_eq!(d.leaves().len(), 3);
    }

    #[test]
    fn ancestor_checks() {
        let d = sample_dim();
        let ne = d.member_by_phrase("the North East").unwrap();
        let ny = d.member_by_phrase("New York").unwrap();
        let oh = d.member_by_phrase("Ohio").unwrap();
        assert!(d.is_ancestor_or_self(ne, ny));
        assert!(d.is_ancestor_or_self(d.root(), ny));
        assert!(d.is_ancestor_or_self(ny, ny));
        assert!(!d.is_ancestor_or_self(ne, oh));
        assert!(!d.is_ancestor_or_self(ny, ne));
    }

    #[test]
    fn ancestor_at_level_walks_up() {
        let d = sample_dim();
        let ny = d.member_by_phrase("New York").unwrap();
        let ne = d.member_by_phrase("the North East").unwrap();
        assert_eq!(d.ancestor_at_level(ny, LevelId(1)).unwrap(), ne);
        assert_eq!(d.ancestor_at_level(ny, LevelId::ROOT).unwrap(), d.root());
        // Walking *down* is an error.
        assert!(d.ancestor_at_level(ne, LevelId(2)).is_err());
    }

    #[test]
    fn path_runs_root_to_member() {
        let d = sample_dim();
        let ny = d.member_by_phrase("New York").unwrap();
        let p = d.path(ny);
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], d.root());
        assert_eq!(p[2], ny);
    }

    #[test]
    fn leaves_under_region() {
        let d = sample_dim();
        let ne = d.member_by_phrase("the North East").unwrap();
        assert_eq!(d.leaves_under(ne).len(), 2);
        assert_eq!(d.leaves_under(d.root()).len(), 3);
    }

    #[test]
    fn predicate_phrase_embeds_member() {
        let d = sample_dim();
        let ne = d.member_by_phrase("the North East").unwrap();
        assert_eq!(d.predicate_phrase(ne), "graduates from the North East");
        assert_eq!(d.predicate_phrase(d.root()), "graduates from any college");
    }

    #[test]
    fn level_members_by_level() {
        let d = sample_dim();
        assert_eq!(d.level_members(LevelId::ROOT).len(), 1);
        assert_eq!(d.level_members(LevelId(1)).len(), 2);
        assert_eq!(d.level_members(LevelId(2)).len(), 3);
    }

    #[test]
    fn unknown_names_error() {
        let d = sample_dim();
        assert!(d.member_by_phrase("Atlantis").is_err());
        assert!(d.level_by_name("continent").is_err());
    }

    #[test]
    #[should_panic(expected = "must have parent")]
    fn skipping_levels_panics() {
        let mut b = DimensionBuilder::new("d", "c", "any");
        let _l1 = b.add_level("one");
        let l2 = b.add_level("two");
        // Parent is root (level 0) but member claims level 2.
        b.add_member(l2, b.root(), "bad");
    }
}
