//! Table schemas: a set of dimension hierarchies plus one measure column.

use crate::dimension::Dimension;
use crate::error::DataError;

/// Identifier of a dimension within a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DimId(pub u8);

impl DimId {
    /// Index into the schema's dimension list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How measure values should be verbalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureUnit {
    /// Values in `[0,1]` spoken as percentages (e.g. cancellation probability).
    Fraction,
    /// Dollar amounts spoken in thousands (e.g. `"90 K"`).
    DollarsK,
    /// Plain numbers.
    Plain,
}

/// Identifier of a measure column within a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MeasureId(pub u8);

impl MeasureId {
    /// The primary (first) measure of a schema.
    pub const PRIMARY: MeasureId = MeasureId(0);

    /// Index into the schema's measure list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One measure column: a spoken name plus a verbalization unit.
#[derive(Debug, Clone)]
pub struct Measure {
    /// Spoken name (e.g. `"cancellation probability"`).
    pub name: String,
    /// Unit hint for verbalization.
    pub unit: MeasureUnit,
}

/// Schema of a fact table: dimensions + one or more measure columns.
///
/// The paper supports one aggregation column per query (§2) and notes the
/// approach "could be easily extended to support multiple functions and
/// columns" — a schema may therefore carry several measures; each query
/// aggregates exactly one of them ([`MeasureId`]). Star schemata are
/// represented the same way — the generators join dimension tables into
/// leaf member ids at load time, which matches the paper's assumption of
/// "joining fact table entries with indexed dimension tables" producing
/// rows at high frequency.
#[derive(Debug, Clone)]
pub struct Schema {
    name: String,
    dimensions: Vec<Dimension>,
    measures: Vec<Measure>,
}

impl Schema {
    /// Create a single-measure schema (the common case).
    pub fn new(
        name: &str,
        dimensions: Vec<Dimension>,
        measure_name: &str,
        measure_unit: MeasureUnit,
    ) -> Self {
        Self::with_measures(
            name,
            dimensions,
            vec![Measure { name: measure_name.to_string(), unit: measure_unit }],
        )
    }

    /// Create a schema with multiple measure columns.
    ///
    /// # Panics
    /// Panics when `measures` is empty — every fact table aggregates
    /// something.
    pub fn with_measures(name: &str, dimensions: Vec<Dimension>, measures: Vec<Measure>) -> Self {
        assert!(!measures.is_empty(), "a schema needs at least one measure");
        Schema { name: name.to_string(), dimensions, measures }
    }

    /// Dataset name (e.g. `"flight cancellations"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All dimensions, indexable by [`DimId`].
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dimensions
    }

    /// Access one dimension.
    pub fn dimension(&self, id: DimId) -> &Dimension {
        &self.dimensions[id.index()]
    }

    /// Iterate `(DimId, &Dimension)` pairs.
    pub fn dims(&self) -> impl Iterator<Item = (DimId, &Dimension)> {
        self.dimensions.iter().enumerate().map(|(i, d)| (DimId(i as u8), d))
    }

    /// Resolve a dimension by name.
    pub fn dimension_by_name(&self, name: &str) -> Result<DimId, DataError> {
        self.dimensions
            .iter()
            .position(|d| d.name() == name)
            .map(|i| DimId(i as u8))
            .ok_or_else(|| DataError::UnknownName { kind: "dimension", name: name.to_string() })
    }

    /// Spoken name of the primary measure column.
    pub fn measure_name(&self) -> &str {
        &self.measures[0].name
    }

    /// Unit hint for verbalizing primary-measure values.
    pub fn measure_unit(&self) -> MeasureUnit {
        self.measures[0].unit
    }

    /// Number of measure columns.
    pub fn measure_count(&self) -> usize {
        self.measures.len()
    }

    /// All measures, indexable by [`MeasureId`].
    pub fn measures(&self) -> &[Measure] {
        &self.measures
    }

    /// One measure column.
    pub fn measure(&self, id: MeasureId) -> &Measure {
        &self.measures[id.index()]
    }

    /// Resolve a measure by name.
    pub fn measure_by_name(&self, name: &str) -> Result<MeasureId, DataError> {
        self.measures
            .iter()
            .position(|m| m.name == name)
            .map(|i| MeasureId(i as u8))
            .ok_or_else(|| DataError::UnknownName { kind: "measure", name: name.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::DimensionBuilder;

    fn schema() -> Schema {
        let mut b = DimensionBuilder::new("college location", "graduates from", "any college");
        let l = b.add_level("region");
        b.add_member(l, b.root(), "the North East");
        let college = b.build();

        let mut b = DimensionBuilder::new("start salary", "a start salary of", "any amount");
        let l = b.add_level("rough start salary");
        b.add_member(l, b.root(), "at least 50 K");
        let salary = b.build();

        Schema::new("salaries", vec![college, salary], "mid-career salary", MeasureUnit::DollarsK)
    }

    #[test]
    fn lookup_by_name() {
        let s = schema();
        assert_eq!(s.dimension_by_name("start salary").unwrap(), DimId(1));
        assert!(s.dimension_by_name("airline").is_err());
    }

    #[test]
    fn dims_iterator_yields_all() {
        let s = schema();
        let names: Vec<_> = s.dims().map(|(_, d)| d.name().to_string()).collect();
        assert_eq!(names, vec!["college location", "start salary"]);
    }

    #[test]
    fn measure_metadata() {
        let s = schema();
        assert_eq!(s.measure_name(), "mid-career salary");
        assert_eq!(s.measure_unit(), MeasureUnit::DollarsK);
        assert_eq!(s.measure_count(), 1);
    }

    #[test]
    fn multi_measure_schema_lookup() {
        let mut b = DimensionBuilder::new("d", "in", "anywhere");
        let l = b.add_level("level");
        b.add_member(l, b.root(), "m");
        let schema = Schema::with_measures(
            "multi",
            vec![b.build()],
            vec![
                Measure { name: "first".into(), unit: MeasureUnit::Fraction },
                Measure { name: "second".into(), unit: MeasureUnit::Plain },
            ],
        );
        assert_eq!(schema.measure_count(), 2);
        assert_eq!(schema.measure_by_name("second").unwrap(), MeasureId(1));
        assert!(schema.measure_by_name("third").is_err());
        assert_eq!(schema.measure(MeasureId(1)).unit, MeasureUnit::Plain);
        // Primary accessors keep working.
        assert_eq!(schema.measure_name(), "first");
        assert_eq!(schema.measure_unit(), MeasureUnit::Fraction);
    }

    #[test]
    #[should_panic(expected = "at least one measure")]
    fn empty_measures_rejected() {
        let mut b = DimensionBuilder::new("d", "in", "anywhere");
        let l = b.add_level("level");
        b.add_member(l, b.root(), "m");
        let _ = Schema::with_measures("broken", vec![b.build()], vec![]);
    }
}
