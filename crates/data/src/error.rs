//! Error type for the data layer.

use std::fmt;

/// Errors raised while building or accessing tables and dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A dimension, level, or member name was not found.
    UnknownName {
        /// What kind of entity was looked up (e.g. `"dimension"`).
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// An id was out of range for its arena.
    InvalidId {
        /// What kind of id (e.g. `"member"`).
        kind: &'static str,
        /// The offending numeric id.
        id: usize,
    },
    /// Column lengths disagree while building a table.
    LengthMismatch {
        /// Expected number of rows.
        expected: usize,
        /// Observed number of rows.
        actual: usize,
    },
    /// A member was used at the wrong hierarchy level
    /// (e.g. a non-leaf member in a fact row).
    LevelMismatch {
        /// Expected level index.
        expected: usize,
        /// Observed level index.
        actual: usize,
    },
    /// The durability layer failed: a write-ahead-log append or fsync, a
    /// snapshot write, or recovery found the on-disk state unusable. The
    /// in-memory revision is left untouched when this surfaces from an
    /// append.
    Wal {
        /// What failed (e.g. `"append"`, `"fsync"`, `"recovery"`).
        op: &'static str,
        /// Description of the failure.
        message: String,
    },
    /// A malformed CSV line was encountered.
    Csv {
        /// 1-based line number.
        line: usize,
        /// The column (header name) the problem was found in, when it is
        /// attributable to one.
        column: Option<String>,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownName { kind, name } => {
                write!(f, "unknown {kind} name: {name:?}")
            }
            DataError::InvalidId { kind, id } => write!(f, "invalid {kind} id: {id}"),
            DataError::LengthMismatch { expected, actual } => {
                write!(f, "column length mismatch: expected {expected} rows, got {actual}")
            }
            DataError::LevelMismatch { expected, actual } => {
                write!(f, "member at level {actual}, expected level {expected}")
            }
            DataError::Wal { op, message } => write!(f, "wal {op} failed: {message}"),
            DataError::Csv { line, column, message } => match column {
                Some(col) => write!(f, "csv error at line {line}, column {col:?}: {message}"),
                None => write!(f, "csv error at line {line}: {message}"),
            },
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_name() {
        let e = DataError::UnknownName { kind: "dimension", name: "foo".into() };
        assert_eq!(e.to_string(), "unknown dimension name: \"foo\"");
    }

    #[test]
    fn display_length_mismatch() {
        let e = DataError::LengthMismatch { expected: 3, actual: 5 };
        assert!(e.to_string().contains("expected 3"));
        assert!(e.to_string().contains("got 5"));
    }

    #[test]
    fn display_csv_with_and_without_column() {
        let with = DataError::Csv {
            line: 7,
            column: Some("start salary".into()),
            message: "bad value".into(),
        };
        assert_eq!(with.to_string(), "csv error at line 7, column \"start salary\": bad value");
        let without = DataError::Csv { line: 1, column: None, message: "missing header".into() };
        assert_eq!(without.to_string(), "csv error at line 1: missing header");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> =
            Box::new(DataError::InvalidId { kind: "member", id: 42 });
        assert!(e.to_string().contains("42"));
    }
}
