//! Live (append-capable) table handle.
//!
//! [`Table`] values are immutable — every scanner, cache and planner in the
//! stack relies on that to pin a consistent revision for the duration of a
//! query. [`LiveTable`] layers multi-version concurrency on top: readers
//! [`LiveTable::snapshot`] an `Arc<Table>` (a version pin — the table they
//! see cannot change mid-plan, and result layouts built against its
//! dictionaries stay in bounds), while writers build the next version via
//! [`Table::append_rows`] and swap it in atomically. Old pins drain
//! naturally as in-flight queries finish.

use std::sync::{Arc, RwLock};

use crate::error::DataError;
use crate::table::{IngestRow, Table, TableVersion};

/// Outcome of one append batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendReport {
    /// Rows appended by this batch.
    pub appended: usize,
    /// Version of the table after the append.
    pub version: TableVersion,
    /// Total rows after the append.
    pub total_rows: usize,
    /// Dictionary members created by this batch.
    pub new_members: usize,
}

/// Swap-on-append wrapper holding the current revision of a table.
#[derive(Debug)]
pub struct LiveTable {
    current: RwLock<Arc<Table>>,
}

impl LiveTable {
    /// Wrap a table as the live revision.
    pub fn new(table: Table) -> Self {
        LiveTable { current: RwLock::new(Arc::new(table)) }
    }

    /// Pin the current revision. The returned `Arc` stays valid (and
    /// unchanged) however many appends land afterwards; queries hold one
    /// pin from plan start to vocalization end.
    pub fn snapshot(&self) -> Arc<Table> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Version of the current revision.
    pub fn version(&self) -> TableVersion {
        self.snapshot().version()
    }

    /// Append a batch of rows, atomically publishing the next revision.
    /// Appenders serialize on the write lock; readers never block on the
    /// (off-lock) column copy, only on the final pointer swap. An empty
    /// batch is a no-op. Errors leave the current revision untouched.
    pub fn append_rows(&self, rows: &[IngestRow]) -> Result<AppendReport, DataError> {
        self.append_rows_with(rows, |_, _| Ok(()))
    }

    /// [`LiveTable::append_rows`] with a persistence hook: `persist` runs
    /// after the next revision is fully built and validated but *before*
    /// the pointer swap, still under the writer lock. The durability
    /// layer commits the batch to the write-ahead log here — if `persist`
    /// errors, the revision is discarded and readers never see it, so a
    /// batch is published iff it is logged. The hook is skipped for empty
    /// (no-op) batches.
    pub fn append_rows_with(
        &self,
        rows: &[IngestRow],
        persist: impl FnOnce(&AppendReport, &[IngestRow]) -> Result<(), DataError>,
    ) -> Result<AppendReport, DataError> {
        if rows.is_empty() {
            let cur = self.snapshot();
            return Ok(AppendReport {
                appended: 0,
                version: cur.version(),
                total_rows: cur.row_count(),
                new_members: 0,
            });
        }
        let mut cur = self.current.write().unwrap_or_else(|e| e.into_inner());
        let (next, new_members) = cur.append_rows(rows)?;
        let report = AppendReport {
            appended: rows.len(),
            version: next.version(),
            total_rows: next.row_count(),
            new_members,
        };
        persist(&report, rows)?;
        *cur = Arc::new(next);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::DimensionBuilder;
    use crate::schema::{MeasureUnit, Schema};
    use crate::table::{DimValue, TableBuilder};

    fn live_table() -> LiveTable {
        let mut b = DimensionBuilder::new("region", "in", "anywhere");
        let l = b.add_level("region");
        let ne = b.add_member(l, b.root(), "the North East");
        let mw = b.add_member(l, b.root(), "the Midwest");
        let dim = b.build();
        let schema = Schema::new("t", vec![dim], "value", MeasureUnit::Plain);
        let mut tb = TableBuilder::new(schema);
        for (m, v) in [(ne, 1.0), (mw, 2.0), (ne, 3.0), (mw, 4.0)] {
            tb.push_row(&[m], v).unwrap();
        }
        LiveTable::new(tb.build())
    }

    fn phrase_row(phrase: &str, v: f64) -> IngestRow {
        IngestRow { dims: vec![DimValue::Phrase(phrase.into())], values: vec![v] }
    }

    #[test]
    fn append_bumps_version_and_grows_rows() {
        let live = live_table();
        assert_eq!(live.version(), 0);
        let before = live.snapshot();
        let report = live
            .append_rows(&[phrase_row("the North East", 5.0), phrase_row("the Midwest", 6.0)])
            .unwrap();
        assert_eq!(report, AppendReport { appended: 2, version: 1, total_rows: 6, new_members: 0 });
        let after = live.snapshot();
        assert_eq!(after.version(), 1);
        assert_eq!(after.segments(), &[4, 2]);
        assert_eq!(after.value_at(5), 6.0);
        // The pinned old revision is untouched.
        assert_eq!(before.version(), 0);
        assert_eq!(before.row_count(), 4);
    }

    #[test]
    fn path_rows_extend_the_dictionary() {
        let live = live_table();
        let report = live
            .append_rows(&[IngestRow {
                dims: vec![DimValue::Path(vec!["the South".into()])],
                values: vec![7.0],
            }])
            .unwrap();
        assert_eq!(report.new_members, 1);
        let t = live.snapshot();
        let d = t.schema().dimension(crate::schema::DimId(0));
        let south = d.member_by_phrase("the South").unwrap();
        assert_eq!(t.member_at(crate::schema::DimId(0), 4), south);
    }

    #[test]
    fn bad_rows_leave_the_revision_untouched() {
        let live = live_table();
        let err = live.append_rows(&[phrase_row("Atlantis", 1.0)]).unwrap_err();
        assert!(matches!(err, DataError::UnknownName { .. }));
        assert_eq!(live.version(), 0);
        assert_eq!(live.snapshot().row_count(), 4);
        // Non-leaf phrases are rejected too.
        let err = live.append_rows(&[phrase_row("anywhere", 1.0)]).unwrap_err();
        assert!(matches!(err, DataError::LevelMismatch { .. }));
    }

    #[test]
    fn persist_failure_discards_the_revision() {
        let live = live_table();
        let err = live
            .append_rows_with(&[phrase_row("the North East", 9.0)], |report, rows| {
                assert_eq!(report.version, 1);
                assert_eq!(rows.len(), 1);
                Err(DataError::Wal { op: "append", message: "disk full".into() })
            })
            .unwrap_err();
        assert!(matches!(err, DataError::Wal { .. }));
        assert_eq!(live.version(), 0, "unlogged batch must never publish");
        assert_eq!(live.snapshot().row_count(), 4);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let live = live_table();
        let report = live.append_rows(&[]).unwrap();
        assert_eq!(report.version, 0);
        assert_eq!(live.snapshot().segments(), &[4]);
    }
}
