//! Dataset statistics (reproduces paper Table 11).

use crate::table::Table;

/// Summary statistics of one dataset, mirroring the columns of the paper's
/// Table 11 (dimensions, #rows, size).
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Dimension names, in schema order.
    pub dimensions: Vec<String>,
    /// Number of fact rows.
    pub rows: usize,
    /// Approximate in-memory size in bytes.
    pub bytes: usize,
}

impl DatasetStats {
    /// Compute statistics for a table.
    pub fn of(table: &Table) -> Self {
        DatasetStats {
            name: table.schema().name().to_string(),
            dimensions: table.schema().dimensions().iter().map(|d| d.name().to_string()).collect(),
            rows: table.row_count(),
            bytes: table.approx_bytes(),
        }
    }

    /// Human-readable size (e.g. `"36 KB"`, `"600 MB"`).
    pub fn size_display(&self) -> String {
        const KB: usize = 1024;
        const MB: usize = 1024 * KB;
        if self.bytes >= MB {
            format!("{} MB", self.bytes / MB)
        } else if self.bytes >= KB {
            format!("{} KB", self.bytes / KB)
        } else {
            format!("{} B", self.bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::salary::SalaryConfig;

    #[test]
    fn stats_of_salary_dataset() {
        let t = SalaryConfig::paper_scale().generate();
        let s = DatasetStats::of(&t);
        assert_eq!(s.name, "mid-career salary");
        assert_eq!(s.rows, 320);
        assert_eq!(s.dimensions, vec!["college location", "start salary"]);
        assert!(!s.size_display().is_empty());
    }

    #[test]
    fn size_display_units() {
        let mk = |bytes| DatasetStats { name: "x".into(), dimensions: vec![], rows: 0, bytes };
        assert_eq!(mk(10).size_display(), "10 B");
        assert_eq!(mk(4096).size_display(), "4 KB");
        assert_eq!(mk(3 * 1024 * 1024).size_display(), "3 MB");
    }
}
