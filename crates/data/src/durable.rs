//! Crash-safe wrapper around [`LiveTable`]: WAL commit before the
//! revision swap, periodic snapshot compaction, and startup recovery
//! (DESIGN.md §17).
//!
//! ## On-disk layout (inside `--data-dir`)
//!
//! ```text
//! wal.log              append-only log of batches since the snapshot
//! snapshot-<V>.snap    compacted log of every batch up to version V
//! clean                clean-shutdown marker (version + wal length)
//! *.tmp                in-flight snapshot/marker writes (deleted on boot)
//! ```
//!
//! A snapshot is *not* a serialized table — it is the same record format
//! as the WAL, produced by concatenating the previous snapshot's records
//! with the current WAL's (compaction is a byte-level copy). Replaying a
//! snapshot therefore recreates every batch in original order, which
//! reproduces the exact [`TableVersion`] sequence and dictionary-member
//! assignment order; engine caches keyed by version repair correctly
//! against a recovered table with no special cases.
//!
//! ## Recovery state machine
//!
//! ```text
//! boot ─▶ delete *.tmp
//!      ─▶ newest valid snapshot? ──replay──▶ version V
//!      ─▶ clean marker matches wal.log? ──yes──▶ trust framing (no CRC scan)
//!                                       └─no───▶ CRC-scan, truncate torn tail
//!      ─▶ replay WAL batches with version > current (idempotent skip ≤)
//!      ─▶ delete marker (now dirty) ─▶ open WAL for append ─▶ serve
//! ```
//!
//! The idempotent version check makes a crash *between* snapshot rename
//! and WAL truncation safe: the next boot replays the snapshot, then
//! skips the WAL records it already contains.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use voxolap_faults::{FaultInjector, FaultSite};

use crate::error::DataError;
use crate::live::{AppendReport, LiveTable};
use crate::table::{IngestRow, Table, TableVersion};
use crate::wal::{self, FsyncMode, Wal, MAGIC};

const WAL_FILE: &str = "wal.log";
const MARKER_FILE: &str = "clean";

/// Tuning for [`DurableTable::open`].
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// When the WAL fsyncs (see [`FsyncMode`]).
    pub fsync_mode: FsyncMode,
    /// Compact the WAL into a snapshot every this many batches
    /// (0 disables snapshots; the WAL then grows unbounded).
    pub snapshot_every_batches: u64,
    /// Fault injector whose `WalAppend`/`WalFsync`/`SnapshotWrite` sites
    /// fire inside the storage path.
    pub faults: Option<Arc<FaultInjector>>,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions { fsync_mode: FsyncMode::Batch, snapshot_every_batches: 32, faults: None }
    }
}

/// Monotonic storage counters, shared with the WAL writer.
#[derive(Debug, Default)]
pub struct DurabilityStats {
    /// Current WAL file length in bytes (gauge).
    pub wal_bytes: AtomicU64,
    /// Batches committed to the WAL since boot.
    pub wal_appends: AtomicU64,
    /// Successful fsyncs.
    pub fsyncs: AtomicU64,
    /// Failed fsyncs (each poisons the log — fsyncgate).
    pub fsync_failures: AtomicU64,
    /// Snapshot compactions completed.
    pub snapshots_written: AtomicU64,
    /// Snapshot compactions that failed (data stays safe in the WAL;
    /// retried once the next batch lands).
    pub snapshot_failures: AtomicU64,
}

/// Point-in-time copy of [`DurabilityStats`] plus recovery facts.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilitySnapshot {
    /// WAL fsync policy in force.
    pub fsync_mode: &'static str,
    /// Current WAL file length in bytes.
    pub wal_bytes: u64,
    /// Batches committed to the WAL since boot.
    pub wal_appends: u64,
    /// Successful fsyncs since boot.
    pub fsyncs: u64,
    /// Failed (poisoning) fsyncs since boot.
    pub fsync_failures: u64,
    /// Snapshot compactions completed since boot.
    pub snapshots_written: u64,
    /// Snapshot compactions that failed since boot.
    pub snapshot_failures: u64,
    /// Batches replayed during boot recovery (snapshot + WAL).
    pub replayed_batches: u64,
    /// Rows replayed during boot recovery.
    pub replayed_rows: u64,
    /// Torn tails truncated during boot recovery.
    pub torn_tail_truncations: u64,
    /// Whether the previous shutdown left a valid clean marker.
    pub clean_start: bool,
    /// Wall-clock milliseconds spent in boot recovery.
    pub recovery_ms: f64,
}

/// What startup recovery found and did.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Batches replayed from the snapshot file.
    pub snapshot_batches: u64,
    /// Batches replayed from the WAL suffix (after idempotent skips).
    pub replayed_batches: u64,
    /// Rows replayed in total (snapshot + WAL).
    pub replayed_rows: u64,
    /// Torn tails truncated (0 or 1 per file scanned).
    pub torn_tail_truncations: u64,
    /// Whether a valid clean-shutdown marker let recovery skip the
    /// CRC tail scan.
    pub clean_start: bool,
    /// Table version after recovery.
    pub version: TableVersion,
    /// Total rows after recovery.
    pub total_rows: usize,
    /// Wall-clock milliseconds spent recovering.
    pub recovery_ms: f64,
}

impl RecoveryReport {
    fn in_memory(version: TableVersion, total_rows: usize) -> Self {
        RecoveryReport {
            snapshot_batches: 0,
            replayed_batches: 0,
            replayed_rows: 0,
            torn_tail_truncations: 0,
            clean_start: true,
            version,
            total_rows,
            recovery_ms: 0.0,
        }
    }
}

/// Serialized WAL state: the open log plus compaction bookkeeping. One
/// mutex orders appends, compaction, and shutdown flush against each
/// other (readers never touch it).
#[derive(Debug)]
struct WalState {
    wal: Wal,
    /// Batches appended since the last completed snapshot.
    batches_since_snapshot: u64,
    /// Current snapshot file, if any.
    snapshot: Option<PathBuf>,
}

#[derive(Debug)]
struct Store {
    dir: PathBuf,
    state: Mutex<WalState>,
    stats: Arc<DurabilityStats>,
    fsync_mode: FsyncMode,
    snapshot_every: u64,
    faults: Option<Arc<FaultInjector>>,
    recovery: RecoveryReport,
}

/// A [`LiveTable`] with optional crash-safety. Built with
/// [`DurableTable::memory`] it is a zero-cost passthrough (today's
/// in-memory behavior, byte for byte); built with [`DurableTable::open`]
/// every acknowledged append is WAL-committed before it becomes visible.
#[derive(Debug)]
pub struct DurableTable {
    live: LiveTable,
    store: Option<Store>,
}

impl DurableTable {
    /// Purely in-memory table: appends never touch disk.
    pub fn memory(table: Table) -> DurableTable {
        DurableTable { live: LiveTable::new(table), store: None }
    }

    /// Open (or create) the durable store in `dir`, recovering any prior
    /// state on top of `seed`. `seed` must be the same seed table the
    /// store was first opened with — recovery replays logged batches onto
    /// it and verifies the version sequence lines up.
    pub fn open(
        seed: Table,
        dir: impl AsRef<Path>,
        options: DurabilityOptions,
    ) -> Result<(DurableTable, RecoveryReport), DataError> {
        let t0 = Instant::now();
        let dir = dir.as_ref().to_path_buf();
        let io = |op: &'static str| {
            move |e: std::io::Error| DataError::Wal { op, message: e.to_string() }
        };
        fs::create_dir_all(&dir).map_err(io("open"))?;

        let live = LiveTable::new(seed);
        let stats = Arc::new(DurabilityStats::default());
        let mut report = RecoveryReport::in_memory(live.version(), live.snapshot().row_count());
        report.clean_start = false;

        // 1. Sweep in-flight temp files from a crashed snapshot/marker write.
        for entry in fs::read_dir(&dir).map_err(io("recovery"))? {
            let path = entry.map_err(io("recovery"))?.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                fs::remove_file(&path).ok();
            }
        }

        // 2. Newest valid snapshot wins; unreadable ones are skipped (the
        //    WAL still has everything since the one before).
        let mut snapshot: Option<PathBuf> = None;
        for (path, _version) in snapshots_newest_first(&dir).map_err(io("recovery"))? {
            let read = wal::read_log(&path, true).map_err(io("recovery"))?;
            if read.torn || read.batches.is_empty() {
                continue;
            }
            replay(&live, read.batches, &mut report, true)?;
            snapshot = Some(path);
            break;
        }

        // 3. The WAL suffix. A clean marker matching the file lets us
        //    trust record framing without the CRC scan.
        let wal_path = dir.join(WAL_FILE);
        let marker_path = dir.join(MARKER_FILE);
        if wal_path.exists() {
            let marker = read_marker(&marker_path);
            let wal_len = fs::metadata(&wal_path).map_err(io("recovery"))?.len();
            let clean = marker.is_some_and(|(_, len)| len == wal_len);
            let read = wal::read_log(&wal_path, !clean).map_err(io("recovery"))?;
            if read.torn {
                // Truncate the torn (never-acknowledged) tail so the next
                // append starts from a valid record boundary. If even the
                // magic is gone, rewrite it.
                let f = OpenOptions::new().write(true).open(&wal_path).map_err(io("recovery"))?;
                if read.valid_len >= MAGIC.len() as u64 {
                    f.set_len(read.valid_len).map_err(io("recovery"))?;
                } else {
                    f.set_len(0).map_err(io("recovery"))?;
                    (&f).write_all(&MAGIC).map_err(io("recovery"))?;
                }
                f.sync_all().map_err(io("recovery"))?;
                report.torn_tail_truncations += 1;
            }
            report.clean_start = clean && !read.torn;
            replay(&live, read.batches, &mut report, false)?;
        } else {
            // Fresh directory: nothing to recover is a clean start.
            report.clean_start = !marker_path.exists() && snapshot.is_none();
        }

        // 4. Running ⇒ dirty: only a graceful shutdown rewrites the marker.
        fs::remove_file(&marker_path).ok();

        let version = live.version();
        report.version = version;
        report.total_rows = live.snapshot().row_count();
        let wal = Wal::open_at(
            &wal_path,
            options.fsync_mode,
            version,
            Arc::clone(&stats),
            options.faults.clone(),
        )?;
        report.recovery_ms = t0.elapsed().as_secs_f64() * 1e3;

        let store = Store {
            dir,
            state: Mutex::new(WalState {
                wal,
                batches_since_snapshot: report.replayed_batches,
                snapshot,
            }),
            stats,
            fsync_mode: options.fsync_mode,
            snapshot_every: options.snapshot_every_batches,
            faults: options.faults,
            recovery: report.clone(),
        };
        Ok((DurableTable { live, store: Some(store) }, report))
    }

    /// The wrapped live table (readers pin snapshots through it).
    pub fn live(&self) -> &LiveTable {
        &self.live
    }

    /// Pin the current revision (see [`LiveTable::snapshot`]).
    pub fn snapshot(&self) -> Arc<Table> {
        self.live.snapshot()
    }

    /// Version of the current revision.
    pub fn version(&self) -> TableVersion {
        self.live.version()
    }

    /// Whether appends are backed by a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.store.is_some()
    }

    /// Append a batch. In durable mode the batch is committed to the WAL
    /// (under the configured fsync policy) *before* the revision swap, so
    /// a success here means the batch survives a crash; any storage error
    /// leaves the in-memory revision untouched and unpublished.
    pub fn append_rows(&self, rows: &[IngestRow]) -> Result<AppendReport, DataError> {
        let Some(store) = &self.store else {
            return self.live.append_rows(rows);
        };
        let report = self.live.append_rows_with(rows, |report, rows| {
            let mut state = store.state.lock();
            state.wal.append_batch(report.version, rows)?;
            state.batches_since_snapshot += 1;
            Ok(())
        })?;
        if report.appended > 0 && store.snapshot_every > 0 {
            self.maybe_compact(store);
        }
        Ok(report)
    }

    /// Compact WAL into a snapshot if the interval elapsed. Failure is
    /// non-fatal: the WAL still holds every batch, and the next append
    /// retries. Runs outside the table's writer lock — only the WAL mutex
    /// is held, so readers and (brief) appenders queue behind the copy.
    fn maybe_compact(&self, store: &Store) {
        let mut state = store.state.lock();
        if state.batches_since_snapshot < store.snapshot_every {
            return;
        }
        let injected = store
            .faults
            .as_ref()
            .and_then(|f| f.roll(FaultSite::SnapshotWrite))
            .inspect(|f| f.stall())
            .is_some_and(|f| f.error);
        let result = if injected {
            Err(DataError::Wal { op: "snapshot", message: "injected snapshot fault".into() })
        } else {
            write_snapshot(&store.dir, &mut state)
        };
        match result {
            Ok(()) => {
                state.batches_since_snapshot = 0;
                store.stats.snapshots_written.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                store.stats.snapshot_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Force a compaction now regardless of the interval (tests, CLI).
    pub fn compact_now(&self) -> Result<(), DataError> {
        let Some(store) = &self.store else { return Ok(()) };
        let mut state = store.state.lock();
        write_snapshot(&store.dir, &mut state)?;
        state.batches_since_snapshot = 0;
        store.stats.snapshots_written.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Graceful shutdown: flush and fsync the WAL (whatever the mode),
    /// then write the clean-shutdown marker so the next boot can skip
    /// the CRC tail scan. In-memory mode is a no-op.
    pub fn shutdown_clean(&self) -> Result<(), DataError> {
        let Some(store) = &self.store else { return Ok(()) };
        let mut state = store.state.lock();
        state.wal.flush_and_sync()?;
        let marker = format!("version={} wal_len={}\n", state.wal.last_version(), state.wal.bytes());
        let io = |e: std::io::Error| DataError::Wal { op: "marker", message: e.to_string() };
        let tmp = store.dir.join("clean.tmp");
        let mut f = File::create(&tmp).map_err(io)?;
        f.write_all(marker.as_bytes()).map_err(io)?;
        f.sync_all().map_err(io)?;
        drop(f);
        fs::rename(&tmp, store.dir.join(MARKER_FILE)).map_err(io)?;
        Ok(())
    }

    /// What boot recovery found (None for in-memory tables).
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.store.as_ref().map(|s| &s.recovery)
    }

    /// Current storage counters (None for in-memory tables).
    pub fn stats(&self) -> Option<DurabilitySnapshot> {
        let store = self.store.as_ref()?;
        let s = &store.stats;
        let r = &store.recovery;
        Some(DurabilitySnapshot {
            fsync_mode: store.fsync_mode.name(),
            wal_bytes: s.wal_bytes.load(Ordering::Relaxed),
            wal_appends: s.wal_appends.load(Ordering::Relaxed),
            fsyncs: s.fsyncs.load(Ordering::Relaxed),
            fsync_failures: s.fsync_failures.load(Ordering::Relaxed),
            snapshots_written: s.snapshots_written.load(Ordering::Relaxed),
            snapshot_failures: s.snapshot_failures.load(Ordering::Relaxed),
            replayed_batches: r.snapshot_batches + r.replayed_batches,
            replayed_rows: r.replayed_rows,
            torn_tail_truncations: r.torn_tail_truncations,
            clean_start: r.clean_start,
            recovery_ms: r.recovery_ms,
        })
    }
}

/// Replay recovered batches onto the live table, skipping versions the
/// table already has (idempotence — replaying the same log twice is a
/// no-op, and a crash between snapshot rename and WAL truncation leaves
/// duplicates that are skipped here).
fn replay(
    live: &LiveTable,
    batches: Vec<wal::WalBatch>,
    report: &mut RecoveryReport,
    from_snapshot: bool,
) -> Result<(), DataError> {
    for batch in batches {
        if batch.version <= live.version() {
            continue;
        }
        let applied = live.append_rows(&batch.rows).map_err(|e| DataError::Wal {
            op: "recovery",
            message: format!("replaying batch for version {} failed: {e}", batch.version),
        })?;
        if applied.version != batch.version {
            return Err(DataError::Wal {
                op: "recovery",
                message: format!(
                    "log gap: replay produced version {}, log says {}",
                    applied.version, batch.version
                ),
            });
        }
        if from_snapshot {
            report.snapshot_batches += 1;
        } else {
            report.replayed_batches += 1;
        }
        report.replayed_rows += applied.appended as u64;
    }
    Ok(())
}

/// Enumerate `snapshot-<V>.snap` files, newest version first.
fn snapshots_newest_first(dir: &Path) -> std::io::Result<Vec<(PathBuf, TableVersion)>> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        let Some(version) = name
            .strip_prefix("snapshot-")
            .and_then(|rest| rest.strip_suffix(".snap"))
            .and_then(|v| v.parse::<TableVersion>().ok())
        else {
            continue;
        };
        found.push((path, version));
    }
    found.sort_by(|a, b| b.1.cmp(&a.1));
    Ok(found)
}

/// Parse the clean marker: `version=<V> wal_len=<N>`.
fn read_marker(path: &Path) -> Option<(TableVersion, u64)> {
    let mut text = String::new();
    File::open(path).ok()?.read_to_string(&mut text).ok()?;
    let mut version = None;
    let mut wal_len = None;
    for part in text.split_whitespace() {
        if let Some(v) = part.strip_prefix("version=") {
            version = v.parse().ok();
        } else if let Some(n) = part.strip_prefix("wal_len=") {
            wal_len = n.parse().ok();
        }
    }
    Some((version?, wal_len?))
}

/// Compact: new snapshot = old snapshot records + WAL records, copied
/// byte-for-byte (same framing), written tmp → fsync → rename, then the
/// WAL is truncated and the old snapshot deleted. A crash at any point
/// is safe: before the rename the tmp is swept on boot; between rename
/// and truncation the idempotent replay skips the duplicated batches.
fn write_snapshot(dir: &Path, state: &mut WalState) -> Result<(), DataError> {
    let io = |e: std::io::Error| DataError::Wal { op: "snapshot", message: e.to_string() };
    let version = state.wal.last_version();
    let tmp = dir.join(format!("snapshot-{version}.tmp"));
    let mut out = File::create(&tmp).map_err(io)?;
    out.write_all(&MAGIC).map_err(io)?;
    if let Some(prev) = &state.snapshot {
        copy_records(prev, &mut out).map_err(io)?;
    }
    copy_records(state.wal.path(), &mut out).map_err(io)?;
    out.sync_all().map_err(io)?;
    drop(out);
    let final_path = dir.join(format!("snapshot-{version}.snap"));
    fs::rename(&tmp, &final_path).map_err(io)?;
    // Make the rename itself durable before dropping the WAL bytes.
    if let Ok(d) = File::open(dir) {
        d.sync_all().ok();
    }
    state.wal.truncate_to_magic()?;
    if let Some(prev) = state.snapshot.take() {
        if prev != final_path {
            fs::remove_file(&prev).ok();
        }
    }
    state.snapshot = Some(final_path);
    Ok(())
}

/// Append every record byte of `src` (sans magic) to `out`.
fn copy_records(src: &Path, out: &mut File) -> std::io::Result<()> {
    let mut bytes = Vec::new();
    File::open(src)?.read_to_end(&mut bytes)?;
    if bytes.len() > MAGIC.len() {
        out.write_all(&bytes[MAGIC.len()..])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::DimensionBuilder;
    use crate::schema::{MeasureUnit, Schema};
    use crate::table::{DimValue, TableBuilder};

    fn seed_table() -> Table {
        let mut b = DimensionBuilder::new("region", "in", "anywhere");
        let l = b.add_level("region");
        let ne = b.add_member(l, b.root(), "the North East");
        let mw = b.add_member(l, b.root(), "the Midwest");
        let dim = b.build();
        let schema = Schema::new("t", vec![dim], "value", MeasureUnit::Plain);
        let mut tb = TableBuilder::new(schema);
        for (m, v) in [(ne, 1.0), (mw, 2.0)] {
            tb.push_row(&[m], v).unwrap();
        }
        tb.build()
    }

    fn row(phrase: &str, v: f64) -> IngestRow {
        IngestRow { dims: vec![DimValue::Phrase(phrase.into())], values: vec![v] }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("voxolap_{tag}_{}_{:?}", std::process::id(), std::thread::current().id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn memory_mode_is_passthrough() {
        let t = DurableTable::memory(seed_table());
        assert!(!t.is_durable());
        assert!(t.stats().is_none());
        let report = t.append_rows(&[row("the North East", 3.0)]).unwrap();
        assert_eq!(report.version, 1);
        t.shutdown_clean().unwrap();
    }

    #[test]
    fn reopen_recovers_acknowledged_batches() {
        let dir = tempdir("dur_reopen");
        let opts = DurabilityOptions { fsync_mode: FsyncMode::Always, ..Default::default() };
        let (t, rec) = DurableTable::open(seed_table(), &dir, opts.clone()).unwrap();
        assert_eq!(rec.version, 0);
        assert!(rec.clean_start, "fresh dir counts as clean");
        t.append_rows(&[row("the North East", 3.0)]).unwrap();
        t.append_rows(&[row("the Midwest", 4.0), row("the Midwest", 5.0)]).unwrap();
        drop(t); // hard crash: no clean marker

        let (t2, rec2) = DurableTable::open(seed_table(), &dir, opts).unwrap();
        assert_eq!(rec2.replayed_batches, 2);
        assert_eq!(rec2.replayed_rows, 3);
        assert_eq!(rec2.version, 2);
        assert!(!rec2.clean_start);
        assert_eq!(t2.version(), 2);
        assert_eq!(t2.snapshot().row_count(), 5);
        assert_eq!(t2.snapshot().segments(), &[2, 1, 2], "batch boundaries survive replay");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clean_shutdown_marker_marks_next_boot_clean() {
        let dir = tempdir("dur_clean");
        let opts = DurabilityOptions { fsync_mode: FsyncMode::Batch, ..Default::default() };
        let (t, _) = DurableTable::open(seed_table(), &dir, opts.clone()).unwrap();
        t.append_rows(&[row("the North East", 3.0)]).unwrap();
        t.shutdown_clean().unwrap();
        drop(t);
        assert!(dir.join(MARKER_FILE).exists());

        let (t2, rec) = DurableTable::open(seed_table(), &dir, opts).unwrap();
        assert!(rec.clean_start, "marker lets recovery skip the tail scan");
        assert_eq!(rec.replayed_batches, 1);
        assert_eq!(t2.version(), 1);
        assert!(!dir.join(MARKER_FILE).exists(), "running process is dirty");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_compaction_truncates_the_wal_and_survives_reopen() {
        let dir = tempdir("dur_compact");
        let opts = DurabilityOptions {
            fsync_mode: FsyncMode::Off,
            snapshot_every_batches: 3,
            faults: None,
        };
        let (t, _) = DurableTable::open(seed_table(), &dir, opts.clone()).unwrap();
        for i in 0..7 {
            t.append_rows(&[row("the North East", i as f64)]).unwrap();
        }
        let stats = t.stats().unwrap();
        assert_eq!(stats.snapshots_written, 2, "compactions at batches 3 and 6");
        assert!(dir.join("snapshot-6.snap").exists());
        assert!(!dir.join("snapshot-3.snap").exists(), "old snapshot deleted");
        assert_eq!(stats.wal_appends, 7);
        drop(t);

        let (t2, rec) = DurableTable::open(seed_table(), &dir, opts).unwrap();
        assert_eq!(rec.snapshot_batches, 6);
        assert_eq!(rec.replayed_batches, 1, "wal holds the post-snapshot suffix");
        assert_eq!(t2.version(), 7);
        assert_eq!(t2.snapshot().row_count(), 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_failure_leaves_revision_unpublished() {
        use voxolap_faults::{FaultPlan, SiteSchedule};
        let dir = tempdir("dur_walfail");
        let plan = FaultPlan::new(9).with_site(FaultSite::WalAppend, SiteSchedule::error(1.0));
        let opts = DurabilityOptions {
            fsync_mode: FsyncMode::Off,
            snapshot_every_batches: 0,
            faults: Some(Arc::new(FaultInjector::new(plan))),
        };
        let (t, _) = DurableTable::open(seed_table(), &dir, opts).unwrap();
        let err = t.append_rows(&[row("the North East", 3.0)]).unwrap_err();
        assert!(matches!(err, DataError::Wal { op: "append", .. }), "{err}");
        assert_eq!(t.version(), 0, "failed WAL commit must not publish");
        assert_eq!(t.snapshot().row_count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_failure_is_nonfatal_and_retried() {
        use voxolap_faults::{FaultPlan, SiteSchedule};
        let dir = tempdir("dur_snapfail");
        // Roughly half the snapshot attempts fail; ingest must never fail
        // and the data must always recover.
        let plan = FaultPlan::new(5).with_site(FaultSite::SnapshotWrite, SiteSchedule::error(0.5));
        let opts = DurabilityOptions {
            fsync_mode: FsyncMode::Off,
            snapshot_every_batches: 2,
            faults: Some(Arc::new(FaultInjector::new(plan))),
        };
        let (t, _) = DurableTable::open(seed_table(), &dir, opts.clone()).unwrap();
        for i in 0..10 {
            t.append_rows(&[row("the Midwest", i as f64)]).unwrap();
        }
        let stats = t.stats().unwrap();
        assert!(stats.snapshot_failures > 0, "seed 5 should fail at least one snapshot");
        drop(t);
        let (t2, _) =
            DurableTable::open(seed_table(), &dir, DurabilityOptions::default()).unwrap();
        assert_eq!(t2.version(), 10);
        assert_eq!(t2.snapshot().row_count(), 12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replaying_the_same_log_twice_is_idempotent() {
        let dir = tempdir("dur_idem");
        let opts = DurabilityOptions { fsync_mode: FsyncMode::Off, ..Default::default() };
        let (t, _) = DurableTable::open(seed_table(), &dir, opts.clone()).unwrap();
        t.append_rows(&[row("the North East", 1.5)]).unwrap();
        t.append_rows(&[row("the Midwest", 2.5)]).unwrap();
        drop(t);
        // Duplicate every WAL record (simulates crash between snapshot
        // rename and WAL truncation: same batches present twice).
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        let mut doubled = bytes.clone();
        doubled.extend_from_slice(&bytes[MAGIC.len()..]);
        std::fs::write(&wal_path, &doubled).unwrap();

        let (t2, rec) = DurableTable::open(seed_table(), &dir, opts).unwrap();
        assert_eq!(rec.replayed_batches, 2, "duplicates skipped by version");
        assert_eq!(t2.version(), 2);
        assert_eq!(t2.snapshot().row_count(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
