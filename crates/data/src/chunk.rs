//! Chunked scan orders and morsel-driven work sharing.
//!
//! The paper's estimators (Algorithm 3) require that the rows consumed by
//! the sampling cache at any point form a uniform random sample of the
//! table. The original implementation guaranteed this with one global
//! shuffled permutation (`Vec<u32>`, 4 bytes per row) that every scanner
//! random-accessed — correct, but a cache-miss generator at paper scale
//! (5.3M+ rows) and a scaling bottleneck since all threads stride through
//! the same memory stream.
//!
//! This module replaces it with a two-level seeded scheme:
//!
//! 1. **Chunk level** — rows are grouped into fixed-size chunks of
//!    [`CHUNK_ROWS`] contiguous rows and a seeded Fisher–Yates shuffle
//!    permutes the *chunk ids* (a few hundred entries even at 50M rows).
//! 2. **Row level** — inside a chunk, rows are visited through a seeded
//!    bijective index mapper ([`InChunkPerm`]) generated on the fly, so no
//!    per-row permutation vector is ever materialized and all accesses stay
//!    within one chunk's working set (which fits in L2).
//!
//! **Uniformity argument.** A scan prefix of `k` rows consists of some
//! fully-consumed chunks (in seeded chunk order) plus a prefix of the
//! current chunk's in-chunk permutation. For a row `r` in a chunk of size
//! `s` out of `n` equal chunks, the chunk's scan position `c` is uniform on
//! `{0..n-1}` and `r`'s in-chunk rank `j` is uniform on `{0..s-1}`,
//! independently; hence `P(r in prefix) = P(c·s + j < k) = k/(n·s) = k/N`
//! — exactly the inclusion probability of a uniform prefix, so the
//! `e = N · seen/read` estimators stay unbiased. A shorter tail chunk
//! perturbs this by at most `chunk_size/N` in the inclusion probabilities;
//! at paper scale the deviation is below 1.3% and vanishes as rows grow
//! (see DESIGN.md §13 for the full argument and the variance caveat).
//!
//! **Morsel work stealing.** Parallel scanners share a [`MorselPool`]: an
//! atomic counter over the permuted chunk order from which each worker
//! claims whole chunk positions ("morsels"). Workers then stream their
//! morsel privately — no shared memory stream, no per-row coordination —
//! and publish per-position progress so a stopped scan can be snapshotted
//! and later resumed by any number of workers.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Rows per chunk: 64K rows keep one morsel's working set (narrow
/// dictionary columns plus one `f64` measure column) L2-resident.
pub const CHUNK_ROWS: usize = 1 << 16;

/// SplitMix64 finalizer — used to derive independent per-chunk keys from
/// one scan seed.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded bijection on `[0, len)` computed on the fly (no materialized
/// index vector).
///
/// Construction: three rounds of invertible mixing (xor with a key, odd
/// multiplication modulo a power of two, xorshift) permute the next
/// power-of-two domain `[0, 2^bits)`; cycle-walking (re-applying the
/// rounds until the value lands below `len`) restricts that permutation to
/// a bijection on `[0, len)`. Each step is invertible, so the composition
/// is a permutation; cycle-walking of a permutation is the classic
/// domain-restriction trick and terminates because every orbit through a
/// start below `len` re-enters `[0, len)` (at the latest back at the
/// start). Expected walk length is below 2 applications.
#[derive(Debug, Clone, Copy)]
pub struct InChunkPerm {
    len: u32,
    mask: u32,
    shift: u32,
    keys: [u32; 3],
    muls: [u32; 3],
    identity: bool,
}

impl InChunkPerm {
    /// A seeded permutation of `[0, len)`; `key` should already be
    /// well-mixed (see [`ScanOrder::perm`]).
    pub fn new(len: u32, key: u64) -> Self {
        assert!(len > 0, "empty permutation domain");
        let bits = 32 - (len.max(2) - 1).leading_zeros();
        let mask = if bits >= 32 { u32::MAX } else { (1u32 << bits) - 1 };
        let mut k = key;
        let mut keys = [0u32; 3];
        let mut muls = [0u32; 3];
        for r in 0..3 {
            k = splitmix64(k);
            keys[r] = (k as u32) & mask;
            muls[r] = ((k >> 32) as u32) | 1;
        }
        InChunkPerm { len, mask, shift: (bits / 2).max(1), keys, muls, identity: false }
    }

    /// The identity mapping on `[0, len)` (storage-order scans).
    pub fn identity(len: u32) -> Self {
        InChunkPerm { len, mask: 0, shift: 1, keys: [0; 3], muls: [1; 3], identity: true }
    }

    /// Domain size.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// `true` iff the domain is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Map in-chunk scan rank `i` to the in-chunk row index it visits.
    #[inline]
    pub fn apply(&self, i: u32) -> u32 {
        debug_assert!(i < self.len);
        if self.identity {
            return i;
        }
        let mut x = i;
        loop {
            for r in 0..3 {
                x ^= self.keys[r];
                x = x.wrapping_mul(self.muls[r]) & self.mask;
                x ^= x >> self.shift;
            }
            if x < self.len {
                return x;
            }
        }
    }
}

/// One chunk of rows in a [`ScanOrder`]: where it starts, how many rows it
/// covers, and its stable chunk id (the in-chunk permutation key). With
/// append segments, chunk bases are no longer multiples of the chunk size —
/// a sealed partial tail chunk ends its segment wherever the append
/// happened — so the base is materialized per slot.
#[derive(Debug, Clone, Copy)]
struct Slot {
    base: usize,
    len: u32,
    id: u32,
}

/// The seeded two-level scan order over a table's rows: a shuffled
/// permutation of chunk slots plus a per-chunk [`InChunkPerm`].
///
/// An order covers one or more **segments** (the seed load plus one
/// segment per append batch). Each segment's chunks are shuffled among
/// themselves with a seed derived from (scan seed, segment index) and the
/// segments are concatenated, so the order of an appended table is the old
/// order verbatim followed by a seeded sub-order of the suffix: a scan
/// prefix of the old table plus a proportional prefix of the suffix is a
/// uniform sample of the grown table, and cached progress vectors stay
/// position-aligned (DESIGN.md §16).
#[derive(Debug, Clone)]
pub struct ScanOrder {
    rows: usize,
    chunk_size: usize,
    seed: u64,
    /// Permuted chunk slots; position `p` in the scan visits
    /// `slots[p]`.
    slots: Vec<Slot>,
    sequential: bool,
}

impl ScanOrder {
    /// Seeded order over `rows` rows with the default [`CHUNK_ROWS`].
    pub fn new(rows: usize, seed: u64) -> Self {
        Self::with_chunk_size(rows, seed, CHUNK_ROWS)
    }

    /// Seeded order with an explicit chunk size (exposed for property
    /// tests over arbitrary geometries).
    pub fn with_chunk_size(rows: usize, seed: u64, chunk_size: usize) -> Self {
        Self::segmented(&[rows], seed, chunk_size)
    }

    /// Seeded order over a segmented table: `segment_rows[s]` rows were
    /// appended in batch `s` (batch 0 is the seed load). Segment 0 is
    /// chunked and shuffled exactly as a single-segment order of the same
    /// row count, so appends never perturb the old-prefix permutation;
    /// each later segment starts a fresh chunk at its first row (the
    /// previous segment's partial tail chunk stays sealed) and is shuffled
    /// with its own derived seed.
    pub fn segmented(segment_rows: &[usize], seed: u64, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        let mut slots: Vec<Slot> = Vec::new();
        let mut base = 0usize;
        let mut next_id = 0u32;
        for (s, &seg_rows) in segment_rows.iter().enumerate() {
            let first = slots.len();
            let mut remaining = seg_rows;
            while remaining > 0 {
                let len = remaining.min(chunk_size);
                slots.push(Slot { base, len: len as u32, id: next_id });
                base += len;
                next_id += 1;
                remaining -= len;
            }
            let seg_seed = if s == 0 {
                splitmix64(seed)
            } else {
                splitmix64(splitmix64(seed).wrapping_add(s as u64))
            };
            slots[first..].shuffle(&mut StdRng::seed_from_u64(seg_seed));
        }
        ScanOrder { rows: base, chunk_size, seed, slots, sequential: false }
    }

    /// Storage order (identity at both levels).
    pub fn sequential(rows: usize) -> Self {
        let n_chunks = rows.div_ceil(CHUNK_ROWS);
        let slots = (0..n_chunks)
            .map(|c| Slot {
                base: c * CHUNK_ROWS,
                len: CHUNK_ROWS.min(rows - c * CHUNK_ROWS) as u32,
                id: c as u32,
            })
            .collect();
        ScanOrder { rows, chunk_size: CHUNK_ROWS, seed: 0, slots, sequential: true }
    }

    /// Total rows covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Rows per (non-sealed) chunk.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Number of chunk positions in the scan.
    pub fn n_chunks(&self) -> usize {
        self.slots.len()
    }

    /// Chunk id visited at scan position `pos`.
    pub fn chunk_id(&self, pos: usize) -> u32 {
        self.slots[pos].id
    }

    /// First global row of the chunk at scan position `pos`.
    pub fn chunk_base(&self, pos: usize) -> usize {
        self.slots[pos].base
    }

    /// Rows in the chunk at scan position `pos` (the chunk holding the
    /// final row of a segment may be shorter).
    pub fn chunk_len(&self, pos: usize) -> u32 {
        self.slots[pos].len
    }

    /// The in-chunk permutation for scan position `pos`, keyed by
    /// (seed, chunk id) so every chunk mixes independently. Chunk ids are
    /// global across segments, so a chunk keeps its permutation after
    /// appends.
    pub fn perm(&self, pos: usize) -> InChunkPerm {
        let slot = self.slots[pos];
        if self.sequential {
            return InChunkPerm::identity(slot.len);
        }
        InChunkPerm::new(slot.len, splitmix64(self.seed).wrapping_add(splitmix64(slot.id as u64)))
    }

    /// Global row index visited at (scan position, in-chunk rank) — the
    /// reference definition of the scan order, used by tests.
    pub fn row_at(&self, pos: usize, rank: u32) -> usize {
        self.chunk_base(pos) + self.perm(pos).apply(rank) as usize
    }

    /// Number of leading scan positions whose chunks cover exactly the
    /// first `rows` rows — because segments concatenate, these are the
    /// positions an order over the first `rows` rows (same seed, same
    /// segment boundaries) would visit, in the same order. `rows` must be
    /// a segment boundary of this order.
    ///
    /// Cache repair uses this to mark an old snapshot's coverage as
    /// consumed and scan only the appended suffix.
    pub fn prefix_positions(&self, rows: usize) -> usize {
        let mut covered = 0usize;
        let mut n = 0usize;
        while n < self.slots.len() && covered < rows {
            covered += self.slots[n].len as usize;
            n += 1;
        }
        assert_eq!(covered, rows, "rows is not a segment boundary of this order");
        n
    }

    /// Bytes held by the materialized chunk slots (the only materialized
    /// part of the order; in-chunk permutations are computed on the fly).
    pub fn approx_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Slot>()
    }
}

/// One claimed unit of scan work: a chunk position with the resume offset
/// to start from.
#[derive(Debug, Clone, Copy)]
pub struct Morsel {
    /// Scan position in the permuted chunk order.
    pub pos: usize,
    /// First global row of the chunk.
    pub base: usize,
    /// Rows in the chunk.
    pub len: u32,
    /// Next in-chunk scan rank to deliver (non-zero when resuming).
    pub off: u32,
    /// The chunk's seeded bijection.
    pub perm: InChunkPerm,
}

/// One progress watermark on its own cache line. Each position's owner
/// publishes progress concurrently with other owners; unpadded adjacent
/// `AtomicU32`s would share lines (16 per line — at 200K rows the whole
/// array is one line) and turn independent publishes into ping-pong.
#[derive(Debug)]
#[repr(align(64))]
struct Watermark(AtomicU32);

/// Shared work-stealing pool over a [`ScanOrder`].
///
/// Workers claim whole chunk positions through an atomic counter and
/// publish per-position progress as they stream, so (a) concurrent
/// scanners partition the order with zero overlap and no per-row
/// coordination, and (b) the consumed set at any stop — a prefix of the
/// permuted chunk order with a per-chunk rank watermark — can be
/// snapshotted and resumed by a later scan with any worker count.
#[derive(Debug)]
pub struct MorselPool {
    order: ScanOrder,
    /// Next unclaimed scan position.
    next: AtomicUsize,
    /// Rows consumed per scan position (in-chunk scan ranks `< progress`
    /// are done). Written by the position's owner, read at snapshot time.
    progress: Box<[Watermark]>,
}

impl MorselPool {
    /// A fresh pool over `order`.
    pub fn new(order: ScanOrder) -> Self {
        let progress = (0..order.n_chunks()).map(|_| Watermark(AtomicU32::new(0))).collect();
        MorselPool { order, next: AtomicUsize::new(0), progress }
    }

    /// The scan order this pool distributes.
    pub fn order(&self) -> &ScanOrder {
        &self.order
    }

    /// Seed consumption state from an earlier scan's snapshot (per-position
    /// progress, aligned with the permuted chunk order). Must be called
    /// before any claims; claimed positions skip their recorded prefix.
    pub fn resume(&self, progress: &[u32]) {
        assert_eq!(self.next.load(Ordering::Relaxed), 0, "resume before any claims");
        assert!(progress.len() <= self.progress.len(), "snapshot from a different geometry");
        for (slot, &p) in self.progress.iter().zip(progress) {
            slot.0.store(p, Ordering::Relaxed);
        }
    }

    /// Claim the next morsel with unconsumed rows, or `None` when the
    /// order is fully claimed.
    pub fn claim(&self) -> Option<Morsel> {
        loop {
            let pos = self.next.fetch_add(1, Ordering::Relaxed);
            if pos >= self.order.n_chunks() {
                return None;
            }
            let len = self.order.chunk_len(pos);
            let done = self.progress[pos].0.load(Ordering::Relaxed);
            if done < len {
                return Some(Morsel {
                    pos,
                    base: self.order.chunk_base(pos),
                    len,
                    off: done,
                    perm: self.order.perm(pos),
                });
            }
        }
    }

    /// Publish progress for a claimed position (`done` rows consumed).
    #[inline]
    pub fn record(&self, pos: usize, done: u32) {
        self.progress[pos].0.store(done, Ordering::Release);
    }

    /// Per-position progress of every claimed position, trailing zeros
    /// trimmed — the snapshot format [`MorselPool::resume`] accepts.
    pub fn progress_vec(&self) -> Vec<u32> {
        let claimed = self.next.load(Ordering::Acquire).min(self.order.n_chunks());
        let mut v: Vec<u32> =
            self.progress[..claimed].iter().map(|p| p.0.load(Ordering::Acquire)).collect();
        while v.last() == Some(&0) {
            v.pop();
        }
        v
    }

    /// Total rows consumed across all positions.
    pub fn rows_consumed(&self) -> u64 {
        self.progress.iter().map(|p| p.0.load(Ordering::Acquire) as u64).sum()
    }

    /// Bytes held by the pool (chunk permutation + progress watermarks).
    pub fn approx_bytes(&self) -> usize {
        self.order.approx_bytes() + self.progress.len() * std::mem::size_of::<Watermark>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn in_chunk_perm_is_a_bijection() {
        let mut gen = StdRng::seed_from_u64(0xc0de);
        for case in 0..64 {
            let len = if case < 8 { case + 1 } else { gen.gen_range(1u32..10_000) };
            let perm = InChunkPerm::new(len, gen.gen());
            let mut seen = vec![false; len as usize];
            for i in 0..len {
                let j = perm.apply(i) as usize;
                assert!(!seen[j], "len={len}: rank collision at {j}");
                seen[j] = true;
            }
            assert!(seen.iter().all(|&s| s), "len={len}: not surjective");
        }
    }

    #[test]
    fn two_level_order_visits_every_row_exactly_once() {
        // Property (a): arbitrary (rows, chunk_size, seed) geometries.
        let mut gen = StdRng::seed_from_u64(0x5ca1e);
        for _ in 0..64 {
            let rows = gen.gen_range(1usize..5_000);
            let chunk_size = gen.gen_range(1usize..1_200);
            let order = ScanOrder::with_chunk_size(rows, gen.gen(), chunk_size);
            let mut seen = vec![false; rows];
            for pos in 0..order.n_chunks() {
                for rank in 0..order.chunk_len(pos) {
                    let r = order.row_at(pos, rank);
                    assert!(!seen[r], "row {r} visited twice");
                    seen[r] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "rows={rows} chunk={chunk_size}: rows missed");
        }
    }

    #[test]
    fn segmented_order_keeps_the_old_prefix_stable() {
        // The order of the grown table must start with the old order
        // verbatim — cached progress vectors stay position-aligned.
        let mut gen = StdRng::seed_from_u64(0xadd);
        for _ in 0..32 {
            let n0 = gen.gen_range(1usize..3_000);
            let n1 = gen.gen_range(1usize..1_500);
            let chunk = gen.gen_range(1usize..700);
            let seed = gen.gen();
            let old = ScanOrder::segmented(&[n0], seed, chunk);
            let grown = ScanOrder::segmented(&[n0, n1], seed, chunk);
            assert_eq!(grown.rows(), n0 + n1);
            assert_eq!(grown.prefix_positions(n0), old.n_chunks());
            for pos in 0..old.n_chunks() {
                assert_eq!(grown.chunk_id(pos), old.chunk_id(pos));
                assert_eq!(grown.chunk_base(pos), old.chunk_base(pos));
                assert_eq!(grown.chunk_len(pos), old.chunk_len(pos));
                for rank in 0..old.chunk_len(pos) {
                    assert_eq!(grown.row_at(pos, rank), old.row_at(pos, rank));
                }
            }
        }
    }

    #[test]
    fn segmented_order_visits_every_row_exactly_once() {
        let mut gen = StdRng::seed_from_u64(0x5e9);
        for _ in 0..32 {
            let n_segs = gen.gen_range(2usize..5);
            let segs: Vec<usize> = (0..n_segs).map(|_| gen.gen_range(1usize..1_200)).collect();
            let chunk = gen.gen_range(1usize..500);
            let order = ScanOrder::segmented(&segs, gen.gen(), chunk);
            let rows: usize = segs.iter().sum();
            let mut seen = vec![false; rows];
            for pos in 0..order.n_chunks() {
                for rank in 0..order.chunk_len(pos) {
                    let r = order.row_at(pos, rank);
                    assert!(!seen[r], "row {r} visited twice");
                    seen[r] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "segs={segs:?} chunk={chunk}: rows missed");
        }
    }

    #[test]
    fn single_segment_order_matches_with_chunk_size_exactly() {
        // Appends disabled == byte-identical scan behavior to main.
        for seed in [0u64, 7, 0xdead_beef] {
            let a = ScanOrder::with_chunk_size(10_000, seed, 256);
            let b = ScanOrder::segmented(&[10_000], seed, 256);
            for pos in 0..a.n_chunks() {
                assert_eq!(a.chunk_id(pos), b.chunk_id(pos));
                assert_eq!(a.chunk_base(pos), b.chunk_base(pos));
                assert_eq!(a.chunk_len(pos), b.chunk_len(pos));
            }
        }
    }

    #[test]
    #[should_panic(expected = "segment boundary")]
    fn prefix_positions_rejects_non_boundaries() {
        let order = ScanOrder::segmented(&[100, 50], 3, 10);
        order.prefix_positions(95);
    }

    #[test]
    fn scan_order_is_deterministic_per_seed() {
        let a = ScanOrder::with_chunk_size(10_000, 7, 256);
        let b = ScanOrder::with_chunk_size(10_000, 7, 256);
        let c = ScanOrder::with_chunk_size(10_000, 8, 256);
        let rows = |o: &ScanOrder| {
            (0..o.n_chunks())
                .flat_map(|p| (0..o.chunk_len(p)).map(move |r| o.row_at(p, r)))
                .collect::<Vec<_>>()
        };
        assert_eq!(rows(&a), rows(&b), "same seed, same order");
        assert_ne!(rows(&a), rows(&c), "different seed, different order");
    }

    #[test]
    fn sequential_order_is_identity() {
        let order = ScanOrder::sequential(CHUNK_ROWS + 17);
        let mut expect = 0usize;
        for pos in 0..order.n_chunks() {
            for rank in 0..order.chunk_len(pos) {
                assert_eq!(order.row_at(pos, rank), expect);
                expect += 1;
            }
        }
        assert_eq!(expect, CHUNK_ROWS + 17);
    }

    #[test]
    fn pool_resume_skips_recorded_prefix() {
        let pool = MorselPool::new(ScanOrder::with_chunk_size(100, 3, 10));
        // A donor consumed 3 full positions and 4 rows of the fourth.
        pool.resume(&[10, 10, 10, 4]);
        assert_eq!(pool.rows_consumed(), 34);
        let m = pool.claim().unwrap();
        assert_eq!((m.pos, m.off), (3, 4), "resumes mid-chunk");
        let m = pool.claim().unwrap();
        assert_eq!((m.pos, m.off), (4, 0));
    }

    #[test]
    fn progress_vec_round_trips_through_resume() {
        let pool = MorselPool::new(ScanOrder::with_chunk_size(100, 3, 10));
        while let Some(m) = pool.claim() {
            // Consume half of each morsel.
            pool.record(m.pos, m.len / 2);
            if m.pos >= 4 {
                break;
            }
        }
        let snap = pool.progress_vec();
        let resumed = MorselPool::new(ScanOrder::with_chunk_size(100, 3, 10));
        resumed.resume(&snap);
        assert_eq!(resumed.rows_consumed(), pool.rows_consumed());
    }

    #[test]
    fn concurrent_claims_partition_the_order() {
        // Property (b): 8 scanners, zero overlap, full coverage.
        let order = ScanOrder::with_chunk_size(50_000, 11, 64);
        let pool = MorselPool::new(order);
        let rows_per_worker: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        let mut mine = Vec::new();
                        while let Some(m) = pool.claim() {
                            for rank in m.off..m.len {
                                mine.push(m.base + m.perm.apply(rank) as usize);
                            }
                            pool.record(m.pos, m.len);
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut seen = vec![false; 50_000];
        for rows in &rows_per_worker {
            for &r in rows {
                assert!(!seen[r], "row {r} claimed by two workers");
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "unclaimed rows remain");
        assert_eq!(pool.rows_consumed(), 50_000);
    }
}
