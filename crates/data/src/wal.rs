//! Checksummed, length-prefixed write-ahead log for live-table appends
//! (DESIGN.md §17).
//!
//! Every acknowledged ingest batch is committed here *before* the
//! in-memory revision swap, so a crash can lose at most batches the
//! server never acknowledged. The format is deliberately dumb:
//!
//! ```text
//! file   := magic record*
//! magic  := "VOXWAL01"                          (8 bytes)
//! record := len:u32le crc:u32le payload         (crc32-IEEE over payload)
//! payload:= version:u64le nrows:u32le row*
//! row    := ndims:u16le dim* nvals:u16le f64le*
//! dim    := 0x00 str | 0x01 nsteps:u16le str*   (phrase | path)
//! str    := len:u32le utf8
//! ```
//!
//! Snapshot files reuse the exact same framing (a snapshot *is* a
//! compacted log), so one reader and one torn-tail rule serve both. A
//! record is valid iff its length prefix fits in the file and its CRC
//! matches; the first invalid record marks the torn tail and everything
//! before it is the recoverable prefix — always a whole number of
//! batches.
//!
//! ## Fsync policy
//!
//! [`FsyncMode`] picks the durability/throughput trade: `Always` syncs
//! after every batch, `Batch` group-commits (one sync per
//! [`GROUP_COMMIT_BATCHES`] appends, plus on graceful shutdown), `Off`
//! never syncs (page cache only — still crash-consistent by CRC, but a
//! power cut may drop acknowledged tails). A *failed* fsync follows the
//! fsyncgate rule: the write may be silently gone from the page cache,
//! so the log is poisoned — every later append fails until the process
//! restarts and recovers from disk. Retrying would re-acknowledge
//! possibly-lost pages.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use voxolap_faults::{FaultInjector, FaultSite};

use crate::durable::DurabilityStats;
use crate::error::DataError;
use crate::table::{DimValue, IngestRow, TableVersion};

/// Leading file magic of WAL and snapshot files.
pub const MAGIC: [u8; 8] = *b"VOXWAL01";

/// Appends per fsync under [`FsyncMode::Batch`] group commit.
pub const GROUP_COMMIT_BATCHES: u64 = 8;

/// Sanity cap on a single record's payload (a batch of this size would
/// have been rejected far upstream); anything larger is a torn length
/// prefix, not a real record.
const MAX_RECORD_BYTES: u32 = 1 << 30;

/// When the write-ahead log calls `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncMode {
    /// Sync after every batch: an acknowledged batch survives power loss.
    Always,
    /// Group commit: sync every [`GROUP_COMMIT_BATCHES`] appends and on
    /// graceful shutdown. An OS crash may drop the last unsynced group.
    Batch,
    /// Never sync (page cache only); a process crash loses nothing, a
    /// power cut may lose acknowledged tails.
    Off,
}

impl FsyncMode {
    /// Parse a `--fsync-mode` value.
    pub fn parse(s: &str) -> Result<FsyncMode, String> {
        match s {
            "always" => Ok(FsyncMode::Always),
            "batch" => Ok(FsyncMode::Batch),
            "off" => Ok(FsyncMode::Off),
            other => Err(format!("unknown fsync mode {other:?} (want always|batch|off)")),
        }
    }

    /// Stable wire name (stamped into `/stats` and BENCH headers).
    pub fn name(self) -> &'static str {
        match self {
            FsyncMode::Always => "always",
            FsyncMode::Batch => "batch",
            FsyncMode::Off => "off",
        }
    }
}

/// One decoded log record: the batch that produced `version`.
#[derive(Debug, Clone, PartialEq)]
pub struct WalBatch {
    /// Table version this batch produced when first applied.
    pub version: TableVersion,
    /// The rows, exactly as ingested (paths preserved, so replay onto a
    /// fresh seed recreates dictionary members in the original order).
    pub rows: Vec<IngestRow>,
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven; no external crates by workspace policy.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Payload encoding.

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encode one batch into a record payload.
pub(crate) fn encode_batch(version: TableVersion, rows: &[IngestRow]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 * rows.len().max(1));
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for row in rows {
        out.extend_from_slice(&(row.dims.len() as u16).to_le_bytes());
        for dim in &row.dims {
            match dim {
                DimValue::Phrase(p) => {
                    out.push(0);
                    put_str(&mut out, p);
                }
                DimValue::Path(steps) => {
                    out.push(1);
                    out.extend_from_slice(&(steps.len() as u16).to_le_bytes());
                    for step in steps {
                        put_str(&mut out, step);
                    }
                }
            }
        }
        out.extend_from_slice(&(row.values.len() as u16).to_le_bytes());
        for v in &row.values {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    out
}

/// Cursor over a payload during decode; every read is bounds-checked so a
/// corrupt record surfaces as an error, never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(format!("record truncated at byte {}", self.pos));
        };
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "non-UTF-8 string in record".to_string())
    }
}

/// Decode one record payload back into a batch.
pub(crate) fn decode_batch(payload: &[u8]) -> Result<WalBatch, String> {
    let mut c = Cursor { buf: payload, pos: 0 };
    let version = c.u64()?;
    let nrows = c.u32()? as usize;
    let mut rows = Vec::with_capacity(nrows.min(1 << 20));
    for _ in 0..nrows {
        let ndims = c.u16()? as usize;
        let mut dims = Vec::with_capacity(ndims.min(256));
        for _ in 0..ndims {
            match c.u8()? {
                0 => dims.push(DimValue::Phrase(c.str()?)),
                1 => {
                    let nsteps = c.u16()? as usize;
                    let mut steps = Vec::with_capacity(nsteps.min(256));
                    for _ in 0..nsteps {
                        steps.push(c.str()?);
                    }
                    dims.push(DimValue::Path(steps));
                }
                tag => return Err(format!("unknown dim tag {tag}")),
            }
        }
        let nvals = c.u16()? as usize;
        let mut values = Vec::with_capacity(nvals.min(256));
        for _ in 0..nvals {
            values.push(f64::from_bits(c.u64()?));
        }
        rows.push(IngestRow { dims, values });
    }
    if c.pos != payload.len() {
        return Err(format!("{} trailing bytes after batch", payload.len() - c.pos));
    }
    Ok(WalBatch { version, rows })
}

// ---------------------------------------------------------------------------
// Log reading (shared by WAL and snapshot files).

/// Result of scanning a log file for its valid record prefix.
#[derive(Debug)]
pub(crate) struct LogRead {
    /// Decoded batches of the valid prefix, in file order.
    pub batches: Vec<WalBatch>,
    /// Bytes of the valid prefix (magic included); the torn-tail
    /// truncation point.
    pub valid_len: u64,
    /// Whether bytes past `valid_len` exist (a torn tail).
    pub torn: bool,
}

/// Scan `path` for its valid prefix of whole records. With `verify`
/// unset (a marker-attested clean file) checksums are skipped — framing
/// errors still stop the scan. A missing magic makes the whole file
/// invalid (`valid_len` 0).
pub(crate) fn read_log(path: &Path, verify: bool) -> std::io::Result<LogRead> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let file_len = bytes.len() as u64;
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return Ok(LogRead { batches: Vec::new(), valid_len: 0, torn: file_len > 0 });
    }
    let mut batches = Vec::new();
    let mut pos = MAGIC.len();
    loop {
        let rest = bytes.len() - pos;
        if rest == 0 {
            return Ok(LogRead { batches, valid_len: pos as u64, torn: false });
        }
        let torn = |batches: Vec<WalBatch>, pos: usize| {
            Ok(LogRead { batches, valid_len: pos as u64, torn: true })
        };
        if rest < 8 {
            return torn(batches, pos);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD_BYTES || rest - 8 < len as usize {
            return torn(batches, pos);
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        if verify && crc32(payload) != crc {
            return torn(batches, pos);
        }
        match decode_batch(payload) {
            Ok(batch) => batches.push(batch),
            Err(_) => return torn(batches, pos),
        }
        pos += 8 + len as usize;
    }
}

// ---------------------------------------------------------------------------
// The appendable log.

/// An open write-ahead log positioned at its end.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    mode: FsyncMode,
    /// Current file length (magic included).
    bytes: u64,
    /// Last version appended (or recovered); snapshot naming uses it.
    last_version: TableVersion,
    /// Appends since the last fsync (group-commit trigger).
    unsynced: u64,
    /// Set by a failed fsync (fsyncgate): the log refuses all further
    /// writes until the process restarts and recovers from disk.
    poisoned: bool,
    stats: Arc<DurabilityStats>,
    faults: Option<Arc<FaultInjector>>,
}

impl Wal {
    /// Open `path` for appending, creating it (with magic) if missing.
    /// The caller must have truncated any torn tail first; `bytes` and
    /// `last_version` describe the recovered state.
    pub(crate) fn open_at(
        path: &Path,
        mode: FsyncMode,
        last_version: TableVersion,
        stats: Arc<DurabilityStats>,
        faults: Option<Arc<FaultInjector>>,
    ) -> Result<Wal, DataError> {
        let io = |e: std::io::Error| DataError::Wal { op: "open", message: e.to_string() };
        let mut file =
            OpenOptions::new().create(true).read(true).write(true).open(path).map_err(io)?;
        let len = file.metadata().map_err(io)?.len();
        let bytes = if len < MAGIC.len() as u64 {
            file.set_len(0).map_err(io)?;
            file.seek(SeekFrom::Start(0)).map_err(io)?;
            file.write_all(&MAGIC).map_err(io)?;
            file.sync_all().map_err(io)?;
            MAGIC.len() as u64
        } else {
            file.seek(SeekFrom::End(0)).map_err(io)?;
            len
        };
        stats.wal_bytes.store(bytes, Ordering::Relaxed);
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            mode,
            bytes,
            last_version,
            unsynced: 0,
            poisoned: false,
            stats,
            faults,
        })
    }

    /// Current file length in bytes (magic included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Last version committed to (or recovered from) this log.
    pub fn last_version(&self) -> TableVersion {
        self.last_version
    }

    /// Whether a failed fsync has poisoned the log (fsyncgate).
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    fn roll_error(&self, site: FaultSite) -> Option<String> {
        let fault = self.faults.as_ref()?.roll(site)?;
        fault.stall();
        fault.error.then(|| format!("injected {} fault (token {:#x})", site.name(), fault.token))
    }

    /// Commit one batch: write the record, then apply the fsync policy.
    /// On any failure the batch is *not* durable and the caller must not
    /// publish it; an fsync failure additionally poisons the log.
    pub(crate) fn append_batch(
        &mut self,
        version: TableVersion,
        rows: &[IngestRow],
    ) -> Result<(), DataError> {
        if self.poisoned {
            return Err(DataError::Wal {
                op: "append",
                message: "log poisoned by an earlier fsync failure; restart to recover".into(),
            });
        }
        if let Some(message) = self.roll_error(FaultSite::WalAppend) {
            return Err(DataError::Wal { op: "append", message });
        }
        let payload = encode_batch(version, rows);
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        if let Err(e) = self.file.write_all(&record) {
            // A short write leaves a torn (unacknowledged) tail; recovery
            // truncates it by CRC. Rewind our notion of the end so a
            // later append overwrites the torn bytes.
            let _ = self.file.seek(SeekFrom::Start(self.bytes));
            let _ = self.file.set_len(self.bytes);
            return Err(DataError::Wal { op: "append", message: e.to_string() });
        }
        self.bytes += record.len() as u64;
        self.last_version = version;
        self.stats.wal_bytes.store(self.bytes, Ordering::Relaxed);
        self.stats.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.unsynced += 1;
        match self.mode {
            FsyncMode::Always => self.fsync(),
            FsyncMode::Batch if self.unsynced >= GROUP_COMMIT_BATCHES => self.fsync(),
            _ => Ok(()),
        }
    }

    /// One fsync, honoring fault injection and the fsyncgate rule.
    fn fsync(&mut self) -> Result<(), DataError> {
        let injected = self.roll_error(FaultSite::WalFsync);
        let result = match injected {
            Some(message) => Err(std::io::Error::other(message)),
            None => self.file.sync_all(),
        };
        match result {
            Ok(()) => {
                self.unsynced = 0;
                self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                // fsyncgate: the kernel may have dropped the dirty pages
                // and cleared the error — a retry would report success
                // for data that never reached disk. Poison the log; only
                // a restart (which re-reads what disk really has) can
                // clear it.
                self.poisoned = true;
                self.stats.fsync_failures.fetch_add(1, Ordering::Relaxed);
                Err(DataError::Wal { op: "fsync", message: e.to_string() })
            }
        }
    }

    /// Flush and fsync regardless of mode (graceful shutdown); respects
    /// poisoning.
    pub(crate) fn flush_and_sync(&mut self) -> Result<(), DataError> {
        if self.poisoned {
            return Err(DataError::Wal {
                op: "fsync",
                message: "log poisoned by an earlier fsync failure".into(),
            });
        }
        if self.unsynced > 0 || self.mode == FsyncMode::Off {
            self.fsync()?;
        }
        Ok(())
    }

    /// Truncate the log back to just the magic (post-compaction), leaving
    /// the file synced.
    pub(crate) fn truncate_to_magic(&mut self) -> Result<(), DataError> {
        let io = |e: std::io::Error| DataError::Wal { op: "truncate", message: e.to_string() };
        self.file.set_len(MAGIC.len() as u64).map_err(io)?;
        self.file.seek(SeekFrom::End(0)).map_err(io)?;
        self.file.sync_all().map_err(io)?;
        self.bytes = MAGIC.len() as u64;
        self.unsynced = 0;
        self.stats.wal_bytes.store(self.bytes, Ordering::Relaxed);
        Ok(())
    }

    /// The log's path (snapshot compaction reads it back).
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::DurabilityStats;

    fn row(phrase: &str, v: f64) -> IngestRow {
        IngestRow { dims: vec![DimValue::Phrase(phrase.into())], values: vec![v] }
    }

    fn path_row(steps: &[&str], v: f64) -> IngestRow {
        IngestRow {
            dims: vec![DimValue::Path(steps.iter().map(|s| s.to_string()).collect())],
            values: vec![v],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn batch_roundtrips_through_encode_decode() {
        let rows = vec![row("the North East", 1.5), path_row(&["NY", "JFK"], -0.25)];
        let batch = decode_batch(&encode_batch(7, &rows)).unwrap();
        assert_eq!(batch.version, 7);
        assert_eq!(batch.rows, rows);
    }

    #[test]
    fn decode_rejects_truncated_and_trailing_garbage() {
        let payload = encode_batch(1, &[row("x", 1.0)]);
        assert!(decode_batch(&payload[..payload.len() - 1]).is_err());
        let mut longer = payload.clone();
        longer.push(0);
        assert!(decode_batch(&longer).is_err());
    }

    #[test]
    fn append_then_read_recovers_batches() {
        let dir = tempdir("wal_roundtrip");
        let path = dir.join("wal.log");
        let stats = Arc::new(DurabilityStats::default());
        let mut wal = Wal::open_at(&path, FsyncMode::Always, 0, stats.clone(), None).unwrap();
        wal.append_batch(1, &[row("a", 1.0)]).unwrap();
        wal.append_batch(2, &[row("b", 2.0), row("c", 3.0)]).unwrap();
        assert_eq!(stats.fsyncs.load(Ordering::Relaxed), 2, "always mode syncs per batch");
        let read = read_log(&path, true).unwrap();
        assert!(!read.torn);
        assert_eq!(read.valid_len, wal.bytes());
        assert_eq!(read.batches.len(), 2);
        assert_eq!(read.batches[1].version, 2);
        assert_eq!(read.batches[1].rows.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        let dir = tempdir("wal_group");
        let stats = Arc::new(DurabilityStats::default());
        let mut wal =
            Wal::open_at(&dir.join("wal.log"), FsyncMode::Batch, 0, stats.clone(), None).unwrap();
        for v in 1..=GROUP_COMMIT_BATCHES {
            wal.append_batch(v, &[row("a", 1.0)]).unwrap();
        }
        assert_eq!(stats.fsyncs.load(Ordering::Relaxed), 1, "one sync per group");
        wal.append_batch(GROUP_COMMIT_BATCHES + 1, &[row("a", 1.0)]).unwrap();
        wal.flush_and_sync().unwrap();
        assert_eq!(stats.fsyncs.load(Ordering::Relaxed), 2, "shutdown flush syncs the tail");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_yields_the_whole_batch_prefix() {
        let dir = tempdir("wal_torn");
        let path = dir.join("wal.log");
        let stats = Arc::new(DurabilityStats::default());
        let mut wal = Wal::open_at(&path, FsyncMode::Off, 0, stats, None).unwrap();
        wal.append_batch(1, &[row("a", 1.0)]).unwrap();
        let good_len = wal.bytes();
        wal.append_batch(2, &[row("b", 2.0)]).unwrap();
        drop(wal);
        // Truncate mid-second-record: exactly batch 1 must survive.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(good_len + 5).unwrap();
        drop(f);
        let read = read_log(&path, true).unwrap();
        assert!(read.torn);
        assert_eq!(read.valid_len, good_len);
        assert_eq!(read.batches.len(), 1);
        assert_eq!(read.batches[0].version, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_crc_stops_the_scan() {
        let dir = tempdir("wal_crc");
        let path = dir.join("wal.log");
        let stats = Arc::new(DurabilityStats::default());
        let mut wal = Wal::open_at(&path, FsyncMode::Off, 0, stats, None).unwrap();
        wal.append_batch(1, &[row("a", 1.0)]).unwrap();
        let good_len = wal.bytes();
        wal.append_batch(2, &[row("b", 2.0)]).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let flip = good_len as usize + 10;
        bytes[flip] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let read = read_log(&path, true).unwrap();
        assert!(read.torn);
        assert_eq!(read.batches.len(), 1, "corrupt record invalidates itself, not the prefix");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_fsync_failure_poisons_the_log() {
        use voxolap_faults::{FaultPlan, SiteSchedule};
        let dir = tempdir("wal_fsyncgate");
        let stats = Arc::new(DurabilityStats::default());
        let plan = FaultPlan::new(1).with_site(FaultSite::WalFsync, SiteSchedule::error(1.0));
        let inj = Some(Arc::new(FaultInjector::new(plan)));
        let mut wal =
            Wal::open_at(&dir.join("wal.log"), FsyncMode::Always, 0, stats.clone(), inj).unwrap();
        let err = wal.append_batch(1, &[row("a", 1.0)]).unwrap_err();
        assert!(matches!(err, DataError::Wal { op: "fsync", .. }), "{err}");
        assert!(wal.poisoned());
        // fsyncgate: no retry — every later append refuses.
        let err = wal.append_batch(2, &[row("b", 2.0)]).unwrap_err();
        assert!(matches!(err, DataError::Wal { op: "append", .. }), "{err}");
        assert_eq!(stats.fsync_failures.load(Ordering::Relaxed), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("voxolap_{tag}_{}_{:?}", std::process::id(), std::thread::current().id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
