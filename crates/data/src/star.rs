//! Star-schema storage.
//!
//! The paper's row-source assumption covers both "scanning a single source
//! table" and "joining fact table entries with indexed dimension tables"
//! (§2), and Example 3.1 notes the system "can handle queries on star
//! schemata as well". This module provides that second substrate:
//!
//! * a [`DimensionTable`] maps surrogate keys to leaf members of a
//!   dimension hierarchy (the "indexed dimension table" — key lookup is a
//!   direct array access);
//! * a [`FactTable`] stores one surrogate-key column per dimension plus
//!   the measure;
//! * a [`StarSchema`] ties them to a [`Schema`] and produces rows either
//!   by streaming joins ([`StarSchema::scan_joined`], the high-frequency
//!   row source the sampling engine needs) or by a load-time join into a
//!   denormalized columnar [`Table`] ([`StarSchema::materialize`]).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dimension::MemberId;
use crate::error::DataError;
use crate::schema::{DimId, Schema};
use crate::table::{Row, Table, TableBuilder};

/// A dimension table: surrogate key → leaf member.
///
/// Real star schemata carry descriptive attributes per key; for query
/// evaluation only the hierarchy position matters, which the leaf member
/// encodes (coarser attributes are its ancestors).
#[derive(Debug, Clone)]
pub struct DimensionTable {
    leaf_of_key: Vec<MemberId>,
}

impl DimensionTable {
    /// Build from an explicit key → leaf assignment.
    pub fn new(leaf_of_key: Vec<MemberId>) -> Self {
        DimensionTable { leaf_of_key }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.leaf_of_key.len()
    }

    /// `true` when the table has no keys.
    pub fn is_empty(&self) -> bool {
        self.leaf_of_key.is_empty()
    }

    /// Resolve a surrogate key (the "indexed" lookup: O(1)).
    #[inline]
    pub fn leaf(&self, key: u32) -> MemberId {
        self.leaf_of_key[key as usize]
    }
}

/// Fact rows referencing dimension tables by surrogate key.
#[derive(Debug, Clone, Default)]
pub struct FactTable {
    key_cols: Vec<Vec<u32>>,
    /// One column per measure of the logical schema.
    measures: Vec<Vec<f64>>,
}

impl FactTable {
    /// Number of fact rows.
    pub fn row_count(&self) -> usize {
        self.measures.first().map_or(0, Vec::len)
    }
}

/// A star schema: dimension tables + fact table + logical schema.
#[derive(Debug, Clone)]
pub struct StarSchema {
    schema: Schema,
    dim_tables: Vec<DimensionTable>,
    facts: FactTable,
}

impl StarSchema {
    /// Decompose a denormalized table into star form, assigning shuffled
    /// surrogate keys per distinct leaf (simulating the arbitrary keys of
    /// a real warehouse).
    pub fn from_table(table: &Table, seed: u64) -> Self {
        let schema = table.schema().clone();
        let n_dims = schema.dimensions().len();
        let mut rng = StdRng::seed_from_u64(seed);

        let mut dim_tables = Vec::with_capacity(n_dims);
        let mut key_of_leaf: Vec<Vec<u32>> = Vec::with_capacity(n_dims);
        for (dim_id, d) in schema.dims() {
            let mut leaves = d.leaves().to_vec();
            leaves.shuffle(&mut rng);
            let mut lookup = vec![u32::MAX; d.member_count()];
            for (key, &leaf) in leaves.iter().enumerate() {
                lookup[leaf.index()] = key as u32;
            }
            dim_tables.push(DimensionTable::new(leaves));
            key_of_leaf.push(lookup);
            let _ = dim_id;
        }

        let n_measures = schema.measure_count();
        let mut key_cols = vec![Vec::with_capacity(table.row_count()); n_dims];
        let mut measures = vec![Vec::with_capacity(table.row_count()); n_measures];
        for row in 0..table.row_count() {
            for (d, col) in key_cols.iter_mut().enumerate() {
                let leaf = table.member_at(DimId(d as u8), row);
                col.push(key_of_leaf[d][leaf.index()]);
            }
            for (mi, col) in measures.iter_mut().enumerate() {
                col.push(table.measure_value(crate::schema::MeasureId(mi as u8), row));
            }
        }
        StarSchema { schema, dim_tables, facts: FactTable { key_cols, measures } }
    }

    /// The logical schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of fact rows.
    pub fn row_count(&self) -> usize {
        self.facts.row_count()
    }

    /// One dimension table.
    pub fn dimension_table(&self, dim: DimId) -> &DimensionTable {
        &self.dim_tables[dim.index()]
    }

    /// Stream joined rows in a seeded pseudo-random order — the
    /// high-frequency row source the engine's sampling cache consumes.
    /// Each delivered row resolves its surrogate keys through the indexed
    /// dimension tables on the fly.
    pub fn scan_joined(&self, seed: u64) -> StarScanner<'_> {
        let mut order: Vec<u32> = (0..self.row_count() as u32).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        StarScanner { star: self, order, pos: 0, buf: vec![MemberId::ROOT; self.dim_tables.len()] }
    }

    /// Load-time join into a denormalized columnar [`Table`].
    pub fn materialize(&self) -> Result<Table, DataError> {
        let mut tb = TableBuilder::new(self.schema.clone());
        let n_dims = self.dim_tables.len();
        let mut members = vec![MemberId::ROOT; n_dims];
        let mut values = vec![0.0; self.facts.measures.len()];
        for row in 0..self.row_count() {
            for (d, slot) in members.iter_mut().enumerate() {
                *slot = self.dim_tables[d].leaf(self.facts.key_cols[d][row]);
            }
            for (mi, v) in values.iter_mut().enumerate() {
                *v = self.facts.measures[mi][row];
            }
            tb.push_row_values(&members, &values)?;
        }
        Ok(tb.build())
    }
}

/// Streaming joined scanner over a [`StarSchema`].
#[derive(Debug)]
pub struct StarScanner<'a> {
    star: &'a StarSchema,
    order: Vec<u32>,
    pos: usize,
    buf: Vec<MemberId>,
}

impl<'a> StarScanner<'a> {
    /// Rows delivered so far.
    pub fn rows_read(&self) -> usize {
        self.pos
    }

    /// Deliver the next joined row, or `None` when exhausted.
    pub fn next_row(&mut self) -> Option<Row<'_>> {
        if self.pos >= self.order.len() {
            return None;
        }
        let r = self.order[self.pos] as usize;
        self.pos += 1;
        for (d, dt) in self.star.dim_tables.iter().enumerate() {
            self.buf[d] = dt.leaf(self.star.facts.key_cols[d][r]);
        }
        Some(Row { members: &self.buf, value: self.star.facts.measures[0][r] })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flights::FlightsConfig;
    use crate::salary::SalaryConfig;

    #[test]
    fn decompose_and_materialize_roundtrip() {
        let table = SalaryConfig { rows: 60, seed: 4 }.generate();
        let star = StarSchema::from_table(&table, 9);
        assert_eq!(star.row_count(), 60);
        let back = star.materialize().unwrap();
        assert_eq!(back.row_count(), table.row_count());
        for row in 0..table.row_count() {
            assert_eq!(back.row_members(row), table.row_members(row));
            assert_eq!(back.value_at(row), table.value_at(row));
        }
    }

    #[test]
    fn dimension_tables_cover_all_leaves() {
        let table = FlightsConfig { rows: 500, seed: 1 }.generate();
        let star = StarSchema::from_table(&table, 2);
        for (dim_id, d) in table.schema().dims() {
            let dt = star.dimension_table(dim_id);
            assert_eq!(dt.len(), d.leaves().len());
            // Every key resolves to a distinct leaf.
            let mut seen: Vec<MemberId> = (0..dt.len() as u32).map(|k| dt.leaf(k)).collect();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), dt.len());
        }
    }

    #[test]
    fn joined_scan_is_a_permutation_of_fact_rows() {
        let table = SalaryConfig { rows: 40, seed: 4 }.generate();
        let star = StarSchema::from_table(&table, 9);
        let mut scan = star.scan_joined(3);
        let mut values = Vec::new();
        while let Some(r) = scan.next_row() {
            values.push(r.value);
        }
        assert_eq!(values.len(), 40);
        let mut expect: Vec<f64> = (0..40).map(|r| table.value_at(r)).collect();
        values.sort_by(f64::total_cmp);
        expect.sort_by(f64::total_cmp);
        assert_eq!(values, expect);
    }

    #[test]
    fn joined_rows_resolve_hierarchy_positions() {
        // Every streamed row's members must be valid leaves of their
        // dimensions (the join resolves keys, not raw ids).
        let table = FlightsConfig { rows: 300, seed: 1 }.generate();
        let star = StarSchema::from_table(&table, 2);
        let schema = star.schema();
        let mut scan = star.scan_joined(5);
        while let Some(r) = scan.next_row() {
            for (dim_id, d) in schema.dims() {
                let m = r.members[dim_id.index()];
                assert_eq!(d.member(m).level, d.leaf_level());
            }
        }
    }

    #[test]
    fn surrogate_keys_are_shuffled() {
        // Keys must not accidentally equal member ids (that would hide
        // resolution bugs).
        let table = FlightsConfig { rows: 200, seed: 1 }.generate();
        let star = StarSchema::from_table(&table, 7);
        let dt = star.dimension_table(DimId(0));
        let identical = (0..dt.len() as u32)
            .filter(|&k| {
                let leaf = dt.leaf(k);
                table.schema().dimension(DimId(0)).leaves().get(k as usize) == Some(&leaf)
            })
            .count();
        assert!(identical < dt.len(), "shuffling changed at least one assignment");
    }
}
