//! Minimal CSV import/export for fact tables.
//!
//! A `Table` round-trips as a header row (dimension names + measure name)
//! followed by one line per fact row with leaf member *phrases* and the
//! measure value. This lets users load their own data against a schema they
//! built with [`DimensionBuilder`](crate::dimension::DimensionBuilder), and
//! lets experiments dump datasets for inspection.
//!
//! The dialect is deliberately simple: comma separated, fields must not
//! contain commas or newlines (member phrases in the bundled datasets never
//! do). This avoids pulling a CSV dependency for what is a debugging aid.

use std::fmt::Write as _;

use crate::error::DataError;
use crate::schema::{DimId, MeasureId, Schema};
use crate::table::{Table, TableBuilder};

/// Serialize a table to CSV (header + rows; one trailing column per
/// measure).
pub fn to_csv(table: &Table) -> String {
    let schema = table.schema();
    let mut out = String::new();
    let headers: Vec<&str> = schema
        .dimensions()
        .iter()
        .map(|d| d.name())
        .chain(schema.measures().iter().map(|m| m.name.as_str()))
        .collect();
    out.push_str(&headers.join(","));
    out.push('\n');
    let n_measures = schema.measure_count();
    for row in 0..table.row_count() {
        for (d, dim) in schema.dims() {
            let m = table.member_at(d, row);
            let _ = write!(out, "{},", dim.member(m).phrase);
        }
        for mi in 0..n_measures {
            let sep = if mi + 1 == n_measures { "" } else { "," };
            let _ = write!(out, "{}{sep}", table.measure_value(MeasureId(mi as u8), row));
        }
        out.push('\n');
    }
    out
}

/// How [`import_csv`] treats malformed data rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CsvMode {
    /// Fail fast: the first malformed row aborts the import (the behavior
    /// of [`from_csv`]).
    #[default]
    Strict,
    /// Skip malformed rows, counting them; the import succeeds with
    /// whatever parsed. Header errors are still fatal — without a valid
    /// header nothing can be attributed to columns at all.
    Lenient,
}

/// Result of a [`import_csv`] run: the table plus what was left behind.
#[derive(Debug)]
pub struct CsvImport {
    /// The parsed table.
    pub table: Table,
    /// Number of fact rows accepted.
    pub loaded_rows: usize,
    /// Number of malformed rows skipped (always 0 in strict mode).
    pub skipped_rows: usize,
    /// The first skipped row's error, kept for diagnostics.
    pub first_error: Option<DataError>,
}

/// Parse CSV produced by [`to_csv`] (or hand-written in the same dialect)
/// against a known schema.
///
/// Member phrases must resolve to **leaf** members of the corresponding
/// dimension. Returns `DataError::Csv` with a 1-based line number — and
/// the offending column, when attributable — on any malformed input.
pub fn from_csv(schema: Schema, csv: &str) -> Result<Table, DataError> {
    import_csv(schema, csv, CsvMode::Strict).map(|import| import.table)
}

/// Parse one data row into leaf members + measure values; `Err` carries
/// the line number and, where attributable, the offending column name.
fn parse_row(
    tb: &TableBuilder,
    header_fields: &[&str],
    fields: &[&str],
    lineno: usize,
    n_dims: usize,
) -> Result<(Vec<crate::dimension::MemberId>, Vec<f64>), DataError> {
    let column = |idx: usize| header_fields.get(idx).map(|c| c.trim().to_string());
    let mut members = Vec::with_capacity(n_dims);
    for (d, field) in fields.iter().take(n_dims).enumerate() {
        let dim = tb.schema().dimension(DimId(d as u8));
        let m = dim.member_by_phrase(field).map_err(|e| DataError::Csv {
            line: lineno,
            column: column(d),
            message: e.to_string(),
        })?;
        members.push(m);
    }
    let mut values = Vec::with_capacity(fields.len() - n_dims);
    for (mi, field) in fields[n_dims..].iter().enumerate() {
        let value: f64 = field.trim().parse().map_err(|_| DataError::Csv {
            line: lineno,
            column: column(n_dims + mi),
            message: format!("bad measure value {field:?}"),
        })?;
        values.push(value);
    }
    Ok((members, values))
}

/// Parse CSV with an explicit malformed-row policy (see [`CsvMode`]);
/// lenient imports skip bad rows and report how many were dropped.
pub fn import_csv(schema: Schema, csv: &str, mode: CsvMode) -> Result<CsvImport, DataError> {
    let n_dims = schema.dimensions().len();
    let n_measures = schema.measure_count();
    let n_cols = n_dims + n_measures;
    let mut lines = csv.lines().enumerate();
    let (_, header) = lines.next().ok_or(DataError::Csv {
        line: 1,
        column: None,
        message: "missing header".to_string(),
    })?;
    let header_fields: Vec<&str> = header.split(',').collect();
    if header_fields.len() != n_cols {
        return Err(DataError::Csv {
            line: 1,
            column: None,
            message: format!("expected {n_cols} columns, got {}", header_fields.len()),
        });
    }

    let mut tb = TableBuilder::new(schema);
    let mut loaded_rows = 0usize;
    let mut skipped_rows = 0usize;
    let mut first_error: Option<DataError> = None;
    for (i, line) in lines {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        let parsed = if fields.len() != n_cols {
            Err(DataError::Csv {
                line: lineno,
                column: None,
                message: format!("expected {n_cols} fields, got {}", fields.len()),
            })
        } else {
            parse_row(&tb, &header_fields, &fields, lineno, n_dims)
        };
        let pushed = parsed.and_then(|(members, values)| {
            tb.push_row_values(&members, &values).map_err(|e| DataError::Csv {
                line: lineno,
                column: None,
                message: e.to_string(),
            })
        });
        match pushed {
            Ok(()) => loaded_rows += 1,
            Err(e) => match mode {
                CsvMode::Strict => return Err(e),
                CsvMode::Lenient => {
                    skipped_rows += 1;
                    first_error.get_or_insert(e);
                }
            },
        }
    }
    Ok(CsvImport { table: tb.build(), loaded_rows, skipped_rows, first_error })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::salary::SalaryConfig;

    #[test]
    fn round_trip_preserves_rows() {
        let t = SalaryConfig { rows: 24, seed: 3 }.generate();
        let csv = to_csv(&t);
        let schema = SalaryConfig::schema(24);
        let back = from_csv(schema, &csv).unwrap();
        assert_eq!(back.row_count(), t.row_count());
        for row in 0..t.row_count() {
            assert_eq!(back.row_members(row), t.row_members(row));
            assert!((back.value_at(row) - t.value_at(row)).abs() < 1e-9);
        }
    }

    #[test]
    fn header_lists_dims_and_measure() {
        let t = SalaryConfig { rows: 2, seed: 3 }.generate();
        let csv = to_csv(&t);
        let header = csv.lines().next().unwrap();
        assert_eq!(header, "college location,start salary,mid-career salary");
    }

    #[test]
    fn bad_member_is_reported_with_line_and_column() {
        let schema = SalaryConfig::schema(4);
        let csv = "college location,start salary,mid-career salary\n\
                   Atlantis Tech,around 55 K,80\n";
        let err = from_csv(schema, csv).unwrap_err();
        match err {
            DataError::Csv { line, column, .. } => {
                assert_eq!(line, 2);
                assert_eq!(column.as_deref(), Some("college location"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn lenient_mode_skips_bad_rows_and_counts_them() {
        let t = SalaryConfig { rows: 4, seed: 3 }.generate();
        let mut csv = to_csv(&t);
        // Append one row with an unknown member and one with a bad value
        // (reusing a known-good member phrase for the latter).
        let inst = t.schema().dimension(DimId(0)).member(t.member_at(DimId(0), 0)).phrase.clone();
        let bin = t.schema().dimension(DimId(1)).member(t.member_at(DimId(1), 0)).phrase.clone();
        csv.push_str("Atlantis Tech,around 55 K,80\n");
        csv.push_str(&format!("{inst},{bin},not-a-number\n"));
        csv.push_str("only-two,fields\n");
        let import = import_csv(SalaryConfig::schema(4), &csv, CsvMode::Lenient).unwrap();
        assert_eq!(import.loaded_rows, 4);
        assert_eq!(import.table.row_count(), 4);
        assert_eq!(import.skipped_rows, 3);
        let first = import.first_error.expect("first error kept");
        assert!(matches!(first, DataError::Csv { line: 6, .. }), "first bad line: {first}");
        // Strict mode fails on the same input.
        assert!(import_csv(SalaryConfig::schema(4), &csv, CsvMode::Strict).is_err());
    }

    #[test]
    fn bad_measure_value_names_the_measure_column() {
        let schema = SalaryConfig::schema(4);
        let t = SalaryConfig { rows: 4, seed: 3 }.generate();
        let inst = t.schema().dimension(DimId(0)).member(t.member_at(DimId(0), 0)).phrase.clone();
        let bin = t.schema().dimension(DimId(1)).member(t.member_at(DimId(1), 0)).phrase.clone();
        let csv = format!("college location,start salary,mid-career salary\n{inst},{bin},oops\n");
        let err = from_csv(schema, &csv).unwrap_err();
        match err {
            DataError::Csv { column, .. } => {
                assert_eq!(column.as_deref(), Some("mid-career salary"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bad_value_is_reported() {
        let schema = SalaryConfig::schema(4);
        let t = SalaryConfig { rows: 4, seed: 3 }.generate();
        let inst = t.schema().dimension(DimId(0)).member(t.member_at(DimId(0), 0)).phrase.clone();
        let bin = t.schema().dimension(DimId(1)).member(t.member_at(DimId(1), 0)).phrase.clone();
        let csv =
            format!("college location,start salary,mid-career salary\n{inst},{bin},not-a-number\n");
        let err = from_csv(schema, &csv).unwrap_err();
        assert!(matches!(err, DataError::Csv { line: 2, .. }));
    }

    #[test]
    fn multi_measure_round_trip() {
        use crate::flights::FlightsConfig;
        use crate::schema::MeasureId;
        let t = FlightsConfig { rows: 40, seed: 3 }.generate();
        let csv = to_csv(&t);
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .ends_with("cancellation probability,departure delay in minutes"));
        let back = from_csv(FlightsConfig::schema(), &csv).unwrap();
        assert_eq!(back.row_count(), 40);
        for row in 0..40 {
            assert_eq!(back.row_members(row), t.row_members(row));
            for m in 0..2 {
                let id = MeasureId(m);
                assert!((back.measure_value(id, row) - t.measure_value(id, row)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn blank_lines_are_skipped() {
        let t = SalaryConfig { rows: 4, seed: 3 }.generate();
        let mut csv = to_csv(&t);
        csv.push_str("\n\n");
        let back = from_csv(SalaryConfig::schema(4), &csv).unwrap();
        assert_eq!(back.row_count(), 4);
    }
}
