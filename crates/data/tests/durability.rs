//! Integration tests for the §17 durability layer: seeded crash-point
//! injection, exhaustive byte-level torn-tail recovery, and replay
//! idempotence — all at the public `DurableTable` API.
//!
//! The crash model: everything the process `write()`s before dying is on
//! disk (the batches it acknowledged), plus possibly a *partial* tail
//! from a batch it never acknowledged. Corruption is therefore only ever
//! injected beyond the acknowledged prefix; recovery must keep every
//! acked batch and truncate the rest.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use voxolap_data::flights::FlightsConfig;
use voxolap_data::schema::MeasureId;
use voxolap_data::{DimId, DimValue, DurabilityOptions, DurableTable, FsyncMode, IngestRow, Table};

fn seed_table() -> Table {
    FlightsConfig { rows: 120, seed: 7 }.generate()
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("voxolap-durtest-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Clone `n` existing rows (cycling from `start`) so appends are always
/// valid under the flights schema.
fn echo_rows(table: &Table, start: usize, n: usize) -> Vec<IngestRow> {
    let schema = table.schema();
    (0..n)
        .map(|i| {
            let row = (start + i) % table.row_count();
            IngestRow {
                dims: (0..schema.dimensions().len())
                    .map(|d| {
                        let id = DimId(d as u8);
                        let member = table.member_at(id, row);
                        DimValue::Phrase(schema.dimension(id).member(member).phrase.clone())
                    })
                    .collect(),
                values: (0..schema.measures().len())
                    .map(|m| table.measure_value(MeasureId(m as u8), row))
                    .collect(),
            }
        })
        .collect()
}

fn opts() -> DurabilityOptions {
    DurabilityOptions {
        fsync_mode: FsyncMode::Off,
        snapshot_every_batches: 3,
        faults: None,
    }
}

fn append_junk(path: &Path, bytes: &[u8]) {
    let mut f = OpenOptions::new().append(true).open(path).unwrap();
    f.write_all(bytes).unwrap();
}

/// Deterministic per-seed randomness (no `rand` in the workspace).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// The tentpole guarantee: across 50 seeded crash points — varying batch
/// counts, batch sizes, snapshot timing, and the shape of the torn tail
/// — reopening recovers *exactly* the acknowledged state, then keeps
/// accepting appends.
#[test]
fn zero_acked_batch_loss_across_50_seeded_crash_points() {
    let seed = seed_table();
    for s in 0u64..50 {
        let dir = tempdir(&format!("crash{s}"));
        let mut rng = Lcg(0x9E37_79B9_7F4A_7C15 ^ s);
        let (t, _) = DurableTable::open(seed.clone(), &dir, opts()).unwrap();

        let batches = 1 + (s % 6) as usize;
        let mut acked_rows = 0usize;
        for b in 0..batches {
            let n = 1 + (rng.next() % 4) as usize;
            t.append_rows(&echo_rows(&seed, b * 7 + s as usize, n)).unwrap();
            acked_rows += n;
        }
        let crash_mode = s % 5;
        if crash_mode == 4 {
            // Crash with the log already compacted: snapshot + empty WAL.
            t.compact_now().unwrap();
        }
        let acked_version = t.version();
        drop(t); // crash: no clean marker, no graceful flush

        // Inject the never-acknowledged tail a dying writer could leave.
        let wal = dir.join("wal.log");
        let expect_torn = match crash_mode {
            0 => 0u64, // died exactly at a record boundary
            1 => {
                // Truncated length field.
                append_junk(&wal, &[0x7F, 0x00]);
                1
            }
            2 => {
                // Valid-looking header promising more payload than exists.
                let mut junk = 100u32.to_le_bytes().to_vec();
                junk.extend(0xDEAD_BEEFu32.to_le_bytes());
                junk.extend([0xAB; 10]);
                append_junk(&wal, &junk);
                1
            }
            3 => {
                // A whole record whose CRC does not match its payload.
                let mut junk = 8u32.to_le_bytes().to_vec();
                junk.extend(0xDEAD_BEEFu32.to_le_bytes());
                junk.extend([0xCD; 8]);
                append_junk(&wal, &junk);
                1
            }
            _ => {
                // Garbage after the compacted (magic-only) WAL.
                append_junk(&wal, &(rng.next() as u32).to_le_bytes());
                1
            }
        };

        let (t2, rec) = DurableTable::open(seed.clone(), &dir, opts()).unwrap();
        assert_eq!(t2.version(), acked_version, "seed {s}: acked version lost");
        assert_eq!(
            t2.snapshot().row_count(),
            seed.row_count() + acked_rows,
            "seed {s}: acked rows lost"
        );
        assert_eq!(rec.torn_tail_truncations, expect_torn, "seed {s}");
        assert!(!rec.clean_start, "seed {s}: a crash must not report a clean start");

        // The repaired log accepts new appends and survives another cycle.
        t2.append_rows(&echo_rows(&seed, 3, 2)).unwrap();
        let grown = t2.version();
        drop(t2);
        let (t3, rec3) = DurableTable::open(seed.clone(), &dir, opts()).unwrap();
        assert_eq!(t3.version(), grown, "seed {s}: post-recovery append lost");
        assert_eq!(rec3.torn_tail_truncations, 0, "seed {s}: recovery must repair the file");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Property: for *every* byte-level truncation of the log, recovery
/// yields exactly the longest prefix of whole batches — never a partial
/// batch, never a lost whole one — and the truncation repair leaves a
/// file the next boot reads without finding a torn tail.
#[test]
fn every_byte_truncation_recovers_exactly_a_whole_batch_prefix() {
    let seed = seed_table();
    let no_snap =
        DurabilityOptions { fsync_mode: FsyncMode::Off, snapshot_every_batches: 0, faults: None };
    let dir = tempdir("torn-master");
    let (t, _) = DurableTable::open(seed.clone(), &dir, no_snap.clone()).unwrap();
    let wal = dir.join("wal.log");
    // (byte offset of the record boundary, version, total ingested rows)
    let mut boundaries = Vec::new();
    let mut total = 0usize;
    for b in 0..3usize {
        t.append_rows(&echo_rows(&seed, b * 11, b + 1)).unwrap();
        total += b + 1;
        boundaries.push((std::fs::metadata(&wal).unwrap().len() as usize, t.version(), total));
    }
    drop(t);
    let master = std::fs::read(&wal).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    // Whole-file prefixes that are *not* torn: empty, magic-only, and
    // each exact record boundary.
    let clean_cuts: Vec<usize> =
        [0, 8].into_iter().chain(boundaries.iter().map(|&(len, _, _)| len)).collect();

    let scratch = tempdir("torn-scratch");
    for cut in 0..=master.len() {
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(&scratch).unwrap();
        std::fs::write(scratch.join("wal.log"), &master[..cut]).unwrap();

        let (t2, rec) = DurableTable::open(seed.clone(), &scratch, no_snap.clone()).unwrap();
        let whole = boundaries.iter().filter(|&&(len, _, _)| len <= cut).count();
        let expect_rows = if whole == 0 { 0 } else { boundaries[whole - 1].2 };
        assert_eq!(
            t2.snapshot().row_count(),
            seed.row_count() + expect_rows,
            "cut at byte {cut}"
        );
        if whole > 0 {
            assert_eq!(t2.version(), boundaries[whole - 1].1, "cut at byte {cut}");
        }
        let expect_torn = cut > 0 && !clean_cuts.contains(&cut);
        assert_eq!(rec.torn_tail_truncations, expect_torn as u64, "cut at byte {cut}");

        drop(t2);
        let (t3, rec3) = DurableTable::open(seed.clone(), &scratch, no_snap.clone()).unwrap();
        assert_eq!(rec3.torn_tail_truncations, 0, "cut at byte {cut}: repair must stick");
        assert_eq!(t3.snapshot().row_count(), seed.row_count() + expect_rows);
    }
    std::fs::remove_dir_all(&scratch).ok();
}

/// Replaying the same records twice (the on-disk shape a crash between
/// snapshot rename and WAL truncation leaves behind) converges to the
/// same version and row count as replaying them once.
#[test]
fn replaying_a_doubled_log_is_idempotent() {
    let seed = seed_table();
    let no_snap =
        DurabilityOptions { fsync_mode: FsyncMode::Off, snapshot_every_batches: 0, faults: None };
    let dir = tempdir("idem");
    let (t, _) = DurableTable::open(seed.clone(), &dir, no_snap.clone()).unwrap();
    t.append_rows(&echo_rows(&seed, 0, 2)).unwrap();
    t.append_rows(&echo_rows(&seed, 5, 3)).unwrap();
    let once_version = t.version();
    let once_rows = t.snapshot().row_count();
    drop(t);

    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    append_junk(&wal, &bytes[8..]); // duplicate every record past the magic

    let (t2, rec) = DurableTable::open(seed.clone(), &dir, no_snap).unwrap();
    assert_eq!(t2.version(), once_version);
    assert_eq!(t2.snapshot().row_count(), once_rows);
    assert_eq!(rec.replayed_batches, 2, "duplicates are skipped, not reapplied");
    assert_eq!(rec.torn_tail_truncations, 0, "a doubled log is validly framed");
    std::fs::remove_dir_all(&dir).ok();
}
