//! # voxolap-mcts
//!
//! A generic UCT (Upper Confidence bounds applied to Trees) implementation
//! over **pre-expanded** trees, following paper Algorithm 2.
//!
//! The paper's planner deviates from typical MCTS applications in that the
//! search tree is generated *in its entirety* during preprocessing — user
//! preference constraints bound its height, so the full tree of speech
//! candidates fits in memory (Theorem A.4: `O(m^k)` nodes). Sampling then
//! repeatedly descends from a root to a leaf, choosing at each node the
//! child maximizing the UCT formula
//!
//! ```text
//! reward/visits + sqrt(2 · ln(parent.visits) / visits)
//! ```
//!
//! with unvisited children prioritized, evaluates the leaf with a
//! caller-supplied reward function, and adds the observed reward to every
//! node on the path.
//!
//! ```
//! use voxolap_mcts::Tree;
//! use rand::SeedableRng;
//!
//! let mut tree = Tree::new("root");
//! let a = tree.add_child(Tree::<&str>::ROOT, "good");
//! let b = tree.add_child(Tree::<&str>::ROOT, "bad");
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! for _ in 0..200 {
//!     tree.sample(Tree::<&str>::ROOT, &mut rng,
//!                 |&data| if data == "good" { 1.0 } else { 0.0 });
//! }
//! assert_eq!(tree.best_child(Tree::<&str>::ROOT), Some(a));
//! let _ = b;
//! ```

use rand::Rng;

/// Identifier of a node in a [`Tree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into the arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One search-tree node (paper Table 4: text fields live in `data`,
/// `visits`/`reward` are the planner statistics).
#[derive(Debug, Clone)]
struct Node<T> {
    data: T,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    visits: u64,
    reward: f64,
}

/// An arena-allocated search tree with UCT sampling.
#[derive(Debug, Clone)]
pub struct Tree<T> {
    nodes: Vec<Node<T>>,
}

impl<T> Tree<T> {
    /// The root node id of every tree.
    pub const ROOT: NodeId = NodeId(0);

    /// Create a tree holding only a root.
    pub fn new(root_data: T) -> Self {
        Tree {
            nodes: vec![Node { data: root_data, parent: None, children: Vec::new(), visits: 0, reward: 0.0 }],
        }
    }

    /// Add a child under `parent` (paper `ST.AddChild`), returning its id.
    pub fn add_child(&mut self, parent: NodeId, data: T) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { data, parent: Some(parent), children: Vec::new(), visits: 0, reward: 0.0 });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Payload of a node.
    pub fn data(&self, n: NodeId) -> &T {
        &self.nodes[n.index()].data
    }

    /// Children of a node.
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.nodes[n.index()].children
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()].parent
    }

    /// `true` iff the node has no children (paper field `isLeaf`).
    pub fn is_leaf(&self, n: NodeId) -> bool {
        self.nodes[n.index()].children.is_empty()
    }

    /// Number of times the node appeared on a sampled path.
    pub fn visits(&self, n: NodeId) -> u64 {
        self.nodes[n.index()].visits
    }

    /// Accumulated reward over all sampled paths through the node.
    pub fn reward(&self, n: NodeId) -> f64 {
        self.nodes[n.index()].reward
    }

    /// Mean observed reward (`NaN` before the first visit).
    pub fn mean_reward(&self, n: NodeId) -> f64 {
        let node = &self.nodes[n.index()];
        node.reward / node.visits as f64
    }

    /// Total number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// `ST.MaxUctChild`: the child of `n` maximizing the UCT formula.
    /// Unvisited children take absolute priority; ties are broken uniformly
    /// at random (paper Algorithm 2 returns a "random pick" from the
    /// maximizing set).
    ///
    /// Returns `None` for leaves.
    pub fn max_uct_child<R: Rng + ?Sized>(&self, n: NodeId, rng: &mut R) -> Option<NodeId> {
        let node = &self.nodes[n.index()];
        if node.children.is_empty() {
            return None;
        }
        // Reservoir-pick among unvisited children.
        let mut unvisited_seen = 0usize;
        let mut pick = None;
        for &c in &node.children {
            if self.nodes[c.index()].visits == 0 {
                unvisited_seen += 1;
                if rng.gen_range(0..unvisited_seen) == 0 {
                    pick = Some(c);
                }
            }
        }
        if pick.is_some() {
            return pick;
        }
        // All children visited: maximize the UCT bound, random tie-break.
        let ln_n = (node.visits.max(1) as f64).ln();
        let mut best_score = f64::NEG_INFINITY;
        let mut ties = 0usize;
        let mut best = node.children[0];
        for &c in &node.children {
            let ch = &self.nodes[c.index()];
            let score = ch.reward / ch.visits as f64 + (2.0 * ln_n / ch.visits as f64).sqrt();
            if score > best_score {
                best_score = score;
                best = c;
                ties = 1;
            } else if score == best_score {
                ties += 1;
                if rng.gen_range(0..ties) == 0 {
                    best = c;
                }
            }
        }
        Some(best)
    }

    /// The child with the highest **mean** reward — exploitation only, used
    /// by the main loop when committing to the next sentence (Algorithm 1
    /// "cannot afford further exploration"). Unvisited children lose
    /// against any visited one. Returns `None` for leaves.
    pub fn best_child(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()]
            .children
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let ma = self.mean_or_neg_inf(a);
                let mb = self.mean_or_neg_inf(b);
                ma.total_cmp(&mb)
            })
    }

    fn mean_or_neg_inf(&self, n: NodeId) -> f64 {
        let node = &self.nodes[n.index()];
        if node.visits == 0 {
            f64::NEG_INFINITY
        } else {
            node.reward / node.visits as f64
        }
    }

    /// One sampling iteration (paper `ST.Sample` / Algorithm 2 `SAMPLE`):
    /// descend from `from` by UCT until a leaf, evaluate the leaf's payload
    /// with `eval`, and add the returned reward to every node on the path.
    ///
    /// Returns the observed reward.
    pub fn sample<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        rng: &mut R,
        eval: impl FnOnce(&T) -> f64,
    ) -> f64 {
        let path = self.select_path(from, rng);
        let leaf = *path.last().expect("path contains at least `from`");
        let reward = eval(&self.nodes[leaf.index()].data);
        self.update_path(&path, reward);
        reward
    }

    /// Descend from `from` by UCT choices until a leaf, returning the full
    /// path (including `from`). Callers that need the path's payloads to
    /// compute the reward (as the speech planner does — the reward depends
    /// on every fragment on the path, not just the leaf) use this together
    /// with [`Tree::update_path`].
    pub fn select_path<R: Rng + ?Sized>(&self, from: NodeId, rng: &mut R) -> Vec<NodeId> {
        let mut path = vec![from];
        let mut cur = from;
        while let Some(next) = self.max_uct_child(cur, rng) {
            path.push(next);
            cur = next;
        }
        path
    }

    /// Descend from `from` choosing children uniformly at random — the
    /// no-prioritization ablation of UCT (pure Monte-Carlo sampling without
    /// the exploration/exploitation balance the paper argues for).
    pub fn random_path<R: Rng + ?Sized>(&self, from: NodeId, rng: &mut R) -> Vec<NodeId> {
        let mut path = vec![from];
        let mut cur = from;
        loop {
            let children = self.children(cur);
            if children.is_empty() {
                return path;
            }
            cur = children[rng.gen_range(0..children.len())];
            path.push(cur);
        }
    }

    /// Add `reward` and one visit to every node in `path`
    /// (the statistics update of Algorithm 2's `SAMPLE`).
    pub fn update_path(&mut self, path: &[NodeId], reward: f64) {
        for &n in path {
            let node = &mut self.nodes[n.index()];
            node.visits += 1;
            node.reward += reward;
        }
    }

    /// Depth of the subtree rooted at `n` (a leaf has depth 0).
    pub fn depth(&self, n: NodeId) -> usize {
        self.children(n)
            .iter()
            .map(|&c| 1 + self.depth(c))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn arena_structure() {
        let mut t = Tree::new(0u32);
        let a = t.add_child(Tree::<u32>::ROOT, 1);
        let b = t.add_child(Tree::<u32>::ROOT, 2);
        let c = t.add_child(a, 3);
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.children(Tree::<u32>::ROOT), &[a, b]);
        assert_eq!(t.parent(c), Some(a));
        assert_eq!(t.parent(Tree::<u32>::ROOT), None);
        assert!(t.is_leaf(b));
        assert!(!t.is_leaf(a));
        assert_eq!(*t.data(c), 3);
        assert_eq!(t.depth(Tree::<u32>::ROOT), 2);
    }

    #[test]
    fn unvisited_children_sampled_first() {
        let mut t = Tree::new(());
        for _ in 0..5 {
            t.add_child(Tree::<()>::ROOT, ());
        }
        let mut r = rng(1);
        for _ in 0..5 {
            t.sample(Tree::<()>::ROOT, &mut r, |_| 0.5);
        }
        // After exactly 5 samples every child was visited exactly once.
        for &c in t.children(Tree::<()>::ROOT) {
            assert_eq!(t.visits(c), 1);
        }
    }

    #[test]
    fn sample_updates_whole_path() {
        let mut t = Tree::new("root");
        let mid = t.add_child(Tree::<&str>::ROOT, "mid");
        let leaf = t.add_child(mid, "leaf");
        let mut r = rng(2);
        let reward = t.sample(Tree::<&str>::ROOT, &mut r, |_| 0.7);
        assert_eq!(reward, 0.7);
        for n in [Tree::<&str>::ROOT, mid, leaf] {
            assert_eq!(t.visits(n), 1);
            assert!((t.reward(n) - 0.7).abs() < 1e-12);
        }
    }

    #[test]
    fn uct_converges_to_better_arm() {
        // Two-armed bandit: arm "a" pays 0.9, arm "b" pays 0.1.
        let mut t = Tree::new("root");
        let a = t.add_child(Tree::<&str>::ROOT, "a");
        let b = t.add_child(Tree::<&str>::ROOT, "b");
        let mut r = rng(3);
        for _ in 0..500 {
            t.sample(Tree::<&str>::ROOT, &mut r, |&d| if d == "a" { 0.9 } else { 0.1 });
        }
        assert!(
            t.visits(a) > 5 * t.visits(b),
            "exploitation dominates: {} vs {}",
            t.visits(a),
            t.visits(b)
        );
        assert_eq!(t.best_child(Tree::<&str>::ROOT), Some(a));
    }

    #[test]
    fn exploration_revisits_inferior_arm() {
        // UCT must not starve the worse arm completely.
        let mut t = Tree::new("root");
        let _a = t.add_child(Tree::<&str>::ROOT, "a");
        let b = t.add_child(Tree::<&str>::ROOT, "b");
        let mut r = rng(4);
        for _ in 0..300 {
            t.sample(Tree::<&str>::ROOT, &mut r, |&d| if d == "a" { 0.9 } else { 0.1 });
        }
        assert!(t.visits(b) >= 5, "inferior arm still explored: {}", t.visits(b));
    }

    #[test]
    fn best_child_ignores_unvisited() {
        let mut t = Tree::new(());
        let a = t.add_child(Tree::<()>::ROOT, ());
        let _b = t.add_child(Tree::<()>::ROOT, ());
        let mut r = rng(5);
        t.sample(a, &mut r, |_| 0.2);
        assert_eq!(t.best_child(Tree::<()>::ROOT), Some(a));
    }

    #[test]
    fn max_uct_child_none_for_leaf() {
        let t = Tree::new(());
        let mut r = rng(6);
        assert_eq!(t.clone().max_uct_child(Tree::<()>::ROOT, &mut r), None);
        assert_eq!(t.best_child(Tree::<()>::ROOT), None);
    }

    #[test]
    fn select_path_reaches_leaf_and_update_path_accumulates() {
        let mut t = Tree::new(0u8);
        let a = t.add_child(Tree::<u8>::ROOT, 1);
        let leaf = t.add_child(a, 2);
        let mut r = rng(7);
        let path = t.select_path(Tree::<u8>::ROOT, &mut r);
        assert_eq!(path, vec![Tree::<u8>::ROOT, a, leaf]);
        t.update_path(&path, 0.4);
        t.update_path(&path[1..], 0.6);
        assert_eq!(t.visits(Tree::<u8>::ROOT), 1);
        assert_eq!(t.visits(a), 2);
        assert!((t.reward(a) - 1.0).abs() < 1e-12);
        assert!((t.mean_reward(a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let build = |seed| {
            let mut t = Tree::new(());
            for _ in 0..4 {
                let c = t.add_child(Tree::<()>::ROOT, ());
                for _ in 0..3 {
                    t.add_child(c, ());
                }
            }
            let mut r = rng(seed);
            let mut rewards = Vec::new();
            for i in 0..50 {
                rewards.push(t.sample(Tree::<()>::ROOT, &mut r, |_| (i % 7) as f64 / 7.0));
            }
            (rewards, t.visits(Tree::<()>::ROOT))
        };
        assert_eq!(build(9), build(9));
    }
}
