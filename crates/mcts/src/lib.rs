//! # voxolap-mcts
//!
//! A generic UCT (Upper Confidence bounds applied to Trees) implementation
//! over **pre-expanded** trees, following paper Algorithm 2.
//!
//! The paper's planner deviates from typical MCTS applications in that the
//! search tree is generated *in its entirety* during preprocessing — user
//! preference constraints bound its height, so the full tree of speech
//! candidates fits in memory (Theorem A.4: `O(m^k)` nodes). Sampling then
//! repeatedly descends from a root to a leaf, choosing at each node the
//! child maximizing the UCT formula
//!
//! ```text
//! reward/visits + sqrt(2 · ln(parent.visits) / visits)
//! ```
//!
//! with unvisited children prioritized, evaluates the leaf with a
//! caller-supplied reward function, and adds the observed reward to every
//! node on the path.
//!
//! ## Lock-free parallel sampling
//!
//! Per-node statistics are atomics — visit counts are plain `AtomicU64`
//! counters, reward sums are `f64` updated through a bit-level
//! compare-and-swap loop — so any number of threads can descend and update
//! a shared tree concurrently through `&Tree` without locks. The tree
//! *structure* is immutable during sampling (it is fully pre-expanded),
//! which is what makes this safe: threads only race on counters.
//!
//! Concurrent descents through [`Tree::select_path_vloss`] additionally
//! apply **virtual loss**: each traversed node temporarily counts the
//! in-flight sample as a visit with zero reward, pushing other threads
//! toward different subtrees until [`Tree::update_path_vloss`] replaces
//! the pessimistic placeholder with the observed reward. With no virtual
//! losses in flight the single-threaded code paths are arithmetically
//! identical to the sequential planner, which keeps fixed-seed runs
//! bit-reproducible.
//!
//! ```
//! use voxolap_mcts::Tree;
//! use rand::SeedableRng;
//!
//! let mut tree = Tree::new("root");
//! let a = tree.add_child(Tree::<&str>::ROOT, "good");
//! let b = tree.add_child(Tree::<&str>::ROOT, "bad");
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! for _ in 0..200 {
//!     tree.sample(Tree::<&str>::ROOT, &mut rng,
//!                 |&data| if data == "good" { 1.0 } else { 0.0 });
//! }
//! assert_eq!(tree.best_child(Tree::<&str>::ROOT), Some(a));
//! let _ = b;
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use rand::Rng;

/// Identifier of a node in a [`Tree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into the arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Add `delta` to an `f64` stored as bits in an [`AtomicU64`].
#[inline]
fn fetch_add_f64(cell: &AtomicU64, delta: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + delta).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// One search-tree node (paper Table 4: text fields live in `data`,
/// `visits`/`reward` are the planner statistics). Statistics are atomic so
/// sampling threads share the node without locking; `vloss` counts
/// in-flight concurrent descents through this node (virtual loss).
#[derive(Debug)]
struct Node<T> {
    data: T,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    visits: AtomicU64,
    /// Reward sum as `f64::to_bits`, updated by compare-and-swap.
    reward_bits: AtomicU64,
    vloss: AtomicU64,
}

impl<T> Node<T> {
    fn new(data: T, parent: Option<NodeId>) -> Self {
        Node {
            data,
            parent,
            children: Vec::new(),
            visits: AtomicU64::new(0),
            reward_bits: AtomicU64::new(0f64.to_bits()),
            vloss: AtomicU64::new(0),
        }
    }

    #[inline]
    fn visits(&self) -> u64 {
        self.visits.load(Ordering::Relaxed)
    }

    #[inline]
    fn reward(&self) -> f64 {
        f64::from_bits(self.reward_bits.load(Ordering::Relaxed))
    }

    #[inline]
    fn vloss(&self) -> u64 {
        self.vloss.load(Ordering::Relaxed)
    }
}

impl<T: Clone> Clone for Node<T> {
    fn clone(&self) -> Self {
        Node {
            data: self.data.clone(),
            parent: self.parent,
            children: self.children.clone(),
            visits: AtomicU64::new(self.visits()),
            reward_bits: AtomicU64::new(self.reward_bits.load(Ordering::Relaxed)),
            vloss: AtomicU64::new(self.vloss()),
        }
    }
}

/// An arena-allocated search tree with UCT sampling.
///
/// Structure mutation ([`Tree::add_child`]) takes `&mut self`; all sampling
/// statistics go through `&self` and atomics, so a `&Tree` shared across
/// threads supports concurrent sampling.
#[derive(Debug, Clone)]
pub struct Tree<T> {
    nodes: Vec<Node<T>>,
}

impl<T> Tree<T> {
    /// The root node id of every tree.
    pub const ROOT: NodeId = NodeId(0);

    /// Create a tree holding only a root.
    pub fn new(root_data: T) -> Self {
        Tree { nodes: vec![Node::new(root_data, None)] }
    }

    /// Add a child under `parent` (paper `ST.AddChild`), returning its id.
    pub fn add_child(&mut self, parent: NodeId, data: T) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(data, Some(parent)));
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Payload of a node.
    pub fn data(&self, n: NodeId) -> &T {
        &self.nodes[n.index()].data
    }

    /// Children of a node.
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.nodes[n.index()].children
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()].parent
    }

    /// `true` iff the node has no children (paper field `isLeaf`).
    pub fn is_leaf(&self, n: NodeId) -> bool {
        self.nodes[n.index()].children.is_empty()
    }

    /// Number of times the node appeared on a sampled path.
    pub fn visits(&self, n: NodeId) -> u64 {
        self.nodes[n.index()].visits()
    }

    /// Accumulated reward over all sampled paths through the node.
    pub fn reward(&self, n: NodeId) -> f64 {
        self.nodes[n.index()].reward()
    }

    /// Number of in-flight concurrent descents through the node (virtual
    /// losses applied but not yet released). Zero outside parallel
    /// sampling.
    pub fn virtual_losses(&self, n: NodeId) -> u64 {
        self.nodes[n.index()].vloss()
    }

    /// Mean observed reward (`NaN` before the first visit).
    pub fn mean_reward(&self, n: NodeId) -> f64 {
        let node = &self.nodes[n.index()];
        node.reward() / node.visits() as f64
    }

    /// Total number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// `ST.MaxUctChild`: the child of `n` maximizing the UCT formula.
    /// Unvisited children take absolute priority; ties are broken uniformly
    /// at random (paper Algorithm 2 returns a "random pick" from the
    /// maximizing set).
    ///
    /// Returns `None` for leaves.
    pub fn max_uct_child<R: Rng + ?Sized>(&self, n: NodeId, rng: &mut R) -> Option<NodeId> {
        self.uct_child(n, rng, false)
    }

    /// UCT child selection; with `with_vloss`, in-flight descents count as
    /// visits with zero reward (virtual loss). With zero virtual losses in
    /// flight both modes are arithmetically identical.
    fn uct_child<R: Rng + ?Sized>(
        &self,
        n: NodeId,
        rng: &mut R,
        with_vloss: bool,
    ) -> Option<NodeId> {
        let node = &self.nodes[n.index()];
        if node.children.is_empty() {
            return None;
        }
        let eff = |node: &Node<T>| {
            if with_vloss {
                node.visits() + node.vloss()
            } else {
                node.visits()
            }
        };
        // Reservoir-pick among unvisited children.
        let mut unvisited_seen = 0usize;
        let mut pick = None;
        for &c in &node.children {
            if eff(&self.nodes[c.index()]) == 0 {
                unvisited_seen += 1;
                if rng.gen_range(0..unvisited_seen) == 0 {
                    pick = Some(c);
                }
            }
        }
        if pick.is_some() {
            return pick;
        }
        // All children visited: maximize the UCT bound, random tie-break.
        // In vloss mode the caller holds one virtual loss on `n` itself
        // (applied on the way down); exclude it so a descent with no other
        // threads in flight scores exactly like the plain one.
        let parent_eff = if with_vloss {
            (node.visits() + node.vloss()).saturating_sub(1)
        } else {
            node.visits()
        };
        let ln_n = (parent_eff.max(1) as f64).ln();
        let mut best_score = f64::NEG_INFINITY;
        let mut ties = 0usize;
        let mut best = node.children[0];
        for &c in &node.children {
            let ch = &self.nodes[c.index()];
            let n_eff = eff(ch) as f64;
            let score = ch.reward() / n_eff + (2.0 * ln_n / n_eff).sqrt();
            if score > best_score {
                best_score = score;
                best = c;
                ties = 1;
            } else if score == best_score {
                ties += 1;
                if rng.gen_range(0..ties) == 0 {
                    best = c;
                }
            }
        }
        Some(best)
    }

    /// The child with the highest **mean** reward — exploitation only, used
    /// by the main loop when committing to the next sentence (Algorithm 1
    /// "cannot afford further exploration"). Unvisited children lose
    /// against any visited one. Returns `None` for leaves.
    pub fn best_child(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()].children.iter().copied().max_by(|&a, &b| {
            let ma = self.mean_or_neg_inf(a);
            let mb = self.mean_or_neg_inf(b);
            ma.total_cmp(&mb)
        })
    }

    fn mean_or_neg_inf(&self, n: NodeId) -> f64 {
        let node = &self.nodes[n.index()];
        let visits = node.visits();
        if visits == 0 {
            f64::NEG_INFINITY
        } else {
            node.reward() / visits as f64
        }
    }

    /// One sampling iteration (paper `ST.Sample` / Algorithm 2 `SAMPLE`):
    /// descend from `from` by UCT until a leaf, evaluate the leaf's payload
    /// with `eval`, and add the returned reward to every node on the path.
    ///
    /// Returns the observed reward.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        from: NodeId,
        rng: &mut R,
        eval: impl FnOnce(&T) -> f64,
    ) -> f64 {
        let path = self.select_path(from, rng);
        let leaf = *path.last().expect("path contains at least `from`");
        let reward = eval(&self.nodes[leaf.index()].data);
        self.update_path(&path, reward);
        reward
    }

    /// Descend from `from` by UCT choices until a leaf, returning the full
    /// path (including `from`). Callers that need the path's payloads to
    /// compute the reward (as the speech planner does — the reward depends
    /// on every fragment on the path, not just the leaf) use this together
    /// with [`Tree::update_path`].
    pub fn select_path<R: Rng + ?Sized>(&self, from: NodeId, rng: &mut R) -> Vec<NodeId> {
        let mut path = vec![from];
        let mut cur = from;
        while let Some(next) = self.max_uct_child(cur, rng) {
            path.push(next);
            cur = next;
        }
        path
    }

    /// [`Tree::select_path`] for concurrent samplers: every node on the
    /// returned path carries one **virtual loss** (an in-flight visit with
    /// zero reward) that steers other threads away from the same subtree.
    /// The path MUST be committed with [`Tree::update_path_vloss`], which
    /// releases the virtual losses.
    pub fn select_path_vloss<R: Rng + ?Sized>(&self, from: NodeId, rng: &mut R) -> Vec<NodeId> {
        let mut path = vec![from];
        self.nodes[from.index()].vloss.fetch_add(1, Ordering::AcqRel);
        let mut cur = from;
        while let Some(next) = self.uct_child(cur, rng, true) {
            self.nodes[next.index()].vloss.fetch_add(1, Ordering::AcqRel);
            path.push(next);
            cur = next;
        }
        path
    }

    /// Descend from `from` choosing children uniformly at random — the
    /// no-prioritization ablation of UCT (pure Monte-Carlo sampling without
    /// the exploration/exploitation balance the paper argues for).
    pub fn random_path<R: Rng + ?Sized>(&self, from: NodeId, rng: &mut R) -> Vec<NodeId> {
        let mut path = vec![from];
        let mut cur = from;
        loop {
            let children = self.children(cur);
            if children.is_empty() {
                return path;
            }
            cur = children[rng.gen_range(0..children.len())];
            path.push(cur);
        }
    }

    /// Add `reward` and one visit to every node in `path`
    /// (the statistics update of Algorithm 2's `SAMPLE`).
    pub fn update_path(&self, path: &[NodeId], reward: f64) {
        for &n in path {
            let node = &self.nodes[n.index()];
            node.visits.fetch_add(1, Ordering::AcqRel);
            fetch_add_f64(&node.reward_bits, reward);
        }
    }

    /// Commit a path obtained from [`Tree::select_path_vloss`]: records the
    /// visit and reward and releases the path's virtual losses.
    pub fn update_path_vloss(&self, path: &[NodeId], reward: f64) {
        for &n in path {
            let node = &self.nodes[n.index()];
            node.visits.fetch_add(1, Ordering::AcqRel);
            fetch_add_f64(&node.reward_bits, reward);
            node.vloss.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Depth of the subtree rooted at `n` (a leaf has depth 0).
    pub fn depth(&self, n: NodeId) -> usize {
        self.children(n).iter().map(|&c| 1 + self.depth(c)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn arena_structure() {
        let mut t = Tree::new(0u32);
        let a = t.add_child(Tree::<u32>::ROOT, 1);
        let b = t.add_child(Tree::<u32>::ROOT, 2);
        let c = t.add_child(a, 3);
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.children(Tree::<u32>::ROOT), &[a, b]);
        assert_eq!(t.parent(c), Some(a));
        assert_eq!(t.parent(Tree::<u32>::ROOT), None);
        assert!(t.is_leaf(b));
        assert!(!t.is_leaf(a));
        assert_eq!(*t.data(c), 3);
        assert_eq!(t.depth(Tree::<u32>::ROOT), 2);
    }

    #[test]
    fn unvisited_children_sampled_first() {
        let mut t = Tree::new(());
        for _ in 0..5 {
            t.add_child(Tree::<()>::ROOT, ());
        }
        let mut r = rng(1);
        for _ in 0..5 {
            t.sample(Tree::<()>::ROOT, &mut r, |_| 0.5);
        }
        // After exactly 5 samples every child was visited exactly once.
        for &c in t.children(Tree::<()>::ROOT) {
            assert_eq!(t.visits(c), 1);
        }
    }

    #[test]
    fn sample_updates_whole_path() {
        let mut t = Tree::new("root");
        let mid = t.add_child(Tree::<&str>::ROOT, "mid");
        let leaf = t.add_child(mid, "leaf");
        let mut r = rng(2);
        let reward = t.sample(Tree::<&str>::ROOT, &mut r, |_| 0.7);
        assert_eq!(reward, 0.7);
        for n in [Tree::<&str>::ROOT, mid, leaf] {
            assert_eq!(t.visits(n), 1);
            assert!((t.reward(n) - 0.7).abs() < 1e-12);
        }
    }

    #[test]
    fn uct_converges_to_better_arm() {
        // Two-armed bandit: arm "a" pays 0.9, arm "b" pays 0.1.
        let mut t = Tree::new("root");
        let a = t.add_child(Tree::<&str>::ROOT, "a");
        let b = t.add_child(Tree::<&str>::ROOT, "b");
        let mut r = rng(3);
        for _ in 0..500 {
            t.sample(Tree::<&str>::ROOT, &mut r, |&d| if d == "a" { 0.9 } else { 0.1 });
        }
        assert!(
            t.visits(a) > 5 * t.visits(b),
            "exploitation dominates: {} vs {}",
            t.visits(a),
            t.visits(b)
        );
        assert_eq!(t.best_child(Tree::<&str>::ROOT), Some(a));
    }

    #[test]
    fn exploration_revisits_inferior_arm() {
        // UCT must not starve the worse arm completely.
        let mut t = Tree::new("root");
        let _a = t.add_child(Tree::<&str>::ROOT, "a");
        let b = t.add_child(Tree::<&str>::ROOT, "b");
        let mut r = rng(4);
        for _ in 0..300 {
            t.sample(Tree::<&str>::ROOT, &mut r, |&d| if d == "a" { 0.9 } else { 0.1 });
        }
        assert!(t.visits(b) >= 5, "inferior arm still explored: {}", t.visits(b));
    }

    #[test]
    fn best_child_ignores_unvisited() {
        let mut t = Tree::new(());
        let a = t.add_child(Tree::<()>::ROOT, ());
        let _b = t.add_child(Tree::<()>::ROOT, ());
        let mut r = rng(5);
        t.sample(a, &mut r, |_| 0.2);
        assert_eq!(t.best_child(Tree::<()>::ROOT), Some(a));
    }

    #[test]
    fn max_uct_child_none_for_leaf() {
        let t = Tree::new(());
        let mut r = rng(6);
        assert_eq!(t.clone().max_uct_child(Tree::<()>::ROOT, &mut r), None);
        assert_eq!(t.best_child(Tree::<()>::ROOT), None);
    }

    #[test]
    fn select_path_reaches_leaf_and_update_path_accumulates() {
        let mut t = Tree::new(0u8);
        let a = t.add_child(Tree::<u8>::ROOT, 1);
        let leaf = t.add_child(a, 2);
        let mut r = rng(7);
        let path = t.select_path(Tree::<u8>::ROOT, &mut r);
        assert_eq!(path, vec![Tree::<u8>::ROOT, a, leaf]);
        t.update_path(&path, 0.4);
        t.update_path(&path[1..], 0.6);
        assert_eq!(t.visits(Tree::<u8>::ROOT), 1);
        assert_eq!(t.visits(a), 2);
        assert!((t.reward(a) - 1.0).abs() < 1e-12);
        assert!((t.mean_reward(a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let build = |seed| {
            let mut t = Tree::new(());
            for _ in 0..4 {
                let c = t.add_child(Tree::<()>::ROOT, ());
                for _ in 0..3 {
                    t.add_child(c, ());
                }
            }
            let mut r = rng(seed);
            let mut rewards = Vec::new();
            for i in 0..50 {
                rewards.push(t.sample(Tree::<()>::ROOT, &mut r, |_| (i % 7) as f64 / 7.0));
            }
            (rewards, t.visits(Tree::<()>::ROOT))
        };
        assert_eq!(build(9), build(9));
    }

    #[test]
    fn clone_copies_statistics() {
        let mut t = Tree::new(());
        let a = t.add_child(Tree::<()>::ROOT, ());
        let mut r = rng(10);
        for _ in 0..7 {
            t.sample(Tree::<()>::ROOT, &mut r, |_| 0.25);
        }
        let t2 = t.clone();
        assert_eq!(t2.visits(a), t.visits(a));
        assert!((t2.reward(a) - t.reward(a)).abs() < 1e-12);
    }

    #[test]
    fn vloss_descent_spreads_until_committed() {
        // With a virtual loss applied, a second in-flight descent avoids
        // the subtree the first one is exploring.
        let mut t = Tree::new(());
        let a = t.add_child(Tree::<()>::ROOT, ());
        let b = t.add_child(Tree::<()>::ROOT, ());
        // Visit both once so the unvisited-first rule is out of the way.
        let mut r = rng(11);
        for _ in 0..2 {
            t.sample(Tree::<()>::ROOT, &mut r, |_| 0.5);
        }
        let p1 = t.select_path_vloss(Tree::<()>::ROOT, &mut r);
        let p2 = t.select_path_vloss(Tree::<()>::ROOT, &mut r);
        // Equal means + equal visits: the vloss from p1 tips p2 to the
        // other arm.
        assert_ne!(p1[1], p2[1], "second descent repelled by virtual loss");
        assert_eq!(t.virtual_losses(p1[1]), 1);
        t.update_path_vloss(&p1, 0.5);
        t.update_path_vloss(&p2, 0.5);
        for n in [Tree::<()>::ROOT, a, b] {
            assert_eq!(t.virtual_losses(n), 0, "all virtual losses released");
        }
        assert_eq!(t.visits(Tree::<()>::ROOT), 4);
    }

    #[test]
    fn vloss_free_descent_matches_plain_descent() {
        // Bit-reproducibility claim: with no virtual losses in flight,
        // select_path_vloss chooses exactly like select_path.
        let mut t = Tree::new(());
        for _ in 0..3 {
            let c = t.add_child(Tree::<()>::ROOT, ());
            for _ in 0..2 {
                t.add_child(c, ());
            }
        }
        let mut r1 = rng(12);
        let mut r2 = rng(12);
        for i in 0..40 {
            let plain = t.select_path(Tree::<()>::ROOT, &mut r1);
            let vloss = t.select_path_vloss(Tree::<()>::ROOT, &mut r2);
            assert_eq!(plain, vloss, "iteration {i}");
            // Commit only the vloss path so the tree advances identically
            // for both rngs (update_path_vloss == update_path + release).
            t.update_path_vloss(&vloss, (i % 5) as f64 / 5.0);
        }
    }
}
