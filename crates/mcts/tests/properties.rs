//! Property-based tests of the UCT tree invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use voxolap_mcts::{NodeId, Tree};

/// Build a random tree shape from a branching list.
fn build_tree(shape: &[u8]) -> Tree<u32> {
    let mut tree = Tree::new(0u32);
    let mut frontier = vec![Tree::<u32>::ROOT];
    let mut next_val = 1u32;
    for &b in shape {
        let mut next = Vec::new();
        for &n in &frontier {
            for _ in 0..b {
                next.push(tree.add_child(n, next_val));
                next_val += 1;
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn visits_flow_conservation(
        shape in prop::collection::vec(1u8..4, 1..4),
        samples in 1usize..120,
        seed in 0u64..64,
    ) {
        let mut tree = build_tree(&shape);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..samples {
            tree.sample(Tree::<u32>::ROOT, &mut rng, |&v| (v % 10) as f64 / 10.0);
        }
        // Every sample traverses root -> leaf: the root's visits equal the
        // sample count, and each internal node's visits equal the sum of
        // its children's visits.
        prop_assert_eq!(tree.visits(Tree::<u32>::ROOT), samples as u64);
        for n in 0..tree.node_count() as u32 {
            let node = NodeId(n);
            if !tree.is_leaf(node) {
                let child_sum: u64 =
                    tree.children(node).iter().map(|&c| tree.visits(c)).sum();
                prop_assert_eq!(tree.visits(node), child_sum, "node {}", n);
            }
        }
    }

    #[test]
    fn rewards_flow_conservation(
        shape in prop::collection::vec(1u8..4, 1..4),
        samples in 1usize..120,
        seed in 0u64..64,
    ) {
        let mut tree = build_tree(&shape);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut total = 0.0;
        for _ in 0..samples {
            total += tree.sample(Tree::<u32>::ROOT, &mut rng, |&v| (v % 7) as f64 / 7.0);
        }
        prop_assert!((tree.reward(Tree::<u32>::ROOT) - total).abs() < 1e-9);
        for n in 0..tree.node_count() as u32 {
            let node = NodeId(n);
            if !tree.is_leaf(node) {
                let child_sum: f64 =
                    tree.children(node).iter().map(|&c| tree.reward(c)).sum();
                prop_assert!((tree.reward(node) - child_sum).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn select_path_always_ends_at_leaf(
        shape in prop::collection::vec(1u8..4, 1..5),
        seed in 0u64..64,
    ) {
        let tree = build_tree(&shape);
        let mut rng = StdRng::seed_from_u64(seed);
        let path = tree.select_path(Tree::<u32>::ROOT, &mut rng);
        prop_assert!(tree.is_leaf(*path.last().unwrap()));
        prop_assert_eq!(path[0], Tree::<u32>::ROOT);
        // Consecutive path entries are parent/child.
        for w in path.windows(2) {
            prop_assert_eq!(tree.parent(w[1]), Some(w[0]));
        }
        // Random descent has the same structural guarantees.
        let rpath = tree.random_path(Tree::<u32>::ROOT, &mut rng);
        prop_assert!(tree.is_leaf(*rpath.last().unwrap()));
    }

    #[test]
    fn mean_rewards_are_bounded_by_observations(
        shape in prop::collection::vec(1u8..3, 1..4),
        samples in 1usize..100,
        seed in 0u64..64,
    ) {
        let mut tree = build_tree(&shape);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..samples {
            tree.sample(Tree::<u32>::ROOT, &mut rng, |&v| (v % 5) as f64 / 5.0);
        }
        for n in 0..tree.node_count() as u32 {
            let node = NodeId(n);
            if tree.visits(node) > 0 {
                let mean = tree.mean_reward(node);
                prop_assert!((0.0..=0.81).contains(&mean), "mean {} outside reward range", mean);
            }
        }
    }
}
