//! Property-style tests of the UCT tree invariants, driven by seeded
//! random case generation (48 cases per property, mirroring the old
//! proptest configuration).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use voxolap_mcts::{NodeId, Tree};

/// Build a random tree shape from a branching list.
fn build_tree(shape: &[u8]) -> Tree<u32> {
    let mut tree = Tree::new(0u32);
    let mut frontier = vec![Tree::<u32>::ROOT];
    let mut next_val = 1u32;
    for &b in shape {
        let mut next = Vec::new();
        for &n in &frontier {
            for _ in 0..b {
                next.push(tree.add_child(n, next_val));
                next_val += 1;
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    tree
}

/// One random case: a tree shape plus sample/seed parameters.
fn random_case(gen: &mut StdRng, max_depth: usize) -> (Vec<u8>, usize, u64) {
    let depth = gen.gen_range(1..max_depth);
    let shape: Vec<u8> = (0..depth).map(|_| gen.gen_range(1u8..4)).collect();
    let samples = gen.gen_range(1usize..120);
    let seed = gen.gen_range(0u64..64);
    (shape, samples, seed)
}

const CASES: usize = 48;

#[test]
fn visits_flow_conservation() {
    let mut gen = StdRng::seed_from_u64(0xfeed_0001);
    for _ in 0..CASES {
        let (shape, samples, seed) = random_case(&mut gen, 4);
        let tree = build_tree(&shape);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..samples {
            tree.sample(Tree::<u32>::ROOT, &mut rng, |&v| (v % 10) as f64 / 10.0);
        }
        // Every sample traverses root -> leaf: the root's visits equal the
        // sample count, and each internal node's visits equal the sum of
        // its children's visits.
        assert_eq!(tree.visits(Tree::<u32>::ROOT), samples as u64);
        for n in 0..tree.node_count() as u32 {
            let node = NodeId(n);
            if !tree.is_leaf(node) {
                let child_sum: u64 = tree.children(node).iter().map(|&c| tree.visits(c)).sum();
                assert_eq!(tree.visits(node), child_sum, "node {n} shape {shape:?}");
            }
        }
    }
}

#[test]
fn rewards_flow_conservation() {
    let mut gen = StdRng::seed_from_u64(0xfeed_0002);
    for _ in 0..CASES {
        let (shape, samples, seed) = random_case(&mut gen, 4);
        let tree = build_tree(&shape);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut total = 0.0;
        for _ in 0..samples {
            total += tree.sample(Tree::<u32>::ROOT, &mut rng, |&v| (v % 7) as f64 / 7.0);
        }
        assert!((tree.reward(Tree::<u32>::ROOT) - total).abs() < 1e-9);
        for n in 0..tree.node_count() as u32 {
            let node = NodeId(n);
            if !tree.is_leaf(node) {
                let child_sum: f64 = tree.children(node).iter().map(|&c| tree.reward(c)).sum();
                assert!((tree.reward(node) - child_sum).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn select_path_always_ends_at_leaf() {
    let mut gen = StdRng::seed_from_u64(0xfeed_0003);
    for _ in 0..CASES {
        let (shape, _, seed) = random_case(&mut gen, 5);
        let tree = build_tree(&shape);
        let mut rng = StdRng::seed_from_u64(seed);
        let path = tree.select_path(Tree::<u32>::ROOT, &mut rng);
        assert!(tree.is_leaf(*path.last().unwrap()));
        assert_eq!(path[0], Tree::<u32>::ROOT);
        // Consecutive path entries are parent/child.
        for w in path.windows(2) {
            assert_eq!(tree.parent(w[1]), Some(w[0]));
        }
        // Random descent has the same structural guarantees.
        let rpath = tree.random_path(Tree::<u32>::ROOT, &mut rng);
        assert!(tree.is_leaf(*rpath.last().unwrap()));
    }
}

#[test]
fn mean_rewards_are_bounded_by_observations() {
    let mut gen = StdRng::seed_from_u64(0xfeed_0004);
    for _ in 0..CASES {
        let (shape, samples, seed) = random_case(&mut gen, 4);
        let shape: Vec<u8> = shape.iter().map(|&b| b.min(2)).collect();
        let tree = build_tree(&shape);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..samples.min(99) {
            tree.sample(Tree::<u32>::ROOT, &mut rng, |&v| (v % 5) as f64 / 5.0);
        }
        for n in 0..tree.node_count() as u32 {
            let node = NodeId(n);
            if tree.visits(node) > 0 {
                let mean = tree.mean_reward(node);
                assert!((0.0..=0.81).contains(&mean), "mean {mean} outside reward range");
            }
        }
    }
}
