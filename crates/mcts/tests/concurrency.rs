//! Concurrency stress tests: many sampler threads hammer one shared tree
//! and every statistic must survive exactly — the lock-free counters may
//! not lose a single visit or reward under contention.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use voxolap_mcts::{NodeId, Tree};

const THREADS: usize = 4;
const SAMPLES_PER_THREAD: usize = 5_000;

fn build_tree(branching: &[usize]) -> Tree<u32> {
    let mut tree = Tree::new(0u32);
    let mut frontier = vec![Tree::<u32>::ROOT];
    let mut val = 1u32;
    for &b in branching {
        let mut next = Vec::new();
        for &n in &frontier {
            for _ in 0..b {
                next.push(tree.add_child(n, val));
                val += 1;
            }
        }
        frontier = next;
    }
    tree
}

#[test]
fn no_lost_updates_under_contention() {
    let tree = build_tree(&[4, 3, 2]);
    let total_reward = AtomicU64::new(0f64.to_bits());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let tree = &tree;
            let total_reward = &total_reward;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xbeef + t as u64);
                let mut local = 0.0;
                for _ in 0..SAMPLES_PER_THREAD {
                    let path = tree.select_path_vloss(Tree::<u32>::ROOT, &mut rng);
                    let leaf = *path.last().unwrap();
                    let reward = (*tree.data(leaf) % 11) as f64 / 10.0;
                    tree.update_path_vloss(&path, reward);
                    local += reward;
                }
                // Fold the thread's reward into a shared f64 (same CAS
                // idiom the tree uses) for the conservation check below.
                let mut cur = total_reward.load(Ordering::Relaxed);
                loop {
                    let next = (f64::from_bits(cur) + local).to_bits();
                    match total_reward.compare_exchange_weak(
                        cur,
                        next,
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(actual) => cur = actual,
                    }
                }
            });
        }
    });

    let expected = (THREADS * SAMPLES_PER_THREAD) as u64;

    // Not a single visit lost: the root saw every sample, and each level
    // of the tree accounts for all of them.
    assert_eq!(tree.visits(Tree::<u32>::ROOT), expected);
    let root_child_sum: u64 =
        tree.children(Tree::<u32>::ROOT).iter().map(|&c| tree.visits(c)).sum();
    assert_eq!(root_child_sum, expected, "sum of root-child visits == total path updates");

    // Per-node flow conservation and released virtual losses everywhere.
    for n in 0..tree.node_count() as u32 {
        let node = NodeId(n);
        assert_eq!(tree.virtual_losses(node), 0, "node {n} has in-flight vloss after join");
        if !tree.is_leaf(node) {
            let child_sum: u64 = tree.children(node).iter().map(|&c| tree.visits(c)).sum();
            assert_eq!(tree.visits(node), child_sum, "visit flow at node {n}");
            let child_reward: f64 = tree.children(node).iter().map(|&c| tree.reward(c)).sum();
            assert!(
                (tree.reward(node) - child_reward).abs() < 1e-6,
                "reward flow at node {n}: {} vs {}",
                tree.reward(node),
                child_reward
            );
        }
    }

    // Rewards were in [0, 1], so every visited mean must be too.
    for n in 0..tree.node_count() as u32 {
        let node = NodeId(n);
        if tree.visits(node) > 0 {
            let mean = tree.mean_reward(node);
            assert!((0.0..=1.0).contains(&mean), "node {n} mean {mean} outside [0,1]");
        }
    }

    // Root reward sum equals the sum of all observed rewards (no lost or
    // double-counted CAS update).
    let observed = f64::from_bits(total_reward.load(Ordering::Relaxed));
    assert!(
        (tree.reward(Tree::<u32>::ROOT) - observed).abs() < 1e-6,
        "root reward {} vs observed {}",
        tree.reward(Tree::<u32>::ROOT),
        observed
    );
}

#[test]
fn mixed_plain_and_vloss_updates_conserve_counts() {
    // Plain update_path (used by the deterministic single-thread mode)
    // and vloss commits interleave on the same tree without interfering.
    let tree = build_tree(&[3, 3]);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let tree = &tree;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xabba + t as u64);
                for i in 0..2_000 {
                    if (t + i) % 2 == 0 {
                        let path = tree.select_path_vloss(Tree::<u32>::ROOT, &mut rng);
                        tree.update_path_vloss(&path, rng.gen::<f64>());
                    } else {
                        let path = tree.select_path(Tree::<u32>::ROOT, &mut rng);
                        tree.update_path(&path, rng.gen::<f64>());
                    }
                }
            });
        }
    });
    assert_eq!(tree.visits(Tree::<u32>::ROOT), (THREADS * 2_000) as u64);
    for n in 0..tree.node_count() as u32 {
        assert_eq!(tree.virtual_losses(NodeId(n)), 0);
    }
}
