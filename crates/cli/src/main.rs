//! `voxolap` — voice-based OLAP from the command line.
//!
//! ```text
//! voxolap ask "how does the cancellation probability depend on region and season?"
//! voxolap repl                      # interactive keyword session
//! voxolap stats                     # dataset statistics
//! voxolap compare "<question>"      # all four approaches side by side
//! ```
//!
//! Options (before the subcommand):
//!   --data flights|salary   dataset (default flights)
//!   --rows N                generated rows for flights (default 200000)
//!   --scale-rows N          paper-scale synthetic scale-up (5.3M-50M rows);
//!                           takes precedence over --rows
//!   --csv PATH              load a CSV exported by voxolap instead
//!   --approach NAME         holistic|parallel|optimal|unmerged|prior
//!   --threads N             planning threads for --approach parallel
//!                           (default: all cores; 1 = deterministic)
//!   --chars-per-sec R       printed "speaking" rate (default 15; 0 = instant)
//!   --uncertainty MODE      off|warning|bounds
//!   --seed N                RNG seed (default 42)
//!   --cache-mb N            cross-query semantic cache budget in MiB
//!                           (default 64; 0 disables caching)
//!   --strict                fail on the first malformed CSV row instead of
//!                           skipping it (lenient-skip is the default)
//!   --fault-plan SPEC       deterministic fault injection + degradation
//!                           ladder, e.g. "seed=7,read=0.05,budget=64"
//!   --data-dir PATH         recover ingested batches from a durable store
//!                           (WAL + snapshots, DESIGN.md §17) on top of the
//!                           generated/loaded seed before answering; a
//!                           clean-shutdown marker is written on exit
//!   --fsync-mode MODE       always|batch|off (default batch); only
//!                           meaningful with --data-dir

use std::io::BufRead;
use std::process::ExitCode;
use std::sync::Arc;

use voxolap_core::approach::Vocalizer;
use voxolap_core::holistic::{Holistic, HolisticConfig};
use voxolap_core::optimal::Optimal;
use voxolap_core::parallel::ParallelHolistic;
use voxolap_core::prior::PriorGreedy;
use voxolap_core::uncertainty::UncertaintyMode;
use voxolap_core::unmerged::Unmerged;
use voxolap_core::voice::{InstantVoice, VoiceOutput};
use voxolap_core::CancelToken;
use voxolap_data::flights::FlightsConfig;
use voxolap_data::salary::SalaryConfig;
use voxolap_data::stats::DatasetStats;
use voxolap_data::{DurabilityOptions, DurableTable, FsyncMode, Table};
use voxolap_engine::query::Query;
use voxolap_engine::semantic::SemanticCache;
use voxolap_faults::Resilience;
use voxolap_voice::question::parse_question;
use voxolap_voice::session::{Response, Session, StreamEvent};
use voxolap_voice::tts::RealTimeVoice;

/// Parsed command-line options.
struct Options {
    data: String,
    rows: usize,
    csv: Option<String>,
    approach: String,
    threads: Option<usize>,
    chars_per_sec: f64,
    uncertainty: UncertaintyMode,
    seed: u64,
    cache_mb: usize,
    strict: bool,
    fault_plan: Option<String>,
    data_dir: Option<String>,
    fsync_mode: FsyncMode,
    command: String,
    args: Vec<String>,
}

fn usage() -> &'static str {
    "usage: voxolap [options] <ask \"question\" | repl | stats | compare \"question\">\n\
     options:\n\
       --data flights|salary   dataset to generate (default flights)\n\
       --rows N                rows for the flights dataset (default 200000)\n\
       --scale-rows N          paper-scale synthetic scale-up (5.3M-50M); overrides --rows\n\
       --csv PATH              load rows from a CSV exported by voxolap\n\
       --approach NAME         holistic|parallel|optimal|unmerged|prior (default holistic)\n\
       --threads N             planning threads for --approach parallel (default: all cores)\n\
       --chars-per-sec R       speaking rate for printed output (default 15; 0 = instant)\n\
       --uncertainty MODE      off|warning|bounds (default off)\n\
       --seed N                RNG seed (default 42)\n\
       --cache-mb N            semantic-cache budget in MiB (default 64; 0 disables)\n\
       --strict                fail on the first malformed CSV row (default: skip + count)\n\
       --fault-plan SPEC       fault injection + degradation ladder, e.g.\n\
                               \"seed=7,read=0.05,sample=0.01,budget=64,breaker=5\"\n\
       --data-dir PATH         recover durable ingest state (WAL + snapshots) over the seed\n\
       --fsync-mode MODE       always|batch|off (default batch); with --data-dir"
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        data: "flights".into(),
        rows: 200_000,
        csv: None,
        approach: "holistic".into(),
        threads: None,
        chars_per_sec: 15.0,
        uncertainty: UncertaintyMode::Off,
        seed: 42,
        cache_mb: 64,
        strict: false,
        fault_plan: None,
        data_dir: None,
        fsync_mode: FsyncMode::Batch,
        command: String::new(),
        args: Vec::new(),
    };
    let mut scale_rows: Option<usize> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i).cloned().ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--data" => opts.data = take_value(&mut i)?,
            "--rows" => {
                opts.rows =
                    take_value(&mut i)?.parse().map_err(|_| "bad --rows value".to_string())?
            }
            "--scale-rows" => {
                scale_rows = Some(
                    take_value(&mut i)?
                        .parse()
                        .map_err(|_| "bad --scale-rows value".to_string())?,
                )
            }
            "--csv" => opts.csv = Some(take_value(&mut i)?),
            "--approach" => opts.approach = take_value(&mut i)?,
            "--threads" => {
                let n: usize =
                    take_value(&mut i)?.parse().map_err(|_| "bad --threads value".to_string())?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                opts.threads = Some(n);
            }
            "--chars-per-sec" => {
                opts.chars_per_sec = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "bad --chars-per-sec value".to_string())?
            }
            "--uncertainty" => {
                opts.uncertainty = match take_value(&mut i)?.as_str() {
                    "off" => UncertaintyMode::Off,
                    "warning" => UncertaintyMode::Warning { max_relative_width: 0.5 },
                    "bounds" => UncertaintyMode::SpokenBounds,
                    other => return Err(format!("unknown uncertainty mode {other:?}")),
                }
            }
            "--seed" => {
                opts.seed =
                    take_value(&mut i)?.parse().map_err(|_| "bad --seed value".to_string())?
            }
            "--cache-mb" => {
                opts.cache_mb =
                    take_value(&mut i)?.parse().map_err(|_| "bad --cache-mb value".to_string())?
            }
            "--strict" => opts.strict = true,
            "--fault-plan" => opts.fault_plan = Some(take_value(&mut i)?),
            "--data-dir" => opts.data_dir = Some(take_value(&mut i)?),
            "--fsync-mode" => opts.fsync_mode = FsyncMode::parse(&take_value(&mut i)?)?,
            "--help" | "-h" => return Err(usage().to_string()),
            arg if opts.command.is_empty() => opts.command = arg.to_string(),
            arg => opts.args.push(arg.to_string()),
        }
        i += 1;
    }
    if let Some(scaled) = scale_rows {
        opts.rows = scaled;
    }
    if opts.command.is_empty() {
        opts.command = "repl".into();
    }
    Ok(opts)
}

fn load_table(opts: &Options) -> Result<Table, String> {
    if let Some(path) = &opts.csv {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let schema = match opts.data.as_str() {
            "flights" => FlightsConfig::schema(),
            "salary" => SalaryConfig::schema(320),
            other => return Err(format!("unknown --data {other:?}")),
        };
        let mode = if opts.strict {
            voxolap_data::csv::CsvMode::Strict
        } else {
            voxolap_data::csv::CsvMode::Lenient
        };
        let import =
            voxolap_data::csv::import_csv(schema, &text, mode).map_err(|e| e.to_string())?;
        if import.skipped_rows > 0 {
            let first = import.first_error.as_ref().map(|e| e.to_string()).unwrap_or_default();
            eprintln!(
                "warning: skipped {} malformed row(s) in {path} (first: {first}); \
                 use --strict to fail instead",
                import.skipped_rows
            );
        }
        return Ok(import.table);
    }
    match opts.data.as_str() {
        "flights" => {
            eprintln!("generating flights dataset ({} rows)...", opts.rows);
            Ok(FlightsConfig { rows: opts.rows, seed: opts.seed }.generate())
        }
        "salary" => Ok(SalaryConfig::paper_scale().generate()),
        other => Err(format!("unknown --data {other:?}")),
    }
}

/// Build the semantic cache shared across the queries of one invocation
/// (every repl question reuses it; `--cache-mb 0` turns it off).
fn make_cache(opts: &Options) -> Option<Arc<SemanticCache>> {
    (opts.cache_mb > 0).then(|| Arc::new(SemanticCache::with_capacity_mb(opts.cache_mb)))
}

/// Build the resilience bundle from `--fault-plan` (shared by every query
/// of one invocation, like the semantic cache). `None` without the flag —
/// the engines then carry no fault hooks at all.
fn make_resilience(opts: &Options) -> Result<Option<Arc<Resilience>>, String> {
    match &opts.fault_plan {
        Some(spec) => Ok(Some(Arc::new(Resilience::from_spec(spec)?))),
        None => Ok(None),
    }
}

fn make_vocalizer(
    opts: &Options,
    cache: Option<&Arc<SemanticCache>>,
    resilience: Option<&Arc<Resilience>>,
) -> Result<Box<dyn Vocalizer>, String> {
    let config = HolisticConfig {
        seed: opts.seed,
        uncertainty: opts.uncertainty,
        // The CLI's datasets include the 0/1 flights measure; a larger
        // resample keeps estimates informative (see DESIGN.md).
        resample_size: 200,
        // With an instant voice (--chars-per-sec 0) there is no speaking
        // time to overlap, so give each sentence a real sampling floor
        // (~tens of milliseconds of planning).
        min_samples_per_sentence: 8_000,
        ..HolisticConfig::default()
    };
    Ok(match opts.approach.as_str() {
        "holistic" => {
            let mut engine = Holistic::new(config);
            if let Some(cache) = cache {
                engine = engine.with_cache(cache.clone());
            }
            if let Some(res) = resilience {
                engine = engine.with_resilience(res.clone());
            }
            Box::new(engine)
        }
        // "concurrent" kept as an alias for the pre-parallel engine name.
        "parallel" | "concurrent" => {
            let mut engine = ParallelHolistic::new(config);
            if let Some(n) = opts.threads {
                engine = engine.with_threads(n);
            }
            if let Some(cache) = cache {
                engine = engine.with_cache(cache.clone());
            }
            if let Some(res) = resilience {
                engine = engine.with_resilience(res.clone());
            }
            Box::new(engine)
        }
        "optimal" => {
            let mut engine = Optimal::default();
            if let Some(cache) = cache {
                engine = engine.with_cache(cache.clone());
            }
            Box::new(engine)
        }
        "unmerged" => Box::new(Unmerged::new(voxolap_core::unmerged::UnmergedConfig {
            seed: opts.seed,
            // Same estimator configuration as the holistic approach so the
            // in-CLI comparison isolates the planning strategy.
            resample_size: 200,
            ..Default::default()
        })),
        "prior" => Box::new(PriorGreedy),
        other => return Err(format!("unknown --approach {other:?}")),
    })
}

/// The approaches that carry the resilience bundle; the rest plan their
/// whole speech up front and have no fault sites to inject into.
fn supports_resilience(approach: &str) -> bool {
    matches!(approach, "holistic" | "parallel" | "concurrent")
}

fn make_voice(opts: &Options) -> Box<dyn VoiceOutput> {
    if opts.chars_per_sec <= 0.0 {
        Box::new(InstantVoice::default())
    } else {
        Box::new(RealTimeVoice::new(opts.chars_per_sec))
    }
}

fn speak_stats(outcome: &voxolap_core::outcome::VocalizationOutcome) {
    // The degraded marker only appears on degraded answers, so fault-free
    // runs print byte-identical stats lines to earlier releases.
    let degraded = if outcome.stats.degraded { " | DEGRADED" } else { "" };
    eprintln!(
        "[latency {:?} | {} rows sampled | {} planner iterations | {} chars{degraded}]",
        outcome.latency,
        outcome.stats.rows_read,
        outcome.stats.samples,
        outcome.body_len()
    );
}

/// Speak one query incrementally: print the preamble as soon as the query
/// compiles and each sentence the moment the planner commits to it, while
/// the planner keeps sampling behind the (simulated) speech.
fn speak_stream(
    vocalizer: &dyn Vocalizer,
    table: &Table,
    query: &Query,
    voice: &mut dyn VoiceOutput,
) {
    let mut stream = vocalizer.stream(table, query, voice, CancelToken::never());
    println!("{}", stream.preamble());
    while let Some(sentence) = stream.next_sentence() {
        println!("{}", sentence.text);
    }
    speak_stats(&stream.finish());
}

fn cmd_ask(opts: &Options, table: &Table) -> Result<(), String> {
    let question = opts.args.first().ok_or("ask needs a quoted question")?;
    let query = parse_question(table.schema(), question).map_err(|e| e.to_string())?;
    let cache = make_cache(opts);
    let resilience = make_resilience(opts)?;
    if resilience.is_some() && !supports_resilience(&opts.approach) {
        eprintln!("warning: --fault-plan is ignored by --approach {}", opts.approach);
    }
    let vocalizer = make_vocalizer(opts, cache.as_ref(), resilience.as_ref())?;
    let mut voice = make_voice(opts);
    speak_stream(vocalizer.as_ref(), table, &query, voice.as_mut());
    Ok(())
}

fn cmd_compare(opts: &Options, table: &Table) -> Result<(), String> {
    let question = opts.args.first().ok_or("compare needs a quoted question")?;
    let query = parse_question(table.schema(), question).map_err(|e| e.to_string())?;
    for name in ["holistic", "optimal", "unmerged", "prior"] {
        let sub = Options { approach: name.into(), ..clone_options(opts) };
        // No shared cache or fault plan in compare mode: each approach
        // plans cold so the side-by-side isolates the planning strategies.
        let vocalizer = make_vocalizer(&sub, None, None)?;
        let mut voice: Box<dyn VoiceOutput> = Box::new(InstantVoice::default());
        let outcome = vocalizer.vocalize(table, &query, voice.as_mut());
        println!("\n== {name} (latency {:?}, {} chars) ==", outcome.latency, outcome.body_len());
        let text = outcome.full_text();
        if text.len() > 600 {
            println!("{}…", &text[..600]);
        } else {
            println!("{text}");
        }
    }
    Ok(())
}

fn clone_options(o: &Options) -> Options {
    Options {
        data: o.data.clone(),
        rows: o.rows,
        csv: o.csv.clone(),
        approach: o.approach.clone(),
        threads: o.threads,
        chars_per_sec: o.chars_per_sec,
        uncertainty: o.uncertainty,
        seed: o.seed,
        cache_mb: o.cache_mb,
        strict: o.strict,
        fault_plan: o.fault_plan.clone(),
        data_dir: o.data_dir.clone(),
        fsync_mode: o.fsync_mode,
        command: o.command.clone(),
        args: o.args.clone(),
    }
}

fn cmd_stats(table: &Table) {
    let s = DatasetStats::of(table);
    println!("dataset:    {}", s.name);
    println!("dimensions: {}", s.dimensions.join(", "));
    println!("rows:       {}", s.rows);
    println!("size:       {}", s.size_display());
}

fn cmd_repl(opts: &Options, table: &Table) -> Result<(), String> {
    // One cache for the whole session: repeated and scope-overlapping
    // questions get faster as the session goes on.
    let cache = make_cache(opts);
    let resilience = make_resilience(opts)?;
    if resilience.is_some() && !supports_resilience(&opts.approach) {
        eprintln!("warning: --fault-plan is ignored by --approach {}", opts.approach);
    }
    let vocalizer = make_vocalizer(opts, cache.as_ref(), resilience.as_ref())?;
    let mut voice = make_voice(opts);
    let mut session = Session::new(table);
    eprintln!("voxolap repl — say \"help\" for keywords, \"quit\" to leave.");
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        // Session keywords take priority — "break down by region" must
        // accumulate state, not spawn a one-shot question. Only inputs
        // that look like full questions take the question path.
        let lower = line.to_lowercase();
        let looks_like_question = line.contains('?')
            || lower.starts_with("how ")
            || lower.starts_with("what ")
            || lower.contains("depend");
        if looks_like_question {
            match parse_question(table.schema(), &line) {
                Ok(query) => {
                    speak_stream(vocalizer.as_ref(), table, &query, voice.as_mut());
                    continue;
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    continue;
                }
            }
        }
        match session.input(&line) {
            Ok(Response::Quit) => break,
            Ok(Response::Help(text)) => println!("{text}"),
            Ok(Response::Updated) => {
                let streamed = session.vocalize_streaming(
                    vocalizer.as_ref(),
                    voice.as_mut(),
                    CancelToken::never(),
                    |ev| match ev {
                        StreamEvent::Preamble(p) => println!("{p}"),
                        StreamEvent::Sentence(s) => println!("{}", s.text),
                    },
                );
                match streamed {
                    Ok(outcome) => speak_stats(&outcome),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_options() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let seed = match load_table(&opts) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    // With --data-dir, replay durably ingested batches (e.g. from a
    // voxolap-server run against the same directory) on top of the seed
    // before answering anything.
    let durable = match &opts.data_dir {
        Some(dir) => {
            let options =
                DurabilityOptions { fsync_mode: opts.fsync_mode, ..DurabilityOptions::default() };
            match DurableTable::open(seed, dir, options) {
                Ok((durable, recovery)) => {
                    eprintln!(
                        "recovered {} batch(es), {} row(s) from {dir} \
                         (version {}, torn_truncations {}, {:.1}ms)",
                        recovery.snapshot_batches + recovery.replayed_batches,
                        recovery.replayed_rows,
                        recovery.version,
                        recovery.torn_tail_truncations,
                        recovery.recovery_ms,
                    );
                    durable
                }
                Err(e) => {
                    eprintln!("error: recovery from {dir} failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => DurableTable::memory(seed),
    };
    let table = durable.snapshot();
    let table = table.as_ref();
    let result = match opts.command.as_str() {
        "ask" => cmd_ask(&opts, table),
        "compare" => cmd_compare(&opts, table),
        "stats" => {
            cmd_stats(table);
            Ok(())
        }
        "repl" => cmd_repl(&opts, table),
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    // Leave a clean-shutdown marker so the next open skips tail scanning.
    if let Err(e) = durable.shutdown_clean() {
        eprintln!("warning: could not write clean-shutdown marker: {e}");
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
