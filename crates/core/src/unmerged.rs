//! The "unmerged" comparison approach (paper §5.1).
//!
//! Identical sampling strategy to the holistic planner, but **without**
//! merging vocalization, sampling, and planning: it samples for a fixed
//! budget (the 500 ms interactivity threshold), then commits to the speech
//! with the highest quality estimates and speaks it in one go. Because it
//! "cannot overlap sampling and planning time with vocalization, it has
//! less time to read data and explore the search space" — which is exactly
//! the quality gap Figure 3 shows.

use std::time::{Duration, Instant};

use voxolap_data::Table;
use voxolap_engine::query::Query;
use voxolap_speech::candidates::{CandidateConfig, CandidateGenerator};
use voxolap_speech::constraints::SpeechConstraints;
use voxolap_speech::render::Renderer;

use crate::approach::Vocalizer;
use crate::pipeline::cancel::CancelToken;
use crate::pipeline::stream::{Buffered, SpeechStream};
use crate::sampler::PlannerCore;
use crate::tree::SpeechTree;
use crate::voice::VoiceOutput;

/// How long the unmerged planner may sample before it must speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingBudget {
    /// Wall-clock budget (the paper uses 500 ms).
    WallClock(Duration),
    /// Fixed number of sampling iterations — deterministic, for tests and
    /// reproducible experiments.
    Iterations(u64),
}

/// Configuration of the unmerged planner.
#[derive(Debug, Clone)]
pub struct UnmergedConfig {
    /// User-preference constraints.
    pub constraints: SpeechConstraints,
    /// Candidate-space configuration.
    pub candidates: CandidateConfig,
    /// RNG seed.
    pub seed: u64,
    /// Warm-up rows before tree construction (counted inside the budget).
    pub warmup_rows: usize,
    /// Rows ingested per sampling iteration.
    pub rows_per_iteration: usize,
    /// The sampling budget before output starts.
    pub budget: SamplingBudget,
    /// Hard cap on search-tree size.
    pub max_tree_nodes: usize,
    /// Override the belief σ.
    pub sigma_override: Option<f64>,
    /// Fixed resample size of the cache estimator (paper: 10; planner
    /// default 100 — see `HolisticConfig::resample_size`).
    pub resample_size: usize,
}

impl Default for UnmergedConfig {
    fn default() -> Self {
        UnmergedConfig {
            constraints: SpeechConstraints { max_chars: 300, max_refinements: 2 },
            candidates: CandidateConfig::default(),
            seed: 42,
            warmup_rows: 200,
            rows_per_iteration: 8,
            budget: SamplingBudget::WallClock(Duration::from_millis(500)),
            max_tree_nodes: 500_000,
            sigma_override: None,
            resample_size: 100,
        }
    }
}

/// The unmerged vocalizer.
#[derive(Debug, Clone, Default)]
pub struct Unmerged {
    config: UnmergedConfig,
}

impl Unmerged {
    /// Create with the given configuration.
    pub fn new(config: UnmergedConfig) -> Self {
        Unmerged { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &UnmergedConfig {
        &self.config
    }
}

impl Vocalizer for Unmerged {
    fn name(&self) -> &'static str {
        "unmerged"
    }

    fn stream<'a>(
        &self,
        table: &'a Table,
        query: &'a Query,
        voice: &'a mut dyn VoiceOutput,
        cancel: CancelToken,
    ) -> SpeechStream<'a> {
        let cfg = &self.config;
        let t0 = Instant::now();
        let schema = table.schema();
        let renderer = Renderer::new(schema, query);
        let preamble = renderer.preamble();

        let mut core = PlannerCore::with_resample_size(table, query, cfg.seed, cfg.resample_size);
        let Some(overall) = core.warmup(cfg.warmup_rows) else {
            let latency = t0.elapsed();
            voice.start(&preamble);
            let source = Buffered::no_data(core.rows_read(), None);
            return SpeechStream::new(voice, cancel, t0, preamble, latency, Box::new(source));
        };
        core.calibrate_sigma(overall, cfg.sigma_override);

        let generator = CandidateGenerator::new(schema, query, cfg.candidates.clone());
        let mut tree =
            SpeechTree::build(&generator, &renderer, &cfg.constraints, overall, cfg.max_tree_nodes);

        // Sample until the budget runs out (or the consumer cancels) —
        // no voice output yet.
        match cfg.budget {
            SamplingBudget::WallClock(d) => {
                let deadline = t0 + d;
                while Instant::now() < deadline && !cancel.fired() {
                    core.sample_once(&mut tree, SpeechTree::ROOT, cfg.rows_per_iteration);
                }
            }
            SamplingBudget::Iterations(n) => {
                for _ in 0..n {
                    if cancel.fired() {
                        break;
                    }
                    core.sample_once(&mut tree, SpeechTree::ROOT, cfg.rows_per_iteration);
                }
            }
        }

        // Commit to the best path by mean reward; stop at unvisited nodes.
        let mut current = SpeechTree::ROOT;
        let mut sentences = Vec::new();
        while let Some(next) = tree.tree().best_child(current) {
            if tree.tree().visits(next) == 0 {
                break;
            }
            let Some(sentence) = tree.sentence(next, &renderer) else { break };
            current = next;
            sentences.push(sentence);
        }
        // A budget too tight to sample even once (huge trees eat it during
        // expansion) must still produce output: fall back to the baseline
        // candidate nearest the warm-up estimate.
        if current == SpeechTree::ROOT {
            let nearest =
                tree.tree().children(SpeechTree::ROOT).iter().copied().min_by(|&a, &b| {
                    let da = (tree.speech_at(a).baseline.value - overall).abs();
                    let db = (tree.speech_at(b).baseline.value - overall).abs();
                    da.total_cmp(&db)
                });
            if let Some(node) = nearest {
                if let Some(sentence) = tree.sentence(node, &renderer) {
                    current = node;
                    sentences.push(sentence);
                }
            }
        }

        // Only now does output start: latency includes the whole budget.
        let latency = t0.elapsed();
        voice.start(&preamble);
        let source = Buffered::planned(
            sentences,
            Some(tree.speech_at(current)),
            core.samples(),
            core.rows_read(),
            tree.tree().node_count(),
            tree.truncated(),
        );
        SpeechStream::new(voice, cancel, t0, preamble, latency, Box::new(source))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::salary::SalaryConfig;
    use voxolap_data::DimId;
    use voxolap_engine::query::AggFct;

    use crate::voice::InstantVoice;

    fn setup() -> (voxolap_data::Table, Query) {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        (table, q)
    }

    fn fast_config(iterations: u64) -> UnmergedConfig {
        UnmergedConfig {
            budget: SamplingBudget::Iterations(iterations),
            max_tree_nodes: 60_000,
            ..UnmergedConfig::default()
        }
    }

    #[test]
    fn speaks_whole_speech_after_budget() {
        let (table, q) = setup();
        let mut voice = InstantVoice::default();
        let outcome = Unmerged::new(fast_config(800)).vocalize(&table, &q, &mut voice);
        assert!(outcome.speech.is_some());
        assert!(!outcome.sentences.is_empty());
        assert_eq!(outcome.stats.samples, 800);
        // Preamble plus body sentences were all queued at once.
        assert_eq!(voice.transcript().len(), 1 + outcome.sentences.len());
    }

    #[test]
    fn iteration_budget_is_deterministic() {
        let (table, q) = setup();
        let run = || {
            let mut voice = InstantVoice::default();
            Unmerged::new(fast_config(500)).vocalize(&table, &q, &mut voice).body_text()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn wall_clock_budget_dominates_latency() {
        let (table, q) = setup();
        let cfg = UnmergedConfig {
            budget: SamplingBudget::WallClock(Duration::from_millis(60)),
            max_tree_nodes: 60_000,
            ..UnmergedConfig::default()
        };
        let mut voice = InstantVoice::default();
        let outcome = Unmerged::new(cfg).vocalize(&table, &q, &mut voice);
        assert!(
            outcome.latency >= Duration::from_millis(60),
            "latency {:?} at least the budget",
            outcome.latency
        );
    }

    #[test]
    fn zero_budget_still_speaks_a_baseline() {
        let (table, q) = setup();
        let mut voice = InstantVoice::default();
        let outcome = Unmerged::new(fast_config(0)).vocalize(&table, &q, &mut voice);
        assert_eq!(outcome.sentences.len(), 1, "fallback baseline spoken");
        let speech = outcome.speech.unwrap();
        // Nearest grid value to the warm-up estimate (~88-92 K).
        assert!((60.0..=120.0).contains(&speech.baseline.value));
    }

    #[test]
    fn tiny_budget_still_commits_to_visited_nodes_only() {
        let (table, q) = setup();
        let mut voice = InstantVoice::default();
        let outcome = Unmerged::new(fast_config(3)).vocalize(&table, &q, &mut voice);
        // With 3 samples the committed path may be short, but every spoken
        // sentence corresponds to a visited node (no blind commitments).
        assert!(outcome.sentences.len() <= 3);
    }
}
