//! Multi-threaded pipelined vocalization over the lock-free speech tree.
//!
//! [`Holistic`](crate::holistic::Holistic) interleaves sampling and voice
//! output *cooperatively* on one thread: exact, deterministic, but bounded
//! by a single core. [`ParallelHolistic`] implements the paper's literal
//! architecture — "while the current sentence is spoken, we determine the
//! best follow-up in the background" — and scales it across cores:
//!
//! * **Morsel-driven row ingestion** — N workers claim whole chunks
//!   (morsels) of the seeded two-level scan order from one shared
//!   [`MorselPool`] ([`Table::scan_pooled`]) and stream them into one
//!   shared [`ShardedSampleCache`] whose per-aggregate striped buckets
//!   keep workers from serializing on a global cache lock. Claimed
//!   morsels partition the order with zero overlap, so the union of
//!   worker prefixes remains a uniform sample (see [`voxolap_data::chunk`]
//!   for the uniformity argument).
//! * **Lock-free UCT sampling** — workers descend the pre-expanded speech
//!   tree concurrently with virtual losses
//!   ([`select_path_vloss`](voxolap_mcts::Tree::select_path_vloss)) and
//!   commit visit/reward statistics with atomic CAS updates; no tree lock
//!   exists at all.
//! * **Commit thread** — the calling thread sleeps on voice output and, at
//!   each sentence boundary, moves the shared sampling root to the child
//!   with the best *mean* reward (Algorithm 1's exploitation-only commit).
//!
//! With `threads == 1` the engine runs the cooperative loop instead, using
//! exactly the same pooled scanner (one scanner drains the pool in the
//! seeded order), cache arithmetic, and RNG streams as [`PlannerCore`] — so a
//! single-threaded run reproduces [`Holistic`] word for word under a fixed
//! seed (guarded by tests). With more threads, outcomes depend on
//! scheduling and are **not** bit-reproducible; experiments use the
//! cooperative engine, interactive deployments use this one.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use voxolap_belief::model::rounding_bucket;
use voxolap_belief::normal::Normal;
use voxolap_data::table::RowScanner;
use voxolap_data::{MorselPool, Table};
use voxolap_engine::cache::ResampleScratch;
use voxolap_engine::query::{AggFct, Query};
use voxolap_engine::repair::repair_snapshot;
use voxolap_engine::semantic::{ExactLookup, LoggedRow, SampleSnapshot, SemanticCache};
use voxolap_engine::sharded::{IngestBatch, ShardedSampleCache};
use voxolap_faults::{Resilience, RunState};
use voxolap_mcts::NodeId;
use voxolap_speech::candidates::CandidateGenerator;
use voxolap_speech::render::Renderer;

use crate::approach::Vocalizer;
use crate::holistic::{exact_hit_stream, serve_stale_exact, HolisticConfig};
use crate::pipeline::cancel::CancelToken;
use crate::pipeline::driver::{CoopSource, MultiSource, ShardSampler};
use crate::pipeline::stream::{Buffered, SpeechStream};
use crate::resilience::ResCtx;
use crate::sampler::{calibrated_sigma, RowLog, SelectionPolicy, SIGMA_FALLBACK};
use crate::tree::SpeechTree;
use crate::voice::VoiceOutput;

/// How long the committing thread sleeps between `VO.IsPlaying` polls.
pub(crate) const POLL_INTERVAL: Duration = Duration::from_millis(2);

/// Stream separation constant for per-worker RNGs (an arbitrary odd
/// multiplier); worker 0's seed is exactly [`PlannerCore`]'s so the
/// single-threaded engine reproduces the sequential planner.
const WORKER_STREAM: u64 = 0xd1b5_4a32_d192_ed03;

/// The multi-threaded holistic vocalizer (see module docs).
#[derive(Debug, Clone)]
pub struct ParallelHolistic {
    config: HolisticConfig,
    threads: usize,
    cache: Option<Arc<SemanticCache>>,
    resilience: Option<Arc<Resilience>>,
}

impl Default for ParallelHolistic {
    fn default() -> Self {
        ParallelHolistic::new(HolisticConfig::default())
    }
}

impl ParallelHolistic {
    /// Create with the given configuration (shared with
    /// [`Holistic`](crate::holistic::Holistic)) and as many planning
    /// threads as the machine has cores.
    pub fn new(config: HolisticConfig) -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ParallelHolistic { config, threads, cache: None, resilience: None }
    }

    /// Attach a cross-query semantic cache (see
    /// [`Holistic::with_cache`](crate::holistic::Holistic::with_cache)).
    /// Snapshots record per-chunk morsel-pool progress: a warm start
    /// requires a donor run with the same seed, but any thread count can
    /// resume any donor's consumed prefix. With an empty cache,
    /// `threads == 1` output remains bit-identical to
    /// [`Holistic`](crate::holistic::Holistic).
    pub fn with_cache(mut self, cache: Arc<SemanticCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Override the number of planning threads (min 1). `1` selects the
    /// deterministic cooperative mode.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attach a resilience bundle: fault injection at the engine's fault
    /// sites, the retry → circuit-breaker read ladder, and anytime-answer
    /// degradation. Without an injector the hooks are inert and planning
    /// stays byte-identical.
    pub fn with_resilience(mut self, resilience: Arc<Resilience>) -> Self {
        self.resilience = Some(resilience);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &HolisticConfig {
        &self.config
    }

    /// The configured number of planning threads.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

/// One planning worker: a pooled morsel scanner and private RNG stream
/// over the shared cache and tree.
pub(crate) struct ShardWorker<'a> {
    query: &'a Query,
    cache: Arc<ShardedSampleCache>,
    scanner: RowScanner<'a>,
    rng: StdRng,
    scratch: ResampleScratch,
    /// Thread-local morsel accumulator for the group-commit ingest path
    /// (`ShardedSampleCache::observe_batch`, DESIGN.md §14).
    batch: IngestBatch,
    /// Reused per-block aggregate-code buffer for the columnar kernel.
    aggs: Vec<u32>,
    sigma: f64,
    rows_per_iteration: usize,
    policy: SelectionPolicy,
    /// In-scope row log for semantic-cache snapshot admission (only when a
    /// cache is attached; logging consumes no RNG, preserving parity).
    log: Option<RowLog>,
    /// Rows the semantic cache pre-seeded before this run (worker 0 only);
    /// warm-up tops up the difference instead of re-reading them.
    seeded: u64,
    /// Fault-injection / degradation context (`None` = inert).
    res: Option<ResCtx>,
}

impl<'a> ShardWorker<'a> {
    pub(crate) fn new(
        table: &'a Table,
        query: &'a Query,
        cache: Arc<ShardedSampleCache>,
        config: &HolisticConfig,
        pool: Arc<MorselPool>,
        worker: usize,
    ) -> Self {
        ShardWorker {
            query,
            cache,
            scanner: table.scan_pooled(pool, query.measure()),
            // Worker 0 gets PlannerCore's exact stream; others are split
            // off by an odd multiplier.
            rng: StdRng::seed_from_u64(
                config.seed ^ 0x9e37_79b9_7f4a_7c15 ^ (worker as u64).wrapping_mul(WORKER_STREAM),
            ),
            scratch: ResampleScratch::new(),
            batch: IngestBatch::new(query.n_aggregates()),
            aggs: Vec::new(),
            sigma: SIGMA_FALLBACK,
            rows_per_iteration: config.rows_per_iteration,
            policy: config.policy,
            log: None,
            seeded: 0,
            res: None,
        }
    }

    /// Attach a fault-injection / degradation context to this worker.
    pub(crate) fn set_resilience(&mut self, res: ResCtx) {
        self.res = Some(res);
    }

    /// Stream up to `k` rows of this worker's shard into the shared cache.
    fn ingest_rows(&mut self, k: usize) -> usize {
        if let Some(res) = &self.res {
            if !res.read_allowed() {
                // Breaker open: sample from what the shared cache holds.
                return 0;
            }
        }
        // Batched morsel ingest (DESIGN.md §14): per block, resolve all
        // aggregate codes with the columnar kernel, accumulate into the
        // thread-local batch, and group-commit once — one shared-counter
        // add and at most one bucket lock per touched aggregate per
        // block, instead of per row.
        let layout = self.query.layout();
        let mut read = 0;
        while read < k {
            let Some(block) = self.scanner.next_block(k - read) else { break };
            layout.agg_of_block(block.dims, block.rows, &mut self.aggs);
            if let Some(log) = self.log.as_mut() {
                log.push_block(&block, &self.aggs);
            }
            for (i, &r) in block.rows.iter().enumerate() {
                self.batch.push_resolved(self.aggs[i], block.values[r as usize]);
            }
            self.cache.observe_batch(&mut self.batch);
            read += block.rows.len();
        }
        read
    }

    /// Warm-up on the worker's shard until an overall estimate exists.
    /// Mirrors `PlannerCore::warmup` exactly — the threads=1 parity tests
    /// guard the lockstep; see that method for the rationale of each step.
    pub(crate) fn warmup(&mut self, min_rows: usize) -> Option<f64> {
        let n_aggs = self.query.n_aggregates() as f64;
        let per_aggregate = |est: f64, fct: AggFct| match fct {
            AggFct::Avg => est,
            _ => est / n_aggs,
        };
        // Seeded rows already count toward the warm-up quota; a cold run
        // (seeded == 0) behaves byte-identically to before.
        self.ingest_rows(min_rows.saturating_sub(self.seeded as usize));
        let est = loop {
            if let Some(est) = self.cache.overall_estimate(self.query.fct()) {
                break est;
            }
            if self.ingest_rows(64) == 0 {
                return self
                    .cache
                    .overall_estimate(self.query.fct())
                    .map(|e| per_aggregate(e, self.query.fct()));
            }
        };
        if est != 0.0 || self.query.fct() != AggFct::Avg {
            return Some(per_aggregate(est, self.query.fct()));
        }
        let budget = min_rows.saturating_mul(50);
        while self.scanner.rows_read() < budget {
            if self.ingest_rows(256) == 0 {
                break;
            }
            match self.cache.overall_estimate(self.query.fct()) {
                Some(e) if e != 0.0 => return Some(e),
                _ => {}
            }
        }
        self.cache.overall_estimate(self.query.fct())
    }

    /// The query this worker samples for.
    pub(crate) fn query(&self) -> &'a Query {
        self.query
    }

    /// Extract this worker's row log for semantic-cache snapshot
    /// admission (consumes the log; scan progress lives in the shared
    /// morsel pool).
    pub(crate) fn take_result(&mut self) -> Option<RowLog> {
        self.log.take()
    }

    /// One sampling iteration against the shared tree — the parallel
    /// counterpart of `PlannerCore::sample_once`, with the same RNG
    /// consumption order so worker 0 in single-thread mode reproduces it.
    /// `use_vloss` selects the virtual-loss descent that spreads
    /// concurrent workers across the tree.
    pub(crate) fn sample_once(&mut self, tree: &SpeechTree, from: NodeId, use_vloss: bool) -> f64 {
        if let Some(res) = &self.res {
            if res.sample_faulted() {
                // Faulted iterations contribute no reward; the caller
                // still counts them toward its iteration totals.
                return 0.0;
            }
        }
        self.ingest_rows(self.rows_per_iteration);

        let layout = self.query.layout();
        let Some(agg) = self.cache.pick_aggregate(self.query.fct(), &mut self.rng) else {
            return 0.0;
        };
        let Some(estimate) = self.cache.estimate_with(agg, &mut self.rng, &mut self.scratch) else {
            return 0.0;
        };
        let est = estimate.value(self.query.fct());

        let t = tree.tree();
        let path = match self.policy {
            SelectionPolicy::Uct if use_vloss => t.select_path_vloss(from, &mut self.rng),
            SelectionPolicy::Uct => t.select_path(from, &mut self.rng),
            SelectionPolicy::UniformRandom => t.random_path(from, &mut self.rng),
        };
        let Some(&leaf) = path.last() else {
            return 0.0;
        };
        let reward = if est.is_finite() {
            let coords = layout.coords_of_agg(agg);
            let mean = tree.mean_for(leaf, &coords);
            let (lo, hi) = rounding_bucket(est, self.sigma / 10.0);
            Normal::new(mean, self.sigma).prob_interval(lo, hi)
        } else {
            0.0
        };
        if use_vloss && self.policy == SelectionPolicy::Uct {
            t.update_path_vloss(&path, reward);
        } else {
            t.update_path(&path, reward);
        }
        reward
    }
}

/// Result of one [`sampling_throughput`] measurement.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputReport {
    /// Number of worker threads that sampled.
    pub threads: usize,
    /// Total completed sampling iterations across all workers.
    pub samples: u64,
    /// Total rows streamed into the shared cache.
    pub rows_read: u64,
    /// Wall-clock time the workers ran.
    pub elapsed: Duration,
}

impl ThroughputReport {
    /// Completed sampling iterations per wall-clock second.
    pub fn samples_per_sec(&self) -> f64 {
        self.samples as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Measure raw sampling throughput: `threads` workers hammer a freshly
/// built speech tree and sharded cache from the root for `duration`
/// (no voice, no commit steps — pure planning work). This is the
/// scaling benchmark's engine; setup (table scan permutations, warm-up,
/// tree construction) happens before the clock starts.
pub fn sampling_throughput(
    table: &Table,
    query: &Query,
    config: &HolisticConfig,
    threads: usize,
    duration: Duration,
) -> ThroughputReport {
    let threads = threads.max(1);
    let schema = table.schema();
    let renderer = Renderer::new(schema, query);
    let cache = Arc::new(
        ShardedSampleCache::new(query.n_aggregates(), table.row_count() as u64)
            .with_resample_size(config.resample_size),
    );
    let pool = table.morsel_pool(config.seed);
    let mut workers: Vec<ShardWorker<'_>> = (0..threads)
        .map(|w| ShardWorker::new(table, query, cache.clone(), config, pool.clone(), w))
        .collect();
    let overall = workers[0].warmup(config.warmup_rows).unwrap_or(0.0);
    let sigma = calibrated_sigma(overall, config.sigma_override);
    for w in &mut workers {
        w.sigma = sigma;
    }
    let generator = CandidateGenerator::new(schema, query, config.candidates.clone());
    let tree = SpeechTree::build(
        &generator,
        &renderer,
        &config.constraints,
        overall,
        config.max_tree_nodes,
    );

    let samples = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let use_vloss = threads > 1;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for mut worker in workers {
            let tree = &tree;
            let stop = &stop;
            let samples = &samples;
            scope.spawn(move || {
                // Count locally so the shared counter isn't itself a
                // contention point in the measurement.
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    worker.sample_once(tree, SpeechTree::ROOT, use_vloss);
                    local += 1;
                }
                samples.fetch_add(local, Ordering::Relaxed);
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
    ThroughputReport {
        threads,
        samples: samples.load(Ordering::Relaxed),
        rows_read: cache.nr_read(),
        elapsed: t0.elapsed(),
    }
}

/// Result of one [`ingest_throughput`] measurement.
#[derive(Debug, Clone, Copy)]
pub struct IngestReport {
    /// Number of ingest worker threads.
    pub threads: usize,
    /// Total rows streamed into sharded caches across all drains.
    pub rows: u64,
    /// Full-table drains completed.
    pub drains: u64,
    /// Wall-clock time the workers ran.
    pub elapsed: Duration,
}

impl IngestReport {
    /// Rows ingested per wall-clock second.
    pub fn rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Measure raw **ingest-only** throughput: `threads` workers drain whole
/// seeded scans of the table into fresh [`ShardedSampleCache`]s via the
/// batched morsel path (columnar aggregate resolution + group-commit) with
/// planning disabled — no tree, no estimates, no RNG draws. Full-table
/// drains repeat until `min_duration` has elapsed, so the figure is stable
/// even when one drain takes microseconds. This isolates the scan+observe
/// scaling that the end-to-end samples/sec figure mixes with planning
/// work.
pub fn ingest_throughput(
    table: &Table,
    query: &Query,
    seed: u64,
    threads: usize,
    min_duration: Duration,
) -> IngestReport {
    let threads = threads.max(1);
    let mut rows = 0u64;
    let mut drains = 0u64;
    let t0 = Instant::now();
    while drains == 0 || t0.elapsed() < min_duration {
        let cache = ShardedSampleCache::new(query.n_aggregates(), table.row_count() as u64);
        let pool = table.morsel_pool(seed.wrapping_add(drains));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let cache = &cache;
                let pool = pool.clone();
                scope.spawn(move || {
                    let mut scan = table.scan_pooled(pool, query.measure());
                    let layout = query.layout();
                    let mut batch = IngestBatch::new(query.n_aggregates());
                    let mut aggs = Vec::new();
                    while let Some(block) = scan.next_block(usize::MAX) {
                        layout.agg_of_block(block.dims, block.rows, &mut aggs);
                        for (i, &r) in block.rows.iter().enumerate() {
                            batch.push_resolved(aggs[i], block.values[r as usize]);
                        }
                        cache.observe_batch(&mut batch);
                    }
                });
            }
        });
        rows += cache.nr_read();
        drains += 1;
    }
    IngestReport { threads, rows, drains, elapsed: t0.elapsed() }
}

impl Vocalizer for ParallelHolistic {
    fn name(&self) -> &'static str {
        "holistic-parallel"
    }

    fn stream<'a>(
        &self,
        table: &'a Table,
        query: &'a Query,
        voice: &'a mut dyn VoiceOutput,
        cancel: CancelToken,
    ) -> SpeechStream<'a> {
        let cfg = self.config.clone();
        // One RunState per vocalization: the degrade ladder's per-run
        // fault budget and first-cause tag. `None` keeps every hook inert.
        let resil: Option<(Arc<Resilience>, Arc<RunState>)> =
            self.resilience.as_ref().map(|res| (res.clone(), res.new_run()));

        // Semantic cache, layer 1: a repeat of an exactly-answered query
        // skips sampling entirely and plans against stored aggregates.
        // Version-stale entries are served only when fresh data is
        // unreachable (§12 stale-serve, marked `stale: true`); otherwise
        // they are invalidated and the query replans fresh.
        if let Some(sem) = &self.cache {
            match sem.lookup_exact(&query.key(), table.version()) {
                ExactLookup::Fresh(data) => {
                    let run = resil.as_ref().map(|(_, run)| run.as_ref() as &RunState);
                    return exact_hit_stream(
                        table,
                        query,
                        voice,
                        cancel,
                        &data,
                        &cfg.exact_cfg(),
                        run,
                    )
                    .attach_resilience(resil);
                }
                ExactLookup::Stale(data) => {
                    if serve_stale_exact(&cancel, resil.as_ref()) {
                        sem.note_stale_serve();
                        let run = resil.as_ref().map(|(_, run)| run.as_ref() as &RunState);
                        return exact_hit_stream(
                            table,
                            query,
                            voice,
                            cancel,
                            &data,
                            &cfg.exact_cfg(),
                            run,
                        )
                        .mark_stale()
                        .attach_resilience(resil);
                    }
                    sem.invalidate_exact(&query.key());
                }
                ExactLookup::Miss => {}
            }
        }

        let t0 = Instant::now();
        let schema = table.schema();
        let renderer = Renderer::new(schema, query);

        // Start voice output of the preamble; everything below overlaps it.
        let preamble = renderer.preamble();
        voice.start(&preamble);
        let latency = t0.elapsed();

        let n_workers = self.threads;
        let mut shared = ShardedSampleCache::new(query.n_aggregates(), table.row_count() as u64)
            .with_resample_size(cfg.resample_size);
        if let Some((res, _)) = &resil {
            if let Some(inj) = res.injector() {
                shared = shared.with_faults(inj.clone(), res.stats().clone());
            }
        }
        let cache = Arc::new(shared);
        let pool = table.morsel_pool(cfg.seed);
        let mut workers: Vec<ShardWorker<'a>> = (0..n_workers)
            .map(|w| ShardWorker::new(table, query, cache.clone(), &cfg, pool.clone(), w))
            .collect();
        if let Some((res, run)) = &resil {
            for worker in &mut workers {
                worker.set_resilience(ResCtx::new(res.clone(), run.clone(), "table"));
            }
        }

        // Semantic cache, layer 2: seed the shared cache from a snapshot
        // with the same scope and seed, then advance the shared morsel
        // pool past the donor's consumed per-chunk prefixes — the donor's
        // thread count is irrelevant, any team can resume any progress
        // vector. Cold runs just start logging in-scope rows for later
        // admission.
        let mut donor_rows: Vec<LoggedRow> = Vec::new();
        let mut seeded_total = 0u64;
        if let Some(sem) = &self.cache {
            // A version-stale snapshot is repaired first: only the
            // appended suffix is scanned (its cost counts as this run's
            // rows read), then the repaired snapshot seeds the run like
            // a same-version one would.
            let donor = sem.lookup_snapshot(&query.key().scope(), cfg.seed).and_then(|snap| {
                if snap.version == table.version() {
                    Some((snap, 0u64))
                } else {
                    let scope = query.key().scope();
                    repair_snapshot(&snap, table, &scope).map(|out| {
                        sem.note_repair(out.rows_read);
                        sem.admit_snapshot(&scope, out.snapshot.clone());
                        (Arc::new(out.snapshot), out.rows_read)
                    })
                }
            });
            let warmed = match donor {
                Some((snap, repair_rows)) => {
                    cache.seed_rows(
                        query.layout(),
                        snap.rows.iter().map(|r| (&r.members[..], r.value)),
                        snap.nr_read,
                    );
                    pool.resume(&snap.progress);
                    workers[0].seeded = snap.nr_read;
                    donor_rows = snap.rows.clone();
                    // Repair-scanned rows stay inside `rows_read` (the
                    // fresh-row accounting subtracts `seeded_total`).
                    seeded_total = snap.nr_read - repair_rows;
                    true
                }
                None => false,
            };
            if !warmed {
                sem.record_miss();
            }
            let budget = sem.snapshot_row_budget(schema.dimensions().len());
            let per_worker = budget.saturating_sub(donor_rows.len()) / n_workers;
            for worker in &mut workers {
                worker.log = Some(RowLog::new(per_worker));
            }
        }

        // Warm up on worker 0's shard (a uniform sample of the table).
        let Some(overall) = workers[0].warmup(cfg.warmup_rows) else {
            // Not one row in scope: report that, and still admit the
            // (possibly exhausted) scan to the semantic cache at finish.
            let results: Vec<Option<RowLog>> =
                workers.iter_mut().map(|w| w.take_result()).collect();
            let fresh = cache.nr_read().saturating_sub(seeded_total);
            let semantic = self.cache.clone();
            let seed = cfg.seed;
            let version = table.version();
            let table_rows = table.row_count() as u64;
            let admit = move || {
                admit_parallel(
                    &semantic, seed, &cache, &pool, query, donor_rows, results, version, table_rows,
                );
            };
            let source = Buffered::no_data(fresh, Some(Box::new(admit)));
            return SpeechStream::new(voice, cancel, t0, preamble, latency, Box::new(source))
                .attach_resilience(resil);
        };
        let sigma = calibrated_sigma(overall, cfg.sigma_override);
        for w in &mut workers {
            w.sigma = sigma;
        }

        let generator = CandidateGenerator::new(schema, query, cfg.candidates.clone());
        let tree =
            SpeechTree::build(&generator, &renderer, &cfg.constraints, overall, cfg.max_tree_nodes);

        let layout = query.layout();
        let unit = schema.measure(query.measure()).unit;

        if n_workers == 1 {
            // Cooperative deterministic mode: the shared driver loop on
            // the calling thread, plain (vloss-free) descent — matches
            // Holistic bit for bit under a fixed seed.
            let Some(worker) = workers.pop() else { unreachable!("threads >= 1") };
            let sampler = ShardSampler::new(
                worker,
                cache,
                pool,
                seeded_total,
                donor_rows,
                self.cache.clone(),
                cfg.seed,
                table.version(),
                table.row_count() as u64,
            );
            let run = resil.as_ref().map(|(_, run)| run.clone());
            let source = CoopSource::new(sampler, tree, renderer, cfg, layout, unit, run);
            SpeechStream::new(voice, cancel, t0, preamble, latency, Box::new(source))
                .attach_resilience(resil)
        } else {
            let seed = cfg.seed;
            let run = resil.as_ref().map(|(_, run)| run.clone());
            let source = MultiSource::new(
                workers,
                cache,
                pool,
                tree,
                renderer,
                cfg,
                layout,
                unit,
                seeded_total,
                donor_rows,
                self.cache.clone(),
                seed,
                query,
                run,
                table.version(),
                table.row_count() as u64,
            );
            SpeechStream::new(voice, cancel, t0, preamble, latency, Box::new(source))
                .attach_resilience(resil)
        }
    }
}

/// Offer a parallel run's results to the semantic cache: exact aggregates
/// when the scan was exhausted, and the combined donor-prefix + fresh
/// per-worker row logs as a warm-start snapshot. The snapshot carries the
/// pool's per-chunk progress vector, so a later run with any thread count
/// can resume the consumed prefix; `version`/`table_rows` pin the table
/// revision the sample describes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn admit_parallel(
    semantic: &Option<Arc<SemanticCache>>,
    seed: u64,
    shared: &ShardedSampleCache,
    pool: &MorselPool,
    query: &Query,
    donor_rows: Vec<LoggedRow>,
    worker_results: Vec<Option<RowLog>>,
    version: u64,
    table_rows: u64,
) {
    let Some(sem) = semantic else { return };
    if let Some((counts, sums)) = shared.exact_result() {
        sem.admit_exact(&query.key(), version, counts, sums);
    }
    let mut rows = donor_rows;
    for log in worker_results {
        let Some(log) = log else { return };
        if log.overflowed() {
            return;
        }
        rows.extend_from_slice(log.rows());
    }
    sem.admit_snapshot(
        &query.key().scope(),
        SampleSnapshot {
            seed,
            progress: pool.progress_vec(),
            nr_read: shared.nr_read(),
            rows,
            version,
            table_rows,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::salary::SalaryConfig;
    use voxolap_data::DimId;
    use voxolap_speech::constraints::SpeechConstraints;

    use crate::holistic::Holistic;
    use crate::uncertainty::UncertaintyMode;
    use crate::voice::InstantVoice;

    /// A wall-clock voice local to these tests (the production one lives
    /// in voxolap-voice, which sits above this crate).
    struct SleepyVoice {
        until: Option<Instant>,
        per_char: Duration,
        transcript: Vec<String>,
    }

    impl SleepyVoice {
        fn new(per_char: Duration) -> Self {
            SleepyVoice { until: None, per_char, transcript: Vec::new() }
        }
    }

    impl VoiceOutput for SleepyVoice {
        fn start(&mut self, sentence: &str) {
            self.until = Some(Instant::now() + self.per_char * sentence.len() as u32);
            self.transcript.push(sentence.to_string());
        }
        fn is_playing(&mut self) -> bool {
            self.until.is_some_and(|t| Instant::now() < t)
        }
        fn transcript(&self) -> &[String] {
            &self.transcript
        }
    }

    fn setup() -> (voxolap_data::Table, Query) {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        (table, q)
    }

    fn fast_config() -> HolisticConfig {
        HolisticConfig {
            min_samples_per_sentence: 400,
            max_tree_nodes: 60_000,
            ..HolisticConfig::default()
        }
    }

    #[test]
    fn single_thread_reproduces_holistic_exactly() {
        let (table, q) = setup();
        let mut voice_seq = InstantVoice::default();
        let seq = Holistic::new(fast_config()).vocalize(&table, &q, &mut voice_seq);
        let mut voice_par = InstantVoice::default();
        let par = ParallelHolistic::new(fast_config()).with_threads(1).vocalize(
            &table,
            &q,
            &mut voice_par,
        );
        assert_eq!(par.sentences, seq.sentences, "same speech, sentence for sentence");
        assert_eq!(par.preamble, seq.preamble);
        assert_eq!(par.stats.samples, seq.stats.samples);
        assert_eq!(par.stats.rows_read, seq.stats.rows_read);
    }

    #[test]
    fn single_thread_parity_holds_across_seeds_and_constraints() {
        let (table, q) = setup();
        for seed in [3u64, 17, 2024] {
            let cfg = HolisticConfig {
                seed,
                constraints: SpeechConstraints { max_chars: 300, max_refinements: 1 },
                min_samples_per_sentence: 250,
                max_tree_nodes: 40_000,
                ..HolisticConfig::default()
            };
            let mut v1 = InstantVoice::default();
            let seq = Holistic::new(cfg.clone()).vocalize(&table, &q, &mut v1);
            let mut v2 = InstantVoice::default();
            let par = ParallelHolistic::new(cfg).with_threads(1).vocalize(&table, &q, &mut v2);
            assert_eq!(par.sentences, seq.sentences, "seed {seed}");
        }
    }

    #[test]
    fn multi_thread_engine_produces_valid_speech() {
        let (table, q) = setup();
        let cfg = HolisticConfig {
            min_samples_per_sentence: 200,
            max_tree_nodes: 40_000,
            ..HolisticConfig::default()
        };
        let mut voice = SleepyVoice::new(Duration::from_micros(200));
        let outcome = ParallelHolistic::new(cfg).with_threads(4).vocalize(&table, &q, &mut voice);
        let speech = outcome.speech.as_ref().expect("structured speech");
        assert!(speech.refinements.len() <= 2);
        assert!(!outcome.sentences.is_empty());
        assert_eq!(voice.transcript().len(), 1 + outcome.sentences.len());
        assert!(outcome.latency.as_millis() < 500);
    }

    #[test]
    fn background_sampling_accumulates_during_speech() {
        let (table, q) = setup();
        let cfg = HolisticConfig {
            min_samples_per_sentence: 1,
            max_tree_nodes: 40_000,
            ..HolisticConfig::default()
        };
        // ~20 ms of "speaking" per sentence buys thousands of iterations.
        let mut voice = SleepyVoice::new(Duration::from_micros(300));
        let outcome = ParallelHolistic::new(cfg).with_threads(4).vocalize(&table, &q, &mut voice);
        assert!(
            outcome.stats.samples > 500,
            "workers sampled during speech: {}",
            outcome.stats.samples
        );
    }

    #[test]
    fn respects_fragment_budget() {
        let (table, q) = setup();
        let cfg = HolisticConfig {
            constraints: SpeechConstraints { max_chars: 300, max_refinements: 1 },
            min_samples_per_sentence: 100,
            max_tree_nodes: 40_000,
            ..HolisticConfig::default()
        };
        let mut voice = SleepyVoice::new(Duration::from_micros(50));
        let outcome = ParallelHolistic::new(cfg).with_threads(3).vocalize(&table, &q, &mut voice);
        assert!(outcome.speech.unwrap().refinements.len() <= 1);
    }

    #[test]
    fn multi_thread_baseline_lands_near_truth() {
        let (table, q) = setup();
        let mut voice = SleepyVoice::new(Duration::from_micros(100));
        let outcome =
            ParallelHolistic::new(fast_config()).with_threads(4).vocalize(&table, &q, &mut voice);
        let v = outcome.speech.unwrap().baseline.value;
        // Exact grand mean is ~88-92 K at one significant digit.
        assert!((70.0..=110.0).contains(&v), "baseline {v}");
    }

    #[test]
    fn uncertainty_warning_works_in_parallel_mode() {
        let (table, q) = setup();
        let cfg = HolisticConfig {
            uncertainty: UncertaintyMode::Warning { max_relative_width: 0.0001 },
            min_samples_per_sentence: 200,
            max_tree_nodes: 40_000,
            ..HolisticConfig::default()
        };
        let mut voice = SleepyVoice::new(Duration::from_micros(100));
        let outcome = ParallelHolistic::new(cfg).with_threads(2).vocalize(&table, &q, &mut voice);
        assert!(
            outcome.sentences.iter().any(|s| s.contains("confidence")),
            "warning appended: {:?}",
            outcome.sentences
        );
    }

    #[test]
    fn single_thread_with_empty_cache_keeps_parity() {
        let (table, q) = setup();
        let mut voice_seq = InstantVoice::default();
        let seq = Holistic::new(fast_config()).vocalize(&table, &q, &mut voice_seq);
        let cache = Arc::new(SemanticCache::with_capacity_mb(4));
        let mut voice_par = InstantVoice::default();
        let par = ParallelHolistic::new(fast_config()).with_threads(1).with_cache(cache).vocalize(
            &table,
            &q,
            &mut voice_par,
        );
        assert_eq!(par.sentences, seq.sentences, "cold cache must not perturb planning");
        assert_eq!(par.stats.samples, seq.stats.samples);
        assert_eq!(par.stats.rows_read, seq.stats.rows_read);
    }

    #[test]
    fn repeat_query_hits_cache_in_cooperative_mode() {
        let (table, q) = setup();
        let cache = Arc::new(SemanticCache::with_capacity_mb(4));
        let engine = ParallelHolistic::new(fast_config()).with_threads(1).with_cache(cache.clone());
        let mut voice = InstantVoice::default();
        let cold = engine.vocalize(&table, &q, &mut voice);
        assert_eq!(cold.stats.rows_read, 320, "cold run exhausts the table");
        let mut voice = InstantVoice::default();
        let hit = engine.vocalize(&table, &q, &mut voice);
        assert_eq!(hit.stats.rows_read, 0, "repeat reads no rows");
        assert_eq!(hit.stats.samples, 0, "repeat skips sampling");
        assert!(hit.speech.is_some());
        assert_eq!(cache.stats().exact_hits, 1);
    }

    #[test]
    fn sharded_snapshot_warm_starts_across_group_bys() {
        let (table, _) = setup();
        let schema = table.schema();
        let donor =
            Query::builder(AggFct::Avg).group_by(DimId(0), LevelId(1)).build(schema).unwrap();
        let target =
            Query::builder(AggFct::Avg).group_by(DimId(1), LevelId(1)).build(schema).unwrap();
        let cache = Arc::new(SemanticCache::with_capacity_mb(4));
        let engine = ParallelHolistic::new(fast_config()).with_threads(2).with_cache(cache.clone());
        let mut voice = SleepyVoice::new(Duration::from_micros(100));
        let cold = engine.vocalize(&table, &donor, &mut voice);
        assert_eq!(cold.stats.rows_read, 320, "donor exhausts the table");
        let mut voice = SleepyVoice::new(Duration::from_micros(100));
        let warm = engine.vocalize(&table, &target, &mut voice);
        assert!(
            warm.stats.rows_read < cold.stats.rows_read,
            "warm start reuses the donor prefix: {} vs {}",
            warm.stats.rows_read,
            cold.stats.rows_read
        );
        assert_eq!(cache.stats().warm_hits, 1);
        assert!(warm.speech.is_some());
    }

    #[test]
    fn single_thread_inert_resilience_keeps_parity() {
        let (table, q) = setup();
        let mut voice_seq = InstantVoice::default();
        let seq = Holistic::new(fast_config()).vocalize(&table, &q, &mut voice_seq);
        let mut voice_par = InstantVoice::default();
        let par = ParallelHolistic::new(fast_config())
            .with_threads(1)
            .with_resilience(Arc::new(Resilience::default()))
            .vocalize(&table, &q, &mut voice_par);
        assert_eq!(par.sentences, seq.sentences, "injector-free bundle must not perturb");
        assert_eq!(par.stats.samples, seq.stats.samples);
        assert_eq!(par.stats.rows_read, seq.stats.rows_read);
        assert!(!par.stats.degraded);
    }

    #[test]
    fn multi_thread_engine_survives_injected_faults() {
        use voxolap_faults::{FaultPlan, FaultSite, SiteSchedule};
        let (table, q) = setup();
        let plan = FaultPlan::new(11)
            .with_site(FaultSite::DataRead, SiteSchedule::error(0.2))
            .with_site(FaultSite::Sample, SiteSchedule::error(0.2))
            .with_site(FaultSite::CacheShard, SiteSchedule::error(0.02));
        let res = Arc::new(Resilience::new(Some(plan)));
        let cfg = HolisticConfig {
            min_samples_per_sentence: 200,
            max_tree_nodes: 40_000,
            ..HolisticConfig::default()
        };
        let mut voice = SleepyVoice::new(Duration::from_micros(100));
        let outcome = ParallelHolistic::new(cfg)
            .with_threads(4)
            .with_resilience(res.clone())
            .vocalize(&table, &q, &mut voice);
        // Faults at these rates must not prevent an answer: the preamble
        // always arrives and the run is accounted exactly once.
        assert!(!outcome.preamble.is_empty());
        let snap = res.stats().snapshot();
        assert_eq!(snap.clean_answers + snap.degraded_answers, 1);
        assert!(res.injector().unwrap().total_injected() > 0, "schedule actually injected faults");
    }

    #[test]
    fn empty_scope_is_reported_gracefully() {
        let table = SalaryConfig { rows: 8, seed: 1 }.generate();
        let schema = table.schema();
        let start = schema.dimension(DimId(1));
        let empty_bin =
            start.leaves().iter().copied().find(|&bin| {
                !(0..table.row_count()).any(|row| table.member_at(DimId(1), row) == bin)
            });
        let Some(bin) = empty_bin else { return };
        let q = Query::builder(AggFct::Avg)
            .filter(DimId(1), bin)
            .group_by(DimId(0), LevelId(1))
            .build(schema)
            .unwrap();
        let mut voice = InstantVoice::default();
        let outcome =
            ParallelHolistic::new(fast_config()).with_threads(2).vocalize(&table, &q, &mut voice);
        assert!(outcome.sentences[0].contains("No data"));
        assert!(outcome.speech.is_none());
    }
}
