//! Shared planner core: row streaming, the sample cache, σ calibration,
//! and the speech-evaluation sampling iteration (`ST.Sample` combining
//! Algorithms 2 and 3).
//!
//! Both the Holistic and the Unmerged planner drive this core; they differ
//! only in *when* they sample (overlapped with voice output vs. a fixed
//! pre-output budget).

use rand::rngs::StdRng;
use rand::SeedableRng;

use voxolap_belief::model::rounding_bucket;
use voxolap_belief::normal::Normal;
use voxolap_data::dimension::MemberId;
use voxolap_data::table::{RowBlock, RowScanner};
use voxolap_data::Table;
use voxolap_engine::cache::{ResampleScratch, SampleCache};
use voxolap_engine::query::{decode_agg, Query, AGG_OUT_OF_SCOPE};
use voxolap_engine::semantic::{LoggedRow, SampleSnapshot};
use voxolap_engine::stratified::{AggregateIndex, StratifiedScanner};
use voxolap_mcts::NodeId;

use crate::resilience::ResCtx;
use crate::tree::SpeechTree;

/// Capacity-bounded log of the in-scope rows a run observed, kept so the
/// sample can be admitted to the semantic cache as a warm-start snapshot.
/// Overflowing the cap drops the log (an oversized snapshot would be
/// rejected by the cache anyway) but never affects the run itself.
#[derive(Debug)]
pub(crate) struct RowLog {
    rows: Vec<LoggedRow>,
    cap: usize,
    overflowed: bool,
}

impl RowLog {
    pub(crate) fn new(cap: usize) -> Self {
        RowLog { rows: Vec::new(), cap, overflowed: false }
    }

    /// Pre-fill with a warm-start donor's rows so the final snapshot covers
    /// the whole observed prefix, not just this run's fresh rows.
    pub(crate) fn seed(&mut self, rows: &[LoggedRow]) {
        if self.rows.len() + rows.len() > self.cap {
            self.overflow();
            return;
        }
        self.rows.extend_from_slice(rows);
    }

    /// Log one scan block's in-scope rows (`aggs` are the block's resolved
    /// aggregate codes, see `ResultLayout::agg_of_block`), pre-reserving
    /// capacity from the block size instead of growing per row. A block
    /// that would not fit drops the log in one step — observably the same
    /// as overflowing row-at-a-time, since an overflowed log is discarded
    /// wholesale either way.
    pub(crate) fn push_block(&mut self, block: &RowBlock<'_>, aggs: &[u32]) {
        if self.overflowed {
            return;
        }
        let in_scope = aggs.iter().filter(|&&a| a != AGG_OUT_OF_SCOPE).count();
        if in_scope == 0 {
            return;
        }
        if self.rows.len() + in_scope > self.cap {
            self.overflow();
            return;
        }
        self.rows.reserve(in_scope);
        for (i, &r) in block.rows.iter().enumerate() {
            if aggs[i] == AGG_OUT_OF_SCOPE {
                continue;
            }
            let members: Box<[MemberId]> = block.dims.iter().map(|d| d.get(r as usize)).collect();
            self.rows.push(LoggedRow { members, value: block.values[r as usize] });
        }
    }

    fn overflow(&mut self) {
        self.overflowed = true;
        self.rows = Vec::new();
    }

    pub(crate) fn overflowed(&self) -> bool {
        self.overflowed
    }

    pub(crate) fn rows(&self) -> &[LoggedRow] {
        &self.rows
    }
}

/// Fallback σ when the measure's overall mean is zero or unavailable.
pub(crate) const SIGMA_FALLBACK: f64 = 1.0;

/// The σ the paper calibrates for a run: an explicit override, or half the
/// overall estimate (falling back to 1 for degenerate means). Shared by
/// the sequential and parallel planners.
pub(crate) fn calibrated_sigma(overall_estimate: f64, sigma_override: Option<f64>) -> f64 {
    match sigma_override {
        Some(s) => s,
        None => {
            let s = overall_estimate.abs() * 0.5;
            if s.is_finite() && s > 0.0 {
                s
            } else {
                SIGMA_FALLBACK
            }
        }
    }
}

/// How sampling iterations pick the speech to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// UCT prioritization (the paper's choice, Algorithm 2).
    #[default]
    Uct,
    /// Uniform random descent — ablates the exploration/exploitation
    /// balance to show what UCT buys.
    UniformRandom,
}

/// The row source feeding the cache: the paper's shuffled stream, or a
/// pre-built per-aggregate index streamed round-robin (the "specialized
/// indexing structures" extension for rare sub-populations — AVG only,
/// see [`voxolap_engine::stratified`]).
enum RowSource<'a> {
    Shuffled(RowScanner<'a>),
    Stratified(StratifiedScanner<'a>),
}

impl<'a> RowSource<'a> {
    fn rows_read(&self) -> usize {
        match self {
            RowSource::Shuffled(s) => s.rows_read(),
            RowSource::Stratified(s) => s.rows_read(),
        }
    }
}

/// Row streaming + cache + sampling state for one vocalization run.
pub struct PlannerCore<'a> {
    query: &'a Query,
    scanner: RowSource<'a>,
    cache: SampleCache,
    sigma: f64,
    rng: StdRng,
    /// Reused resample buffers — keeps the per-iteration estimate
    /// allocation-free (see `SampleCache::estimate_with`).
    scratch: ResampleScratch,
    /// Reused per-block aggregate-code buffer for the columnar kernel.
    aggs: Vec<u32>,
    samples: u64,
    policy: SelectionPolicy,
    /// In-scope row log for semantic-cache snapshot admission
    /// (`None` = logging disabled; never touches the RNG streams).
    log: Option<RowLog>,
    /// `nr_read` inherited from a warm-start donor (0 for cold runs);
    /// warm-up targets shrink by this amount.
    seeded_rows: u64,
    /// Version of the table this core was built over — stamped into
    /// admitted snapshots and exact results so the semantic cache can
    /// invalidate or repair them after appends.
    table_version: u64,
    /// Row count of the pinned table (snapshot metadata).
    table_rows: u64,
    /// Rows a pre-planning snapshot repair scanned on this run's behalf;
    /// counted into [`rows_read`](Self::rows_read) so stats cover the
    /// full data cost of the answer.
    repair_rows: u64,
    /// Fault-injection / degradation context (`None` = inert; the hooks
    /// consume no randomness and leave behavior byte-identical).
    res: Option<ResCtx>,
}

impl<'a> PlannerCore<'a> {
    /// Create the core; no rows are read yet.
    pub fn new(table: &'a Table, query: &'a Query, seed: u64) -> Self {
        Self::with_resample_size(table, query, seed, voxolap_engine::cache::DEFAULT_RESAMPLE_SIZE)
    }

    /// Create the core with an explicit cache resample size.
    ///
    /// The paper's fixed size of 10 works well for measures whose values
    /// carry information individually (salaries); for 0/1 measures with a
    /// low positive rate (cancellation flags) a 10-row resample is almost
    /// always all-zero, so larger sizes restore estimator signal.
    pub fn with_resample_size(
        table: &'a Table,
        query: &'a Query,
        seed: u64,
        resample_size: usize,
    ) -> Self {
        PlannerCore {
            query,
            scanner: RowSource::Shuffled(table.scan_shuffled_measure(seed, query.measure())),
            cache: SampleCache::new(query.n_aggregates(), table.row_count() as u64)
                .with_resample_size(resample_size),
            sigma: SIGMA_FALLBACK,
            rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            scratch: ResampleScratch::new(),
            aggs: Vec::new(),
            samples: 0,
            policy: SelectionPolicy::Uct,
            log: None,
            seeded_rows: 0,
            table_version: table.version(),
            table_rows: table.row_count() as u64,
            repair_rows: 0,
            res: None,
        }
    }

    /// Create the core over a pre-built [`AggregateIndex`] so rare
    /// aggregates receive cache entries from the first rows streamed.
    /// AVG queries only (stratified order biases count/sum estimators).
    pub fn with_index(
        table: &'a Table,
        query: &'a Query,
        index: &'a AggregateIndex,
        seed: u64,
        resample_size: usize,
    ) -> Self {
        assert_eq!(
            query.fct(),
            voxolap_engine::query::AggFct::Avg,
            "stratified streaming is only unbiased for AVG queries"
        );
        PlannerCore {
            query,
            scanner: RowSource::Stratified(index.scan(table)),
            cache: SampleCache::new(query.n_aggregates(), table.row_count() as u64)
                .with_resample_size(resample_size),
            sigma: SIGMA_FALLBACK,
            rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            scratch: ResampleScratch::new(),
            aggs: Vec::new(),
            samples: 0,
            policy: SelectionPolicy::Uct,
            log: None,
            seeded_rows: 0,
            table_version: table.version(),
            table_rows: table.row_count() as u64,
            repair_rows: 0,
            res: None,
        }
    }

    /// Override the tree-descent policy (default UCT).
    pub fn set_policy(&mut self, policy: SelectionPolicy) {
        self.policy = policy;
    }

    /// Attach a fault-injection / degradation context. Row ingestion then
    /// runs the read ladder (retry → circuit breaker → fallback) and
    /// sampling iterations consult the Sample fault site.
    pub(crate) fn set_resilience(&mut self, res: ResCtx) {
        self.res = Some(res);
    }

    /// Start logging in-scope rows (up to `cap`) so the run's sample can be
    /// admitted to a semantic cache afterwards. Logging is a pure observer:
    /// it consumes no randomness and never changes planning behavior.
    pub fn enable_row_log(&mut self, cap: usize) {
        self.log = Some(RowLog::new(cap));
    }

    /// Warm-start this core from a compatible [`SampleSnapshot`]: seed the
    /// cache with the donor's re-bucketed rows, resume the seeded scan from
    /// the donor's morsel-pool progress, and shrink future warm-up targets
    /// accordingly. The donor's worker count does not matter — progress
    /// describes the consumed set of the scan order itself. Returns `false`
    /// (leaving the core cold) when the core streams from a stratified
    /// index or rows were already read.
    pub fn warm_start(&mut self, snapshot: &SampleSnapshot) -> bool {
        let RowSource::Shuffled(scan) = &mut self.scanner else { return false };
        if self.cache.nr_read() != 0 {
            return false;
        }
        // A version-stale snapshot describes a different scan order; the
        // caller must repair it (see `voxolap_engine::repair`) first.
        if snapshot.version != self.table_version {
            return false;
        }
        self.cache.seed_rows(
            self.query.layout(),
            snapshot.rows.iter().map(|r| (&r.members[..], r.value)),
            snapshot.nr_read,
        );
        scan.resume(&snapshot.progress);
        self.seeded_rows = snapshot.nr_read;
        if let Some(log) = &mut self.log {
            log.seed(&snapshot.rows);
        }
        true
    }

    /// Extract the run's sample as a semantic-cache snapshot (donor rows +
    /// this run's fresh rows). `None` when logging was off, the log
    /// overflowed its cap, or rows streamed from a stratified index (whose
    /// order is not the seeded scan's).
    pub fn take_snapshot(&self, seed: u64) -> Option<SampleSnapshot> {
        let log = self.log.as_ref()?;
        let RowSource::Shuffled(scan) = &self.scanner else { return None };
        if log.overflowed() {
            return None;
        }
        Some(SampleSnapshot {
            seed,
            progress: scan.progress(),
            nr_read: self.cache.nr_read(),
            rows: log.rows().to_vec(),
            version: self.table_version,
            table_rows: self.table_rows,
        })
    }

    /// Account suffix rows a snapshot repair scanned before this run's
    /// own streaming started (they appear in `rows_read`).
    pub fn note_repair_rows(&mut self, rows: u64) {
        self.repair_rows += rows;
    }

    /// The version of the table this core streams from.
    pub fn table_version(&self) -> u64 {
        self.table_version
    }

    /// Stream up to `k` rows into the cache; returns how many were read.
    ///
    /// The enum dispatch on the row source happens once per call, not once
    /// per row — this is the hottest loop in the planner (every sampling
    /// iteration ingests rows), and the per-row match prevented the
    /// scanner accesses from staying in registers.
    pub fn ingest_rows(&mut self, k: usize) -> usize {
        if let Some(res) = &self.res {
            if !res.read_allowed() {
                // Breaker open: the run continues on whatever the cache
                // already holds (warm-start rows or earlier reads).
                return 0;
            }
        }
        let layout = self.query.layout();
        let mut read = 0;
        match &mut self.scanner {
            RowSource::Shuffled(scan) => {
                // Batched morsel ingest through the columnar kernel: each
                // block's aggregate codes are resolved in per-column passes
                // over the chunk's packed ids (no per-row `&[MemberId]`
                // materialization), the row log reserves from the block
                // size, and observes still hit the sequential cache in
                // scan order, preserving its RNG and float association.
                while read < k {
                    let Some(block) = scan.next_block(k - read) else { break };
                    layout.agg_of_block(block.dims, block.rows, &mut self.aggs);
                    if let Some(log) = self.log.as_mut() {
                        log.push_block(&block, &self.aggs);
                    }
                    for (i, &r) in block.rows.iter().enumerate() {
                        self.cache.observe(decode_agg(self.aggs[i]), block.values[r as usize]);
                    }
                    read += block.rows.len();
                }
            }
            RowSource::Stratified(scan) => {
                while read < k {
                    let Some((agg, row)) = scan.next_row() else { break };
                    self.cache.observe(Some(agg), row.value);
                    read += 1;
                }
            }
        }
        read
    }

    /// Read rows until an overall estimate of the query's **typical
    /// per-aggregate value** exists (at least `min_rows` in any case), then
    /// return it — the seed for baseline candidates. For AVG this is the
    /// scope mean; for COUNT/SUM the scope total divided by the number of
    /// result aggregates (the maximum-entropy uniform split, matching the
    /// baseline's semantics of "a value typical for the result"). `None`
    /// only when the entire table is exhausted without any in-scope row for
    /// an AVG query.
    ///
    /// For rare-event AVG measures (e.g. 0/1 cancellation flags) an early
    /// estimate of exactly 0 spans no baseline value grid, so warm-up keeps
    /// reading (bounded by 50× `min_rows`) until the estimate turns
    /// non-zero or the table is exhausted.
    pub fn warmup(&mut self, min_rows: usize) -> Option<f64> {
        let per_aggregate = |est: f64, fct: voxolap_engine::query::AggFct| match fct {
            voxolap_engine::query::AggFct::Avg => est,
            _ => est / self.query.n_aggregates() as f64,
        };
        // A warm-started cache already holds `seeded_rows` rows' worth of
        // signal; only the deficit is read. The deficit is computed from
        // the seeded count alone, so cold runs (`seeded_rows == 0`) behave
        // byte-identically to a core without warm-start support.
        self.ingest_rows(min_rows.saturating_sub(self.seeded_rows as usize));
        let est = loop {
            if let Some(est) = self.cache.overall_estimate(self.query.fct()) {
                break est;
            }
            if self.ingest_rows(64) == 0 {
                return self
                    .cache
                    .overall_estimate(self.query.fct())
                    .map(|e| per_aggregate(e, self.query.fct()));
            }
        };
        if est != 0.0 || self.query.fct() != voxolap_engine::query::AggFct::Avg {
            return Some(per_aggregate(est, self.query.fct()));
        }
        let budget = min_rows.saturating_mul(50);
        while self.scanner.rows_read() < budget {
            if self.ingest_rows(256) == 0 {
                break;
            }
            match self.cache.overall_estimate(self.query.fct()) {
                Some(e) if e != 0.0 => return Some(e),
                _ => {}
            }
        }
        self.cache.overall_estimate(self.query.fct())
    }

    /// Fix σ for this run: an explicit override, or the paper's choice of
    /// half the overall mean (falling back to 1 for degenerate means).
    pub fn calibrate_sigma(&mut self, overall_estimate: f64, sigma_override: Option<f64>) -> f64 {
        self.sigma = calibrated_sigma(overall_estimate, sigma_override);
        self.sigma
    }

    /// One sampling iteration (`ST.Sample`): ingest a few rows, pick an
    /// eligible aggregate, estimate its value from the cache, descend the
    /// tree by UCT from `from`, reward the path by the probability the leaf
    /// speech's belief assigns to the estimate, and update statistics.
    ///
    /// Returns the observed reward (0 when nothing was evaluable yet).
    pub fn sample_once(
        &mut self,
        tree: &mut SpeechTree,
        from: NodeId,
        rows_per_iteration: usize,
    ) -> f64 {
        if let Some(res) = &self.res {
            if res.sample_faulted() {
                // A faulted iteration still counts (the budget tracks
                // attempts) but contributes no reward.
                self.samples += 1;
                return 0.0;
            }
        }
        self.ingest_rows(rows_per_iteration);
        self.samples += 1;

        let layout = self.query.layout();
        let Some(agg) = self.cache.pick_aggregate(self.query.fct(), &mut self.rng) else {
            return 0.0;
        };
        let Some(estimate) = self.cache.estimate_with(agg, &mut self.rng, &mut self.scratch) else {
            return 0.0;
        };
        let est = estimate.value(self.query.fct());

        let path = match self.policy {
            SelectionPolicy::Uct => tree.tree().select_path(from, &mut self.rng),
            SelectionPolicy::UniformRandom => tree.tree().random_path(from, &mut self.rng),
        };
        let Some(&leaf) = path.last() else {
            return 0.0;
        };
        let reward = if est.is_finite() {
            let coords = layout.coords_of_agg(agg);
            let mean = tree.mean_for(leaf, &coords);
            let (lo, hi) = rounding_bucket(est, self.sigma / 10.0);
            Normal::new(mean, self.sigma).prob_interval(lo, hi)
        } else {
            0.0
        };
        tree.tree_mut().update_path(&path, reward);
        reward
    }

    /// The calibrated σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Rows streamed so far (including any repair-scanned suffix rows).
    pub fn rows_read(&self) -> u64 {
        self.scanner.rows_read() as u64 + self.repair_rows
    }

    /// Sampling iterations performed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The sample cache (for uncertainty annotations).
    pub fn cache(&self) -> &SampleCache {
        &self.cache
    }

    /// The query being planned.
    pub fn query(&self) -> &Query {
        self.query
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::salary::SalaryConfig;
    use voxolap_data::DimId;
    use voxolap_engine::query::AggFct;
    use voxolap_speech::candidates::{CandidateConfig, CandidateGenerator};
    use voxolap_speech::constraints::SpeechConstraints;
    use voxolap_speech::render::Renderer;

    fn setup() -> (voxolap_data::Table, Query) {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        (table, q)
    }

    #[test]
    fn warmup_produces_overall_estimate() {
        let (table, q) = setup();
        let mut core = PlannerCore::new(&table, &q, 7);
        let est = core.warmup(50).unwrap();
        assert!(est > 60.0 && est < 130.0, "estimate {est}");
        assert!(core.rows_read() >= 50);
    }

    #[test]
    fn sigma_calibration_halves_mean() {
        let (table, q) = setup();
        let mut core = PlannerCore::new(&table, &q, 7);
        assert_eq!(core.calibrate_sigma(88.0, None), 44.0);
        assert_eq!(core.calibrate_sigma(88.0, Some(10.0)), 10.0);
        assert_eq!(core.calibrate_sigma(0.0, None), SIGMA_FALLBACK);
        assert_eq!(core.sigma(), SIGMA_FALLBACK);
    }

    #[test]
    fn sampling_prefers_truthful_baselines() {
        let (table, q) = setup();
        let schema = table.schema();
        let gen = CandidateGenerator::new(schema, &q, CandidateConfig::default());
        let renderer = Renderer::new(schema, &q);
        // Baseline-only tree so the test isolates baseline selection.
        let constraints = SpeechConstraints { max_chars: 300, max_refinements: 0 };
        let mut core = PlannerCore::new(&table, &q, 11);
        let overall = core.warmup(100).unwrap();
        core.calibrate_sigma(overall, None);
        let mut tree = SpeechTree::build(&gen, &renderer, &constraints, overall, 100_000);
        for _ in 0..4000 {
            core.sample_once(&mut tree, SpeechTree::ROOT, 4);
        }
        let best = tree.tree().best_child(SpeechTree::ROOT).unwrap();
        let speech = tree.speech_at(best);
        // The true grand mean is ~88-92; UCT must settle near it.
        assert!(
            (80.0..=100.0).contains(&speech.baseline.value),
            "picked baseline {}",
            speech.baseline.value
        );
        assert_eq!(core.samples(), 4000);
    }

    #[test]
    fn sample_before_any_row_is_harmless_for_avg() {
        let (table, q) = setup();
        let schema = table.schema();
        let gen = CandidateGenerator::new(schema, &q, CandidateConfig::default());
        let renderer = Renderer::new(schema, &q);
        let constraints = SpeechConstraints::paper_default();
        let mut core = PlannerCore::new(&table, &q, 3);
        let mut tree = SpeechTree::build(&gen, &renderer, &constraints, 88.0, 10_000);
        // rows_per_iteration = 0 keeps the cache empty: AVG has no eligible
        // aggregate and the reward must be 0 without panicking.
        let r = core.sample_once(&mut tree, SpeechTree::ROOT, 0);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn warm_started_core_matches_cold_start_estimates_over_seeds() {
        // Property behind warm starts (ISSUE satellite): a core seeded from
        // a donor snapshot and a cold core that streamed the same seeded
        // prefix itself must hold bit-identical caches, hence identical
        // estimates under identical estimator RNG streams.
        let (table, q) = setup();
        for seed in [3u64, 7, 11, 19, 23] {
            let mut donor = PlannerCore::new(&table, &q, seed);
            donor.enable_row_log(10_000);
            donor.ingest_rows(80);
            let snap = donor.take_snapshot(seed).expect("log intact");
            assert_eq!(snap.nr_read, 80);

            let mut warm = PlannerCore::new(&table, &q, seed);
            assert!(warm.warm_start(&snap));
            let mut cold = PlannerCore::new(&table, &q, seed);
            cold.ingest_rows(80);
            warm.ingest_rows(60);
            cold.ingest_rows(60);
            assert_eq!(warm.cache().nr_read(), cold.cache().nr_read());
            assert_eq!(warm.rows_read(), 60, "only fresh rows count as read");
            for agg in 0..q.n_aggregates() as u32 {
                assert_eq!(warm.cache().size(agg), cold.cache().size(agg));
                let mut rng_w = StdRng::seed_from_u64(seed ^ 0x77);
                let mut rng_c = StdRng::seed_from_u64(seed ^ 0x77);
                assert_eq!(
                    warm.cache().estimate(agg, &mut rng_w),
                    cold.cache().estimate(agg, &mut rng_c),
                    "seed {seed} agg {agg}"
                );
            }
        }
    }

    #[test]
    fn warm_start_shrinks_warmup_reads() {
        let (table, q) = setup();
        let mut donor = PlannerCore::new(&table, &q, 5);
        donor.enable_row_log(10_000);
        donor.ingest_rows(120);
        let snap = donor.take_snapshot(5).unwrap();

        let mut warm = PlannerCore::new(&table, &q, 5);
        assert!(warm.warm_start(&snap));
        let warm_est = warm.warmup(150).unwrap();
        let mut cold = PlannerCore::new(&table, &q, 5);
        let cold_est = cold.warmup(150).unwrap();
        assert!(
            warm.rows_read() < cold.rows_read(),
            "warm start reads fewer fresh rows ({} vs {})",
            warm.rows_read(),
            cold.rows_read()
        );
        // Both warmed caches cover the same 150-row prefix of the same
        // seeded scan, so the overall estimates coincide.
        assert_eq!(warm_est, cold_est);
    }

    #[test]
    fn warmup_on_empty_scope_returns_none_for_avg() {
        // Filter to a region, then generate a table with rows only outside
        // it — warmup must exhaust the table and give up gracefully.
        let table = SalaryConfig { rows: 8, seed: 1 }.generate();
        let schema = table.schema();
        // All 8 institutions round-robin across 16 states, so some state
        // has no rows; filter to an institutionless state's region is hard
        // to construct — instead filter start salary to a bin with no rows.
        let start = schema.dimension(DimId(1));
        let mut empty_bin = None;
        for &bin in start.leaves() {
            let has_rows = (0..table.row_count()).any(|row| table.member_at(DimId(1), row) == bin);
            if !has_rows {
                empty_bin = Some(bin);
                break;
            }
        }
        let Some(bin) = empty_bin else {
            return; // all bins occupied at this seed; nothing to test
        };
        let q = Query::builder(AggFct::Avg)
            .filter(DimId(1), bin)
            .group_by(DimId(0), LevelId(1))
            .build(schema)
            .unwrap();
        let mut core = PlannerCore::new(&table, &q, 2);
        assert_eq!(core.warmup(4), None);
    }
}
