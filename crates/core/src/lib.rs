//! # voxolap-core
//!
//! The paper's primary contribution: **holistic query evaluation and result
//! vocalization for voice-based OLAP** (paper §4), together with the
//! comparison approaches of its evaluation (§5).
//!
//! Four vocalizers share the [`Vocalizer`] interface:
//!
//! * [`holistic::Holistic`] — Algorithm 1: pipelined sampling + UCT
//!   planning overlapped with voice output; starts speaking the preamble
//!   immediately and refines quality estimates while each sentence plays.
//! * [`optimal::Optimal`] — evaluates the query exactly and scores every
//!   valid speech before speaking; the quality gold standard, far above the
//!   500 ms interactivity threshold on large data.
//! * [`unmerged::Unmerged`] — samples and plans for a fixed 500 ms budget,
//!   then commits to a whole speech; no overlap with voice output.
//! * [`prior::PriorGreedy`] — reimplementation of the greedy relational
//!   data-vocalization baseline (Trummer et al., VLDB'17) the paper
//!   compares against: enumerates the full result in value groups with
//!   greedy scope merging and no length budget.
//!
//! [`parallel::ParallelHolistic`] is the multi-threaded deployment engine:
//! the holistic algorithm with sharded row ingestion and lock-free UCT
//! sampling across a configurable thread pool (single-threaded it
//! reproduces [`holistic::Holistic`] exactly).
//!
//! ```
//! use voxolap_core::approach::Vocalizer;
//! use voxolap_core::holistic::{Holistic, HolisticConfig};
//! use voxolap_core::voice::VirtualVoice;
//! use voxolap_data::salary::SalaryConfig;
//! use voxolap_data::{DimId, dimension::LevelId};
//! use voxolap_engine::query::{AggFct, Query};
//!
//! let table = SalaryConfig::paper_scale().generate();
//! let query = Query::builder(AggFct::Avg)
//!     .group_by(DimId(0), LevelId(1))
//!     .group_by(DimId(1), LevelId(1))
//!     .build(table.schema()).unwrap();
//! let mut voice = VirtualVoice::default();
//! let outcome = Holistic::new(HolisticConfig::default())
//!     .vocalize(&table, &query, &mut voice);
//! assert!(outcome.body_text().contains("mid-career salary"));
//! ```

pub mod approach;
pub mod holistic;
pub mod optimal;
pub mod outcome;
pub mod parallel;
pub mod pipeline;
pub mod prior;
pub(crate) mod resilience;
pub mod sampler;
pub mod tree;
pub mod uncertainty;
pub mod unmerged;
pub mod voice;

pub use approach::Vocalizer;
pub use holistic::{Holistic, HolisticConfig};
pub use optimal::Optimal;
pub use outcome::{PlanStats, VocalizationOutcome};
pub use parallel::{ingest_throughput, IngestReport, ParallelHolistic};
pub use pipeline::{CancelKind, CancelToken, PlannedSentence, SentenceStats, SpeechStream};
pub use prior::PriorGreedy;
pub use uncertainty::UncertaintyMode;
pub use unmerged::Unmerged;
pub use voice::{InstantVoice, VirtualVoice, VoiceOutput};
