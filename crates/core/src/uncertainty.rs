//! Uncertainty extensions (paper §4.4).
//!
//! The algorithm "can be extended to provide users with information on
//! uncertainty" in two modes: a general warning appended when confidence in
//! spoken values is below a threshold, or precise confidence bounds spoken
//! at the point where voice rendering of the corresponding sentence starts.
//! Bounds come from the random samples in the cache; "the way in which
//! confidence bounds are calculated is not specific to vocalization".

use voxolap_data::schema::MeasureUnit;
use voxolap_engine::cache::SampleCache;
use voxolap_engine::query::{AggIdx, ResultLayout};
use voxolap_engine::sharded::ShardedSampleCache;
use voxolap_speech::verbalize::verbalize_value;

/// Anything that can produce per-aggregate confidence intervals — the
/// sequential sample cache and its sharded parallel counterpart both
/// qualify, so the annotation logic is written once against this trait.
pub trait ConfidenceSource {
    /// Normal-approximation confidence interval for one aggregate's
    /// average at `z` standard errors; `None` with too few samples.
    fn confidence_interval(&self, agg: AggIdx, z: f64) -> Option<(f64, f64)>;
}

impl ConfidenceSource for SampleCache {
    fn confidence_interval(&self, agg: AggIdx, z: f64) -> Option<(f64, f64)> {
        SampleCache::confidence_interval(self, agg, z)
    }
}

impl ConfidenceSource for ShardedSampleCache {
    fn confidence_interval(&self, agg: AggIdx, z: f64) -> Option<(f64, f64)> {
        ShardedSampleCache::confidence_interval(self, agg, z)
    }
}

/// How uncertainty information is transmitted to the user.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum UncertaintyMode {
    /// No uncertainty output (the default).
    #[default]
    Off,
    /// Append a general warning when the widest 95 % confidence interval
    /// among the sentence's aggregates exceeds `max_relative_width`
    /// (interval width relative to the estimate's magnitude).
    Warning {
        /// Threshold on relative interval width.
        max_relative_width: f64,
    },
    /// Speak the pooled 95 % confidence bounds after the sentence.
    SpokenBounds,
}

/// The 95 % z-score used for spoken bounds.
const Z95: f64 = 1.96;

/// Compute the uncertainty annotation for a sentence covering `aggs`.
///
/// Returns the extra sentence to append, or `None` when the mode is off,
/// confidence is sufficient, or no aggregate has enough cached samples.
pub fn annotate(
    mode: UncertaintyMode,
    cache: &dyn ConfidenceSource,
    _layout: &ResultLayout,
    aggs: &[AggIdx],
    unit: MeasureUnit,
) -> Option<String> {
    match mode {
        UncertaintyMode::Off => None,
        UncertaintyMode::Warning { max_relative_width } => {
            let mut widest = 0.0f64;
            for &a in aggs {
                if let Some((lo, hi)) = cache.confidence_interval(a, Z95) {
                    let mid = (lo + hi) / 2.0;
                    let rel = (hi - lo) / mid.abs().max(f64::MIN_POSITIVE);
                    widest = widest.max(rel);
                }
            }
            (widest > max_relative_width).then(|| {
                "Please note that confidence in the spoken values is still low.".to_string()
            })
        }
        UncertaintyMode::SpokenBounds => {
            let mut lo_min = f64::INFINITY;
            let mut hi_max = f64::NEG_INFINITY;
            let mut any = false;
            for &a in aggs {
                if let Some((lo, hi)) = cache.confidence_interval(a, Z95) {
                    lo_min = lo_min.min(lo);
                    hi_max = hi_max.max(hi);
                    any = true;
                }
            }
            any.then(|| {
                format!(
                    "With 95 percent confidence, values lie between {} and {}.",
                    verbalize_value(lo_min.max(0.0), unit),
                    verbalize_value(hi_max, unit)
                )
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::salary::SalaryConfig;
    use voxolap_data::DimId;
    use voxolap_engine::query::{AggFct, Query};

    fn filled_cache(rows: usize) -> (SampleCache, Query, voxolap_data::Table) {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .build(table.schema())
            .unwrap();
        let mut cache = SampleCache::new(q.n_aggregates(), table.row_count() as u64);
        let mut scan = table.scan_shuffled(5);
        for _ in 0..rows {
            let Some(r) = scan.next_row() else { break };
            let agg = q.layout().agg_of_row(r.members);
            cache.observe(agg, r.value);
        }
        (cache, q, table)
    }

    #[test]
    fn off_mode_annotates_nothing() {
        let (cache, q, table) = filled_cache(100);
        let aggs: Vec<u32> = (0..q.n_aggregates() as u32).collect();
        let out = annotate(
            UncertaintyMode::Off,
            &cache,
            q.layout(),
            &aggs,
            table.schema().measure_unit(),
        );
        assert_eq!(out, None);
    }

    #[test]
    fn warning_fires_only_below_threshold() {
        let (cache, q, table) = filled_cache(320);
        let aggs: Vec<u32> = (0..q.n_aggregates() as u32).collect();
        let unit = table.schema().measure_unit();
        // Salary spreads are ~10%; a generous threshold stays silent...
        let silent = annotate(
            UncertaintyMode::Warning { max_relative_width: 2.0 },
            &cache,
            q.layout(),
            &aggs,
            unit,
        );
        assert_eq!(silent, None);
        // ...a strict one warns.
        let warned = annotate(
            UncertaintyMode::Warning { max_relative_width: 0.0001 },
            &cache,
            q.layout(),
            &aggs,
            unit,
        );
        assert!(warned.unwrap().contains("confidence"));
    }

    #[test]
    fn spoken_bounds_verbalize_interval() {
        let (cache, q, table) = filled_cache(320);
        let aggs: Vec<u32> = (0..q.n_aggregates() as u32).collect();
        let text = annotate(
            UncertaintyMode::SpokenBounds,
            &cache,
            q.layout(),
            &aggs,
            table.schema().measure_unit(),
        )
        .unwrap();
        assert!(text.starts_with("With 95 percent confidence"));
        assert!(text.contains(" K"), "dollar values verbalized: {text}");
    }

    #[test]
    fn no_samples_means_no_bounds() {
        let (_, q, table) = filled_cache(0);
        let empty = SampleCache::new(q.n_aggregates(), table.row_count() as u64);
        let aggs: Vec<u32> = (0..q.n_aggregates() as u32).collect();
        let out = annotate(
            UncertaintyMode::SpokenBounds,
            &empty,
            q.layout(),
            &aggs,
            table.schema().measure_unit(),
        );
        assert_eq!(out, None);
    }
}
