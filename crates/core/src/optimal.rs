//! The "optimal" comparison approach (paper §5.1).
//!
//! Generates optimal speeches "considering all data and calculating precise
//! quality for each speech before starting output": a full exact evaluation
//! of the query, followed by exhaustive scoring of **every** speech in the
//! search space under the belief model. It samples "neither from the data
//! nor in the plan space" — its latency is therefore far above the 500 ms
//! interactivity threshold on large data, which is the point Figure 3
//! makes.

use std::sync::Arc;
use std::time::Instant;

use voxolap_belief::model::rounding_bucket;
use voxolap_belief::normal::Normal;
use voxolap_data::schema::Schema;
use voxolap_data::Table;
use voxolap_engine::exact::{evaluate, ExactResult};
use voxolap_engine::query::Query;
use voxolap_engine::semantic::SemanticCache;
use voxolap_faults::{DegradeReason, RunState};
use voxolap_mcts::NodeId;
use voxolap_speech::ast::Speech;
use voxolap_speech::candidates::{CandidateConfig, CandidateGenerator};
use voxolap_speech::constraints::SpeechConstraints;
use voxolap_speech::render::Renderer;

use crate::approach::Vocalizer;
use crate::pipeline::cancel::CancelToken;
use crate::pipeline::stream::{Buffered, SpeechStream};
use crate::tree::SpeechTree;
use crate::voice::VoiceOutput;

/// Configuration of the optimal planner.
#[derive(Debug, Clone)]
pub struct OptimalConfig {
    /// User-preference constraints.
    pub constraints: SpeechConstraints,
    /// Candidate-space configuration.
    pub candidates: CandidateConfig,
    /// Hard cap on search-tree size.
    pub max_tree_nodes: usize,
    /// Override the belief σ.
    pub sigma_override: Option<f64>,
}

impl Default for OptimalConfig {
    fn default() -> Self {
        OptimalConfig {
            constraints: SpeechConstraints { max_chars: 300, max_refinements: 2 },
            candidates: CandidateConfig::default(),
            max_tree_nodes: 500_000,
            sigma_override: None,
        }
    }
}

/// The optimal vocalizer.
#[derive(Debug, Clone, Default)]
pub struct Optimal {
    config: OptimalConfig,
    cache: Option<Arc<SemanticCache>>,
}

impl Optimal {
    /// Create with the given configuration.
    pub fn new(config: OptimalConfig) -> Self {
        Optimal { config, cache: None }
    }

    /// Attach a cross-query semantic cache: exact results are looked up
    /// before evaluating (skipping the full scan on a repeat query) and
    /// admitted after.
    pub fn with_cache(mut self, cache: Arc<SemanticCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &OptimalConfig {
        &self.config
    }
}

/// Exact quality (Definition 2.2) of the speech at `node`, using the
/// tree's incremental belief means.
fn node_quality(
    tree: &SpeechTree,
    node: NodeId,
    exact: &ExactResult,
    layout: &voxolap_engine::query::ResultLayout,
    sigma: f64,
) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for agg in 0..layout.n_aggregates() as u32 {
        let actual = exact.value(agg);
        if !actual.is_finite() {
            continue;
        }
        let coords = layout.coords_of_agg(agg);
        let mean = tree.mean_for(node, &coords);
        let (lo, hi) = rounding_bucket(actual, sigma / 10.0);
        total += Normal::new(mean, sigma).prob_interval(lo, hi);
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// A fully planned speech derived from exact aggregate values.
pub(crate) struct ExactPlan {
    pub speech: Speech,
    pub sentences: Vec<String>,
    pub tree_nodes: usize,
    pub truncated: bool,
}

/// Plan the best speech against exact aggregates — the Optimal variant's
/// exhaustive scoring, shared with the Holistic engines' semantic-cache
/// exact-hit path (which obtains the exact values without a table scan).
/// Returns `None` when the grand mean is undefined (empty query scope).
///
/// Scoring visits every node of the search space — over a wide breakdown
/// that is minutes of work (500k nodes × one `node_quality` pass over
/// every aggregate each). The `cancel` token is polled between nodes: a
/// fired deadline keeps the best speech found so far (the anytime cut of
/// the exhaustive search) and marks `run` degraded, so an exact-hit can
/// never outlast the deadline that bounds the sampled path.
pub(crate) fn plan_from_exact(
    schema: &Schema,
    query: &Query,
    exact: &ExactResult,
    cfg: &OptimalConfig,
    cancel: &CancelToken,
    run: Option<&RunState>,
) -> Option<ExactPlan> {
    let grand = exact.grand_mean();
    if !grand.is_finite() {
        return None;
    }
    let sigma = cfg.sigma_override.unwrap_or_else(|| (grand.abs() * 0.5).max(1e-12));
    let renderer = Renderer::new(schema, query);
    let generator = CandidateGenerator::new(schema, query, cfg.candidates.clone());
    let tree =
        SpeechTree::build(&generator, &renderer, &cfg.constraints, grand, cfg.max_tree_nodes);

    // Score every node (every speech in the search space T); ties go to
    // the shorter speech.
    let layout = query.layout();
    let mut best: Option<(NodeId, f64, usize)> = None;
    let mut since_poll = 0u32;
    for node in tree.all_nodes() {
        if node == SpeechTree::ROOT {
            continue;
        }
        since_poll += 1;
        if since_poll >= 32 {
            since_poll = 0;
            if cancel.fired() {
                if let Some(run) = run {
                    run.mark_degraded(DegradeReason::Deadline);
                }
                break;
            }
        }
        let q = node_quality(&tree, node, exact, layout, sigma);
        let frags = tree.speech_at(node).fragment_count();
        let better = match best {
            None => true,
            Some((_, bq, bf)) => q > bq + 1e-12 || (q > bq - 1e-12 && frags < bf),
        };
        if better {
            best = Some((node, q, frags));
        }
    }

    let (best_node, _, _) = best.unwrap_or((SpeechTree::ROOT, 0.0, 0));
    // Walk root -> best to emit sentences in speaking order.
    let mut chain = Vec::new();
    let mut cur = Some(best_node);
    while let Some(n) = cur {
        if n != SpeechTree::ROOT {
            chain.push(n);
        }
        cur = tree.tree().parent(n);
    }
    chain.reverse();
    let sentences: Vec<String> =
        chain.iter().filter_map(|&n| tree.sentence(n, &renderer)).collect();

    Some(ExactPlan {
        speech: tree.speech_at(best_node),
        sentences,
        tree_nodes: tree.tree().node_count(),
        truncated: tree.truncated(),
    })
}

impl Vocalizer for Optimal {
    fn name(&self) -> &'static str {
        "optimal"
    }

    fn stream<'a>(
        &self,
        table: &'a Table,
        query: &'a Query,
        voice: &'a mut dyn VoiceOutput,
        cancel: CancelToken,
    ) -> SpeechStream<'a> {
        let cfg = &self.config;
        let t0 = Instant::now();
        let schema = table.schema();
        let renderer = Renderer::new(schema, query);
        let preamble = renderer.preamble();

        // Exact aggregates: from the semantic cache on a repeat query,
        // otherwise a full scan — the expensive part on large data. A
        // version-stale entry is invalidated and recomputed: Optimal has
        // no degradation ladder, so it never serves stale data.
        let key = self.cache.as_ref().map(|_| query.key());
        let cached = match (&self.cache, &key) {
            (Some(cache), Some(key)) => match cache.lookup_exact(key, table.version()) {
                voxolap_engine::semantic::ExactLookup::Fresh(data) => Some(data),
                voxolap_engine::semantic::ExactLookup::Stale(_) => {
                    cache.invalidate_exact(key);
                    None
                }
                voxolap_engine::semantic::ExactLookup::Miss => None,
            },
            _ => None,
        };
        let hit = cached.is_some();
        let exact = match cached {
            Some(data) => data.to_result(query.fct()),
            None => {
                let exact = evaluate(query, table);
                if let (Some(cache), Some(key)) = (&self.cache, &key) {
                    cache.record_miss();
                    cache.admit_exact(
                        key,
                        table.version(),
                        exact.counts().to_vec(),
                        exact.sums().to_vec(),
                    );
                }
                exact
            }
        };
        let rows_read = if hit { 0 } else { table.row_count() as u64 };

        let source = match plan_from_exact(schema, query, &exact, cfg, &cancel, None) {
            Some(plan) => Buffered::planned(
                plan.sentences,
                Some(plan.speech),
                0,
                rows_read,
                plan.tree_nodes,
                plan.truncated,
            ),
            None => Buffered::no_data(rows_read, None),
        };

        // Only now does output start: latency includes the full scan.
        let latency = t0.elapsed();
        voice.start(&preamble);
        SpeechStream::new(voice, cancel, t0, preamble, latency, Box::new(source))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_belief::model::BeliefModel;
    use voxolap_belief::quality::speech_quality;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::salary::SalaryConfig;
    use voxolap_data::DimId;
    use voxolap_engine::query::AggFct;
    use voxolap_speech::scope::CompiledSpeech;

    use crate::voice::InstantVoice;

    fn setup() -> (voxolap_data::Table, Query) {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        (table, q)
    }

    #[test]
    fn optimal_speech_maximizes_exact_quality() {
        let (table, q) = setup();
        let mut voice = InstantVoice::default();
        let optimal = Optimal::default();
        let outcome = optimal.vocalize(&table, &q, &mut voice);
        let speech = outcome.speech.unwrap();

        // Verify: no single-change perturbation of the baseline improves
        // exact quality (spot check of optimality).
        let exact = evaluate(&q, &table);
        let sigma = exact.grand_mean().abs() * 0.5;
        let model = BeliefModel::new(sigma);
        let layout = q.layout();
        let chosen_q = speech_quality(
            &CompiledSpeech::compile(&speech, layout, table.schema()),
            &model,
            &exact,
            layout,
        );
        for factor in [0.5, 0.8, 1.25, 2.0] {
            let mut alt = speech.clone();
            alt.baseline.value *= factor;
            let alt_q = speech_quality(
                &CompiledSpeech::compile(&alt, layout, table.schema()),
                &model,
                &exact,
                layout,
            );
            assert!(
                chosen_q >= alt_q - 1e-9,
                "perturbed baseline x{factor} beats optimal: {alt_q} > {chosen_q}"
            );
        }
        assert!(chosen_q > 0.05, "optimal quality is non-trivial: {chosen_q}");
    }

    #[test]
    fn optimal_baseline_matches_grand_mean_grid() {
        let (table, q) = setup();
        let mut voice = InstantVoice::default();
        let outcome = Optimal::default().vocalize(&table, &q, &mut voice);
        let exact = evaluate(&q, &table);
        let speech = outcome.speech.unwrap();
        // Grand mean ~88-92: the one-significant-digit optimum is 90.
        assert!(
            (speech.baseline.value - exact.grand_mean()).abs() < 15.0,
            "baseline {} near grand mean {}",
            speech.baseline.value,
            exact.grand_mean()
        );
    }

    #[test]
    fn reads_every_row() {
        let (table, q) = setup();
        let mut voice = InstantVoice::default();
        let outcome = Optimal::default().vocalize(&table, &q, &mut voice);
        assert_eq!(outcome.stats.rows_read, 320);
        assert_eq!(outcome.stats.samples, 0, "no sampling in the optimal approach");
    }

    #[test]
    fn cached_repeat_skips_the_scan_and_matches_cold_output() {
        let (table, q) = setup();
        let cache = Arc::new(SemanticCache::with_capacity_mb(4));
        let optimal = Optimal::default().with_cache(cache.clone());
        let mut voice = InstantVoice::default();
        let first = optimal.vocalize(&table, &q, &mut voice);
        assert_eq!(first.stats.rows_read, 320);
        let mut voice = InstantVoice::default();
        let second = optimal.vocalize(&table, &q, &mut voice);
        assert_eq!(second.stats.rows_read, 0, "repeat query served from cache");
        assert_eq!(first.body_text(), second.body_text());
        let stats = cache.stats();
        assert_eq!(stats.exact_hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.admissions, 1);
    }

    #[test]
    fn deterministic_output() {
        let (table, q) = setup();
        let run = || {
            let mut voice = InstantVoice::default();
            Optimal::default().vocalize(&table, &q, &mut voice).body_text()
        };
        assert_eq!(run(), run());
    }
}
