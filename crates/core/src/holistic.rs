//! The holistic engine — paper Algorithm 1 (`EvalVocal`).
//!
//! Combined query evaluation and result vocalization:
//!
//! 1. speak the preamble immediately (it needs no data);
//! 2. while it plays, warm up the sample cache and expand the full speech
//!    search tree;
//! 3. while each sentence plays, refine speech-quality estimates by UCT
//!    sampling (`ST.Sample`) rooted at the current node;
//! 4. when a sentence finishes, commit to the child with the best **mean**
//!    reward (no exploration bonus — "Algorithm 1 cannot afford further
//!    exploration when selecting the best child node"), speak it, and make
//!    it the new sampling root so all previously collected statistics in
//!    its subtree remain available ("we avoid redundant planning work").

use std::sync::Arc;
use std::time::Instant;

use voxolap_data::Table;
use voxolap_engine::query::{AggIdx, Query, ResultLayout};
use voxolap_engine::repair::repair_snapshot;
use voxolap_engine::semantic::{ExactAggregates, ExactLookup, SemanticCache};
use voxolap_faults::{DegradeReason, Resilience, RunState};
use voxolap_mcts::NodeId;
use voxolap_speech::candidates::{CandidateConfig, CandidateGenerator};
use voxolap_speech::constraints::SpeechConstraints;
use voxolap_speech::render::Renderer;

use crate::approach::Vocalizer;
use crate::optimal::{plan_from_exact, OptimalConfig};
use crate::outcome::VocalizationOutcome;
use crate::pipeline::cancel::CancelToken;
use crate::pipeline::driver::{CoopSource, CoreSampler};
use crate::pipeline::stream::{Buffered, SpeechStream};
use crate::resilience::ResCtx;
use crate::sampler::{PlannerCore, SelectionPolicy};
use crate::tree::{NodeKind, SpeechTree};
use crate::uncertainty::UncertaintyMode;
use crate::voice::VoiceOutput;

/// Configuration of the holistic planner.
#[derive(Debug, Clone)]
pub struct HolisticConfig {
    /// User-preference constraints (speech length, fragment count).
    pub constraints: SpeechConstraints,
    /// Candidate-space configuration (quantifier menu, predicate pool).
    pub candidates: CandidateConfig,
    /// RNG seed; same seed, same speech.
    pub seed: u64,
    /// Rows ingested before the tree is built (overlapped with the
    /// preamble; estimates seed the baseline value grid).
    pub warmup_rows: usize,
    /// Rows streamed into the cache per sampling iteration.
    pub rows_per_iteration: usize,
    /// Minimum sampling iterations per sentence even when voice output has
    /// already finished (guarantees progress under instant voices).
    pub min_samples_per_sentence: u64,
    /// Hard cap on search-tree size; expansion truncates beyond it.
    pub max_tree_nodes: usize,
    /// Override the belief σ (default: half the overall estimate).
    pub sigma_override: Option<f64>,
    /// Uncertainty transmission mode (paper §4.4).
    pub uncertainty: UncertaintyMode,
    /// Fixed resample size of the cache estimator. The paper uses 10; the
    /// planner default is 100 because low-rate 0/1 measures (cancellation
    /// flags) make 10-row resamples almost always all-zero, biasing
    /// baseline selection low. Still O(1) per iteration.
    pub resample_size: usize,
    /// Tree-descent policy during sampling (UCT by default; uniform random
    /// is the no-prioritization ablation).
    pub policy: SelectionPolicy,
}

impl HolisticConfig {
    /// The [`OptimalConfig`] equivalent of these settings, used by the
    /// semantic-cache exact-hit path (exhaustive scoring, no sampling).
    pub(crate) fn exact_cfg(&self) -> OptimalConfig {
        OptimalConfig {
            constraints: self.constraints,
            candidates: self.candidates.clone(),
            max_tree_nodes: self.max_tree_nodes,
            sigma_override: self.sigma_override,
        }
    }
}

impl Default for HolisticConfig {
    fn default() -> Self {
        HolisticConfig {
            constraints: SpeechConstraints { max_chars: 300, max_refinements: 2 },
            candidates: CandidateConfig::default(),
            seed: 42,
            warmup_rows: 200,
            rows_per_iteration: 8,
            min_samples_per_sentence: 64,
            max_tree_nodes: 500_000,
            sigma_override: None,
            uncertainty: UncertaintyMode::Off,
            resample_size: 100,
            policy: SelectionPolicy::Uct,
        }
    }
}

/// The holistic vocalizer (paper §4).
#[derive(Debug, Clone, Default)]
pub struct Holistic {
    config: HolisticConfig,
    cache: Option<Arc<SemanticCache>>,
    resilience: Option<Arc<Resilience>>,
}

impl Holistic {
    /// Create with the given configuration.
    pub fn new(config: HolisticConfig) -> Self {
        Holistic { config, cache: None, resilience: None }
    }

    /// Attach a cross-query semantic cache. Repeats of an exactly-answered
    /// query skip sampling entirely; scope-compatible snapshots warm-start
    /// the sample cache. With an empty cache the output is bit-identical to
    /// a cacheless run.
    pub fn with_cache(mut self, cache: Arc<SemanticCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attach a resilience bundle: fault injection at the engine's fault
    /// sites, the retry → circuit-breaker read ladder, and anytime-answer
    /// degradation. Without an injector the hooks are inert and planning
    /// stays byte-identical.
    pub fn with_resilience(mut self, resilience: Arc<Resilience>) -> Self {
        self.resilience = Some(resilience);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &HolisticConfig {
        &self.config
    }

    /// Vocalize over a pre-built per-aggregate row index
    /// ([`voxolap_engine::stratified::AggregateIndex`]) so that rare
    /// aggregates receive cache entries from the first rows streamed.
    /// The index plays the role of the "specialized indexing structures"
    /// the paper suggests for particularly small data subsets (§4.3);
    /// building it costs a full scan, so it is meant to be prepared ahead
    /// of queries, like a materialized view. AVG queries only.
    pub fn vocalize_with_index(
        &self,
        table: &Table,
        query: &Query,
        index: &voxolap_engine::stratified::AggregateIndex,
        voice: &mut dyn VoiceOutput,
    ) -> VocalizationOutcome {
        let core = PlannerCore::with_index(
            table,
            query,
            index,
            self.config.seed,
            self.config.resample_size,
        );
        self.stream_with_core(table, query, voice, CancelToken::never(), core).drain()
    }
}

/// The aggregates a node's sentence claims something about: all of them
/// for a baseline, the refinement scope otherwise. Used only for
/// uncertainty annotations.
pub(crate) fn relevant_aggs(tree: &SpeechTree, node: NodeId, layout: &ResultLayout) -> Vec<AggIdx> {
    match tree.tree().data(node) {
        NodeKind::Root | NodeKind::Baseline(_) => (0..layout.n_aggregates() as u32).collect(),
        NodeKind::Refinement { scope, .. } => {
            (0..layout.n_aggregates() as u32).filter(|&a| scope.contains(a, layout)).collect()
        }
    }
}

/// Speak a query answered entirely from cached exact aggregates: no table
/// scan, no sampling — the preamble starts immediately and the speech is
/// planned by exhaustive exact scoring (the Optimal variant's planner).
/// Shared by [`Holistic`] and `ParallelHolistic` on semantic-cache exact
/// hits.
pub(crate) fn exact_hit_stream<'a>(
    table: &'a Table,
    query: &'a Query,
    voice: &'a mut dyn VoiceOutput,
    cancel: CancelToken,
    data: &ExactAggregates,
    cfg: &OptimalConfig,
    run: Option<&RunState>,
) -> SpeechStream<'a> {
    let t0 = Instant::now();
    let schema = table.schema();
    let renderer = Renderer::new(schema, query);
    let preamble = renderer.preamble();
    voice.start(&preamble);
    let latency = t0.elapsed();

    let exact = data.to_result(query.fct());
    let source = match plan_from_exact(schema, query, &exact, cfg, &cancel, run) {
        Some(plan) => Buffered::planned(
            plan.sentences,
            Some(plan.speech),
            0,
            0,
            plan.tree_nodes,
            plan.truncated,
        ),
        None => Buffered::no_data(0, None),
    };
    SpeechStream::new(voice, cancel, t0, preamble, latency, Box::new(source))
}

impl Vocalizer for Holistic {
    fn name(&self) -> &'static str {
        "holistic"
    }

    fn stream<'a>(
        &self,
        table: &'a Table,
        query: &'a Query,
        voice: &'a mut dyn VoiceOutput,
        cancel: CancelToken,
    ) -> SpeechStream<'a> {
        let core = PlannerCore::with_resample_size(
            table,
            query,
            self.config.seed,
            self.config.resample_size,
        );
        self.stream_with_core(table, query, voice, cancel, core)
    }
}

impl Holistic {
    /// Algorithm 1's Ingest stage over an already-constructed planner
    /// core: preamble, semantic-cache consultation, warm-up, σ
    /// calibration, tree construction. The returned stream runs one
    /// Plan/Sample → Commit round of the shared driver per sentence.
    fn stream_with_core<'a>(
        &self,
        table: &'a Table,
        query: &'a Query,
        voice: &'a mut dyn VoiceOutput,
        cancel: CancelToken,
        mut core: PlannerCore<'a>,
    ) -> SpeechStream<'a> {
        let cfg = self.config.clone();
        // One RunState per vocalization: the degrade ladder's per-run
        // fault budget and first-cause tag. `None` keeps every hook inert.
        let resil: Option<(Arc<Resilience>, Arc<RunState>)> =
            self.resilience.as_ref().map(|res| (res.clone(), res.new_run()));
        if let Some((res, run)) = &resil {
            core.set_resilience(ResCtx::new(res.clone(), run.clone(), "table"));
        }

        // Semantic cache, layer 1: a repeat of an exactly-answered query
        // skips sampling entirely and plans against stored aggregates.
        // Entries from an older table version are served only when fresh
        // data is unreachable (§12 stale-serve, marked `stale: true`);
        // otherwise they are invalidated and the query replans fresh.
        if let Some(cache) = &self.cache {
            match cache.lookup_exact(&query.key(), table.version()) {
                ExactLookup::Fresh(data) => {
                    let run = resil.as_ref().map(|(_, run)| run.as_ref() as &RunState);
                    return exact_hit_stream(
                        table,
                        query,
                        voice,
                        cancel,
                        &data,
                        &cfg.exact_cfg(),
                        run,
                    )
                    .attach_resilience(resil);
                }
                ExactLookup::Stale(data) => {
                    if serve_stale_exact(&cancel, resil.as_ref()) {
                        cache.note_stale_serve();
                        let run = resil.as_ref().map(|(_, run)| run.as_ref() as &RunState);
                        return exact_hit_stream(
                            table,
                            query,
                            voice,
                            cancel,
                            &data,
                            &cfg.exact_cfg(),
                            run,
                        )
                        .mark_stale()
                        .attach_resilience(resil);
                    }
                    cache.invalidate_exact(&query.key());
                }
                ExactLookup::Miss => {}
            }
        }

        let t0 = Instant::now();
        let schema = table.schema();
        let renderer = Renderer::new(schema, query);

        // Start voice output of the preamble; everything below overlaps it.
        let preamble = renderer.preamble();
        voice.start(&preamble);
        let latency = t0.elapsed();

        // Semantic cache, layer 2: a snapshot with the same scope (measure
        // + filters) seeds the sample cache with its uniform row prefix so
        // sampling resumes where the donor query stopped. A version-stale
        // snapshot is first *repaired* by scanning only the appended
        // suffix (never a full rescan) and re-admitted. A cold run also
        // starts logging in-scope rows for later snapshot admission.
        if let Some(cache) = &self.cache {
            core.enable_row_log(cache.snapshot_row_budget(table.schema().dimensions().len()));
            let scope = query.key().scope();
            let warmed = cache.lookup_snapshot(&scope, cfg.seed).is_some_and(|snap| {
                let snap = if snap.version == table.version() {
                    Some(snap)
                } else {
                    repair_snapshot(&snap, table, &scope).map(|out| {
                        cache.note_repair(out.rows_read);
                        core.note_repair_rows(out.rows_read);
                        cache.admit_snapshot(&scope, out.snapshot.clone());
                        Arc::new(out.snapshot)
                    })
                };
                snap.is_some_and(|snap| core.warm_start(&snap))
            });
            if !warmed {
                cache.record_miss();
            }
        }

        core.set_policy(cfg.policy);
        let Some(overall) = core.warmup(cfg.warmup_rows) else {
            // Entire table streamed, not one row in scope: report that —
            // and still admit the exhausted scan to the semantic cache.
            let rows_read = core.rows_read();
            let semantic = self.cache.clone();
            let seed = cfg.seed;
            let admit = move || admit_core(&semantic, seed, &core, query);
            let source = Buffered::no_data(rows_read, Some(Box::new(admit)));
            return SpeechStream::new(voice, cancel, t0, preamble, latency, Box::new(source))
                .attach_resilience(resil);
        };
        core.calibrate_sigma(overall, cfg.sigma_override);

        let generator = CandidateGenerator::new(schema, query, cfg.candidates.clone());
        let tree =
            SpeechTree::build(&generator, &renderer, &cfg.constraints, overall, cfg.max_tree_nodes);

        let layout = query.layout();
        let unit = schema.measure(query.measure()).unit;
        let sampler = CoreSampler::new(core, cfg.rows_per_iteration, self.cache.clone(), cfg.seed);
        let run = resil.as_ref().map(|(_, run)| run.clone());
        let source = CoopSource::new(sampler, tree, renderer, cfg, layout, unit, run);
        SpeechStream::new(voice, cancel, t0, preamble, latency, Box::new(source))
            .attach_resilience(resil)
    }
}

/// §12 stale-serve decision for a version-stale exact cache entry: serve
/// it (marked `stale: true`) only when fresh data is unreachable — the
/// run's deadline has already fired, or the data source's read ladder
/// refuses the read (breaker open / dead source). Otherwise the caller
/// invalidates the entry and replans fresh. Serving marks the run
/// degraded; without an injector the ladder always allows reads, so the
/// decision consumes nothing and appendless runs stay byte-identical.
pub(crate) fn serve_stale_exact(
    cancel: &CancelToken,
    resil: Option<&(Arc<Resilience>, Arc<RunState>)>,
) -> bool {
    if cancel.fired_kind() == Some(crate::pipeline::cancel::CancelKind::Deadline) {
        if let Some((_, run)) = resil {
            run.mark_degraded(DegradeReason::Deadline);
        }
        return true;
    }
    match resil {
        Some((res, run)) if res.injector().is_some() => {
            // `read_allowed` walks the full retry → breaker ladder; its
            // fallback path already marks the run degraded.
            !ResCtx::new(res.clone(), run.clone(), "table").read_allowed()
        }
        _ => false,
    }
}

/// Offer a run's results to the semantic cache: exact aggregates when the
/// scan was exhausted (uncapped), and the logged uniform row prefix as a
/// warm-start snapshot for scope-overlapping queries. Entries carry the
/// run's pinned table version.
pub(crate) fn admit_core(
    semantic: &Option<Arc<SemanticCache>>,
    seed: u64,
    core: &PlannerCore<'_>,
    query: &Query,
) {
    let Some(cache) = semantic else { return };
    if let Some((counts, sums)) = core.cache().exact_result() {
        cache.admit_exact(&query.key(), core.table_version(), counts, sums);
    }
    if let Some(snap) = core.take_snapshot(seed) {
        cache.admit_snapshot(&query.key().scope(), snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::salary::SalaryConfig;
    use voxolap_data::DimId;
    use voxolap_engine::query::AggFct;

    use crate::voice::{InstantVoice, VirtualVoice};

    fn setup() -> (voxolap_data::Table, Query) {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        (table, q)
    }

    fn fast_config() -> HolisticConfig {
        HolisticConfig {
            min_samples_per_sentence: 400,
            max_tree_nodes: 60_000,
            ..HolisticConfig::default()
        }
    }

    #[test]
    fn produces_grammatical_speech() {
        let (table, q) = setup();
        let mut voice = InstantVoice::default();
        let outcome = Holistic::new(fast_config()).vocalize(&table, &q, &mut voice);
        assert!(outcome.preamble.starts_with("Considering"));
        let speech = outcome.speech.as_ref().unwrap();
        assert!(speech.refinements.len() <= 2);
        // First body sentence is the baseline.
        assert!(outcome.sentences[0].contains("is the average mid-career salary."));
        // Voice transcript = preamble + body sentences.
        assert_eq!(voice.transcript().len(), 1 + outcome.sentences.len());
    }

    #[test]
    fn respects_constraints() {
        let (table, q) = setup();
        let mut voice = InstantVoice::default();
        let cfg = HolisticConfig {
            constraints: SpeechConstraints { max_chars: 300, max_refinements: 1 },
            ..fast_config()
        };
        let outcome = Holistic::new(cfg).vocalize(&table, &q, &mut voice);
        let speech = outcome.speech.as_ref().unwrap();
        assert!(speech.refinements.len() <= 1);
        assert!(outcome.body_len() <= 300 + 80, "uncertainty-free body near budget");
    }

    #[test]
    fn is_deterministic_under_seed() {
        let (table, q) = setup();
        let run = || {
            let mut voice = InstantVoice::default();
            Holistic::new(fast_config()).vocalize(&table, &q, &mut voice).body_text()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn baseline_lands_near_truth() {
        let (table, q) = setup();
        let mut voice = VirtualVoice::new(20.0);
        let outcome = Holistic::new(fast_config()).vocalize(&table, &q, &mut voice);
        let v = outcome.speech.unwrap().baseline.value;
        // Exact grand mean is ~88-92 K; one-significant-digit planning must
        // land on 80, 90, or 100.
        assert!((70.0..=110.0).contains(&v), "baseline {v}");
    }

    #[test]
    fn pipelining_grants_more_samples_with_longer_voice() {
        let (table, q) = setup();
        let mut slow_voice = VirtualVoice::new(50.0);
        let slow = Holistic::new(fast_config()).vocalize(&table, &q, &mut slow_voice);
        let mut instant_voice = InstantVoice::default();
        let instant = Holistic::new(fast_config()).vocalize(&table, &q, &mut instant_voice);
        assert!(
            slow.stats.samples > instant.stats.samples,
            "speaking time buys sampling: {} vs {}",
            slow.stats.samples,
            instant.stats.samples
        );
    }

    #[test]
    fn latency_is_far_below_interactivity_threshold() {
        let (table, q) = setup();
        let mut voice = InstantVoice::default();
        let outcome = Holistic::new(fast_config()).vocalize(&table, &q, &mut voice);
        assert!(
            outcome.latency.as_millis() < 500,
            "latency {:?} under the 500 ms threshold",
            outcome.latency
        );
    }

    #[test]
    fn uncertainty_warning_mode_appends_note() {
        let (table, q) = setup();
        let mut voice = InstantVoice::default();
        let cfg = HolisticConfig {
            uncertainty: UncertaintyMode::Warning { max_relative_width: 0.0001 },
            ..fast_config()
        };
        let outcome = Holistic::new(cfg).vocalize(&table, &q, &mut voice);
        assert!(
            outcome.sentences.iter().any(|s| s.contains("confidence")),
            "warning appended: {:?}",
            outcome.sentences
        );
    }

    #[test]
    fn stratified_index_covers_rare_scopes_faster() {
        use voxolap_data::flights::FlightsConfig;
        use voxolap_engine::stratified::AggregateIndex;
        // Region x season on flights: the US-territories cells are rare.
        let table = FlightsConfig { rows: 20_000, seed: 42 }.generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        let index = AggregateIndex::build(&table, &q, 42);
        let holistic = Holistic::new(HolisticConfig {
            min_samples_per_sentence: 400,
            max_tree_nodes: 60_000,
            ..HolisticConfig::default()
        });
        let mut voice = InstantVoice::default();
        let outcome = holistic.vocalize_with_index(&table, &q, &index, &mut voice);
        assert!(!outcome.sentences.is_empty());
        assert!(outcome.speech.is_some());
        // Same constraints as the shuffled path.
        assert!(outcome.body_len() <= 300);
    }

    #[test]
    #[should_panic(expected = "only unbiased for AVG")]
    fn stratified_rejects_count_queries() {
        use voxolap_engine::stratified::AggregateIndex;
        let (table, _) = setup();
        let q = Query::builder(AggFct::Count)
            .group_by(DimId(0), LevelId(1))
            .build(table.schema())
            .unwrap();
        let avg_q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .build(table.schema())
            .unwrap();
        let index = AggregateIndex::build(&table, &avg_q, 1);
        let mut voice = InstantVoice::default();
        let _ = Holistic::default().vocalize_with_index(&table, &q, &index, &mut voice);
    }

    #[test]
    fn empty_cache_run_matches_cacheless_output() {
        let (table, q) = setup();
        let cacheless = {
            let mut voice = InstantVoice::default();
            Holistic::new(fast_config()).vocalize(&table, &q, &mut voice).body_text()
        };
        let cache = Arc::new(SemanticCache::with_capacity_mb(4));
        let cached = {
            let mut voice = InstantVoice::default();
            Holistic::new(fast_config())
                .with_cache(cache.clone())
                .vocalize(&table, &q, &mut voice)
                .body_text()
        };
        assert_eq!(cacheless, cached, "a cold cache must not perturb planning");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert!(stats.admissions >= 1, "exhausted scan admits results: {stats:?}");
    }

    #[test]
    fn repeat_query_is_served_from_the_exact_cache() {
        let (table, q) = setup();
        let cache = Arc::new(SemanticCache::with_capacity_mb(4));
        let holistic = Holistic::new(fast_config()).with_cache(cache.clone());
        let mut voice = InstantVoice::default();
        let cold = holistic.vocalize(&table, &q, &mut voice);
        assert_eq!(cold.stats.rows_read, 320, "cold run exhausts the table");
        let mut voice = InstantVoice::default();
        let hit = holistic.vocalize(&table, &q, &mut voice);
        assert_eq!(hit.stats.rows_read, 0, "repeat reads no rows");
        assert_eq!(hit.stats.samples, 0, "repeat skips sampling");
        assert!(hit.speech.is_some());
        assert_eq!(cache.stats().exact_hits, 1);
    }

    #[test]
    fn scope_overlap_warm_starts_the_sampler() {
        let (table, _) = setup();
        let schema = table.schema();
        // Donor groups by college region, the follow-up by start-salary
        // bin: same scope (measure, no filters), different partition.
        let donor =
            Query::builder(AggFct::Avg).group_by(DimId(0), LevelId(1)).build(schema).unwrap();
        let target =
            Query::builder(AggFct::Avg).group_by(DimId(1), LevelId(1)).build(schema).unwrap();
        let cache = Arc::new(SemanticCache::with_capacity_mb(4));
        let holistic = Holistic::new(fast_config()).with_cache(cache.clone());
        let mut voice = InstantVoice::default();
        let _ = holistic.vocalize(&table, &donor, &mut voice);
        let mut voice = InstantVoice::default();
        let cold = Holistic::new(fast_config()).vocalize(&table, &target, &mut voice);
        let mut voice = InstantVoice::default();
        let warm = holistic.vocalize(&table, &target, &mut voice);
        assert!(
            warm.stats.rows_read < cold.stats.rows_read,
            "warm start reuses the donor prefix: {} vs {}",
            warm.stats.rows_read,
            cold.stats.rows_read
        );
        assert_eq!(cache.stats().warm_hits, 1);
        assert!(warm.speech.is_some());
    }

    /// Ingest rows that duplicate the table's own prefix — valid under
    /// the existing dictionaries, so appends need no new members.
    fn echo_rows(table: &voxolap_data::Table, n: usize) -> Vec<voxolap_data::IngestRow> {
        use voxolap_data::schema::MeasureId;
        use voxolap_data::{DimValue, IngestRow};
        let schema = table.schema();
        (0..n)
            .map(|i| {
                let row = i % table.row_count();
                IngestRow {
                    dims: (0..schema.dimensions().len())
                        .map(|d| {
                            let dim = DimId(d as u8);
                            let m = table.member_at(dim, row);
                            DimValue::Phrase(schema.dimension(dim).member(m).phrase.clone())
                        })
                        .collect(),
                    values: (0..schema.measures().len())
                        .map(|m| table.measure_value(MeasureId(m as u8), row))
                        .collect(),
                }
            })
            .collect()
    }

    #[test]
    fn append_invalidates_exact_entries_and_repairs_snapshots() {
        let (table, q) = setup();
        let cache = Arc::new(SemanticCache::with_capacity_mb(4));
        let holistic = Holistic::new(fast_config()).with_cache(cache.clone());
        let mut voice = InstantVoice::default();
        let cold = holistic.vocalize(&table, &q, &mut voice);
        assert_eq!(cold.stats.rows_read, 320, "cold run exhausts the table");

        // Grow the table: the exact entry goes stale, the snapshot is
        // repairable by scanning only the 80 appended rows.
        let (grown, _) = table.append_rows(&echo_rows(&table, 80)).unwrap();
        assert_eq!(grown.version(), 1);
        let mut voice = InstantVoice::default();
        let replanned = holistic.vocalize(&grown, &q, &mut voice);
        assert!(!replanned.stats.stale, "no fault pressure, so no stale serve");
        assert_eq!(
            replanned.stats.rows_read, 80,
            "repair reads exactly the appended suffix (donor was exhausted)"
        );
        let stats = cache.stats();
        assert_eq!(stats.exact_invalidations, 1, "{stats:?}");
        assert_eq!(stats.snapshot_repairs, 1, "{stats:?}");
        assert_eq!(stats.repair_rows_read, 80, "{stats:?}");
        assert_eq!(stats.stale_serves, 0, "{stats:?}");

        // The replanned run re-admitted at version 1: the repeat is an
        // exact hit again with zero rows read.
        let mut voice = InstantVoice::default();
        let hit = holistic.vocalize(&grown, &q, &mut voice);
        assert_eq!(hit.stats.rows_read, 0, "repeat serves the re-admitted entry");
        assert!(!hit.stats.stale);
        assert_eq!(cache.stats().exact_hits, 1);
    }

    #[test]
    fn unreachable_source_serves_stale_exact_marked() {
        use std::time::Duration;
        use voxolap_faults::{FaultPlan, FaultSite, SiteSchedule};
        let (table, q) = setup();
        let cache = Arc::new(SemanticCache::with_capacity_mb(4));
        let mut voice = InstantVoice::default();
        let _ =
            Holistic::new(fast_config()).with_cache(cache.clone()).vocalize(&table, &q, &mut voice);
        let (grown, _) = table.append_rows(&echo_rows(&table, 40)).unwrap();

        // Dead data source: the §12 ladder cannot replan fresh, so the
        // version-stale exact entry is served, marked stale + degraded.
        let plan = FaultPlan::new(5).with_site(FaultSite::DataRead, SiteSchedule::error(1.0));
        let res = Arc::new(Resilience::new(Some(plan)).with_breaker(2, Duration::from_secs(3600)));
        let mut voice = InstantVoice::default();
        let outcome = Holistic::new(fast_config())
            .with_cache(cache.clone())
            .with_resilience(res)
            .vocalize(&grown, &q, &mut voice);
        assert!(outcome.stats.stale, "served answer is marked stale");
        assert!(outcome.stats.degraded, "stale serves ride the degrade ladder");
        assert!(outcome.speech.is_some(), "the stale answer is still an answer");
        assert_eq!(outcome.stats.rows_read, 0, "no fresh row was readable");
        let stats = cache.stats();
        assert_eq!(stats.stale_serves, 1, "{stats:?}");
        assert_eq!(stats.exact_invalidations, 0, "the entry stays cached");
    }

    #[test]
    fn inert_resilience_keeps_output_identical() {
        let (table, q) = setup();
        let mut v1 = InstantVoice::default();
        let plain = Holistic::new(fast_config()).vocalize(&table, &q, &mut v1);
        let mut v2 = InstantVoice::default();
        let res = Arc::new(Resilience::default());
        let resilient =
            Holistic::new(fast_config()).with_resilience(res.clone()).vocalize(&table, &q, &mut v2);
        assert_eq!(resilient.sentences, plain.sentences, "no injector, no perturbation");
        assert_eq!(resilient.stats.samples, plain.stats.samples);
        assert_eq!(resilient.stats.rows_read, plain.stats.rows_read);
        assert!(!resilient.stats.degraded);
        let snap = res.stats().snapshot();
        assert_eq!(snap.clean_answers, 1);
        assert_eq!(snap.degraded_answers, 0);
    }

    #[test]
    fn dead_data_source_falls_back_and_degrades() {
        use std::time::Duration;
        use voxolap_faults::{FaultPlan, FaultSite, SiteSchedule};
        // Every read errors forever: retries exhaust, the breaker opens,
        // and the cold run (nothing cached) reports no data — degraded.
        let (table, q) = setup();
        let plan = FaultPlan::new(5).with_site(FaultSite::DataRead, SiteSchedule::error(1.0));
        let res = Arc::new(Resilience::new(Some(plan)).with_breaker(2, Duration::from_secs(3600)));
        let mut voice = InstantVoice::default();
        let outcome = Holistic::new(fast_config())
            .with_resilience(res.clone())
            .vocalize(&table, &q, &mut voice);
        assert!(outcome.stats.degraded, "fallback answers are tagged");
        assert_eq!(outcome.stats.rows_read, 0, "no row ever arrived");
        assert!(outcome.sentences[0].contains("No data"));
        let snap = res.stats().snapshot();
        assert!(snap.retries >= 2, "the ladder retried before tripping: {snap:?}");
        assert!(snap.breaker_trips >= 1);
        assert_eq!(snap.cache_fallbacks, 1, "one fallback per run");
        assert_eq!(snap.degraded_answers, 1);
    }

    #[test]
    fn exhausted_fault_budget_yields_anytime_answer() {
        use voxolap_faults::{FaultPlan, FaultSite, SiteSchedule};
        // Every sampling iteration faults; a tiny budget exhausts at the
        // root, so the anytime path commits whatever the tree holds and
        // tags the answer degraded instead of hanging or panicking.
        let (table, q) = setup();
        let plan = FaultPlan::new(3).with_site(FaultSite::Sample, SiteSchedule::error(1.0));
        let res = Arc::new(Resilience::new(Some(plan)).with_budget(8));
        let mut voice = InstantVoice::default();
        let outcome = Holistic::new(fast_config())
            .with_resilience(res.clone())
            .vocalize(&table, &q, &mut voice);
        assert!(outcome.stats.degraded, "budget exhaustion tags the answer");
        assert!(outcome.stats.samples <= 16, "planning stopped early: {}", outcome.stats.samples);
        assert!(!outcome.preamble.is_empty(), "the preamble is always delivered");
        assert_eq!(res.stats().snapshot().degraded_answers, 1);
    }

    #[test]
    fn empty_scope_is_reported_gracefully() {
        let table = SalaryConfig { rows: 8, seed: 1 }.generate();
        let schema = table.schema();
        let start = schema.dimension(DimId(1));
        let empty_bin =
            start.leaves().iter().copied().find(|&bin| {
                !(0..table.row_count()).any(|row| table.member_at(DimId(1), row) == bin)
            });
        let Some(bin) = empty_bin else { return };
        let q = Query::builder(AggFct::Avg)
            .filter(DimId(1), bin)
            .group_by(DimId(0), LevelId(1))
            .build(schema)
            .unwrap();
        let mut voice = InstantVoice::default();
        let outcome = Holistic::new(fast_config()).vocalize(&table, &q, &mut voice);
        assert!(outcome.sentences[0].contains("No data"));
        assert!(outcome.speech.is_none());
    }
}
