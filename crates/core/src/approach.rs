//! The common interface all vocalization approaches implement.

use voxolap_data::Table;
use voxolap_engine::query::Query;

use crate::outcome::VocalizationOutcome;
use crate::pipeline::{CancelToken, SpeechStream};
use crate::voice::VoiceOutput;

/// A query-evaluation-and-vocalization approach (paper §5 compares
/// Holistic, Optimal, Unmerged, and the Prior greedy baseline).
///
/// The primary API is [`stream`](Vocalizer::stream): a pull-based
/// [`SpeechStream`] that yields each sentence as it is planned, so
/// callers (server, CLI, voice sessions) can deliver output while
/// planning continues in the background and abort it via the
/// [`CancelToken`]. [`vocalize`](Vocalizer::vocalize) is the blocking
/// drain adapter over it.
pub trait Vocalizer: Send + Sync {
    /// Short identifier used in experiment output (e.g. `"holistic"`).
    fn name(&self) -> &'static str;

    /// Begin evaluating `query` against `table`, speaking through
    /// `voice`. The preamble has already been started when this returns;
    /// pull sentences with [`SpeechStream::next_sentence`]. Firing
    /// `cancel` stops sampling within one iteration.
    fn stream<'a>(
        &self,
        table: &'a Table,
        query: &'a Query,
        voice: &'a mut dyn VoiceOutput,
        cancel: CancelToken,
    ) -> SpeechStream<'a>;

    /// Evaluate `query` against `table` and speak the result through
    /// `voice`. Returns the spoken text and planner statistics.
    fn vocalize(
        &self,
        table: &Table,
        query: &Query,
        voice: &mut dyn VoiceOutput,
    ) -> VocalizationOutcome {
        self.stream(table, query, voice, CancelToken::never()).drain()
    }
}
