//! The common interface all vocalization approaches implement.

use voxolap_data::Table;
use voxolap_engine::query::Query;

use crate::outcome::VocalizationOutcome;
use crate::voice::VoiceOutput;

/// A query-evaluation-and-vocalization approach (paper §5 compares
/// Holistic, Optimal, Unmerged, and the Prior greedy baseline).
pub trait Vocalizer {
    /// Short identifier used in experiment output (e.g. `"holistic"`).
    fn name(&self) -> &'static str;

    /// Evaluate `query` against `table` and speak the result through
    /// `voice`. Returns the spoken text and planner statistics.
    fn vocalize(
        &self,
        table: &Table,
        query: &Query,
        voice: &mut dyn VoiceOutput,
    ) -> VocalizationOutcome;
}
