//! Reimplementation of the prior data-vocalization baseline
//! (Trummer, Zhu, Bryan: "Data vocalization: optimizing voice output of
//! relational data", VLDB 2017) that the paper compares against in §5.2.
//!
//! Characteristics the comparison relies on (paper §6):
//!
//! * it does **not** interleave query processing and vocalization — the
//!   query result is computed exactly first;
//! * it does **not** limit speech output length — every aggregate is
//!   described, so output grows with the result (worst case exponentially
//!   in the number of dimensions, the effect behind Table 9);
//! * it uses greedy merging instead of MCTS: aggregates with the same
//!   one-significant-digit value are grouped into one sentence, and scope
//!   descriptions within a group are greedily collapsed when they cover a
//!   dimension completely (the `m_S = m_C = 1` configuration of the
//!   original paper: one merging pass over scopes and one over values).
//!
//! The resulting output reads like spoken "bullet points": *"Around two
//! percent is the average cancellation probability for flights starting
//! from the West in Spring, for flights starting from the South in Fall,
//! …"*.

use std::collections::HashMap;
use std::time::Instant;

use voxolap_data::schema::Schema;
use voxolap_data::Table;
use voxolap_engine::exact::evaluate;
use voxolap_engine::query::Query;
use voxolap_speech::render::{aggregate_phrase, render_unit, Renderer};
use voxolap_speech::verbalize::{round_significant, verbalize_value};

use crate::approach::Vocalizer;
use crate::pipeline::cancel::CancelToken;
use crate::pipeline::stream::{Buffered, SpeechStream};
use crate::voice::VoiceOutput;

/// A (partial) scope description: one optional coordinate index per
/// dimension; `None` means the dimension is unrestricted ("all").
type ScopeDesc = Vec<Option<u32>>;

/// The prior greedy vocalizer.
#[derive(Debug, Clone, Default)]
pub struct PriorGreedy;

impl PriorGreedy {
    /// Greedy scope merging: repeatedly, when a set of descriptions agrees
    /// on all dimensions but one and covers that dimension's full
    /// coordinate range, collapse it to a single description with the
    /// dimension unrestricted. Runs to fixpoint.
    fn merge_scopes(mut descs: Vec<ScopeDesc>, radixes: &[u32]) -> Vec<ScopeDesc> {
        loop {
            let mut merged_any = false;
            'dims: for d in 0..radixes.len() {
                // Bucket descriptions by their value on all other dims.
                let mut buckets: HashMap<Vec<Option<u32>>, Vec<usize>> = HashMap::new();
                for (i, desc) in descs.iter().enumerate() {
                    if desc[d].is_none() {
                        continue;
                    }
                    let mut key = desc.clone();
                    key[d] = None;
                    buckets.entry(key).or_default().push(i);
                }
                for (key, idxs) in buckets {
                    let mut covered: Vec<bool> = vec![false; radixes[d] as usize];
                    for &i in &idxs {
                        if let Some(c) = descs[i][d] {
                            covered[c as usize] = true;
                        }
                    }
                    if covered.iter().all(|&b| b) && radixes[d] > 1 {
                        // Remove the covering descriptions, insert the
                        // collapsed one.
                        let mut keep: Vec<ScopeDesc> = Vec::with_capacity(descs.len());
                        let drop: Vec<usize> = idxs;
                        for (i, desc) in descs.into_iter().enumerate() {
                            if !drop.contains(&i) {
                                keep.push(desc);
                            }
                        }
                        keep.push(key);
                        descs = keep;
                        merged_any = true;
                        break 'dims;
                    }
                }
            }
            if !merged_any {
                return descs;
            }
        }
    }

    /// Render one scope description, e.g.
    /// `"flights starting from the West in Spring"` or `"all data"`.
    fn describe(desc: &ScopeDesc, query: &Query, schema: &Schema) -> String {
        let layout = query.layout();
        let parts: Vec<String> = query
            .group_by()
            .iter()
            .filter_map(|&(dim, _)| {
                desc[dim.index()].map(|c| {
                    let member = layout.coords(dim)[c as usize];
                    schema.dimension(dim).predicate_phrase(member)
                })
            })
            .collect();
        if parts.is_empty() {
            "all data".to_string()
        } else {
            parts.join(" and ")
        }
    }
}

impl Vocalizer for PriorGreedy {
    fn name(&self) -> &'static str {
        "prior"
    }

    fn stream<'a>(
        &self,
        table: &'a Table,
        query: &'a Query,
        voice: &'a mut dyn VoiceOutput,
        cancel: CancelToken,
    ) -> SpeechStream<'a> {
        let t0 = Instant::now();
        let schema = table.schema();
        let renderer = Renderer::new(schema, query);
        let preamble = renderer.preamble();
        let layout = query.layout();

        // Exact evaluation first; no interleaving.
        let exact = evaluate(query, table);

        // Value merging: group aggregates by one-significant-digit value.
        let mut groups: Vec<(f64, Vec<u32>)> = Vec::new();
        for agg in 0..layout.n_aggregates() as u32 {
            let v = exact.value(agg);
            if !v.is_finite() {
                continue;
            }
            let key = round_significant(v, 1);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, aggs)) => aggs.push(agg),
                None => groups.push((key, vec![agg])),
            }
        }
        // Speak larger values first (the original orders by salience).
        groups.sort_by(|a, b| b.0.total_cmp(&a.0));

        let n_dims = schema.dimensions().len();
        let radixes: Vec<u32> =
            (0..n_dims).map(|d| layout.radix(voxolap_data::DimId(d as u8))).collect();
        let measure_info = schema.measure(query.measure());
        let agg_name = aggregate_phrase(query.fct(), &measure_info.name);
        let unit = render_unit(query.fct(), measure_info.unit);

        let mut sentences = Vec::new();
        for (value, aggs) in groups {
            let descs: Vec<ScopeDesc> = aggs
                .iter()
                .map(|&a| layout.coords_of_agg(a).into_iter().map(Some).collect())
                .collect();
            let merged = Self::merge_scopes(descs, &radixes);
            let scope_list: Vec<String> =
                merged.iter().map(|d| Self::describe(d, query, schema)).collect();
            let spoken_value = verbalize_value(value, unit);
            let mut sentence = format!("{spoken_value} is the {agg_name} for ");
            sentence.push_str(&scope_list.join(", for "));
            sentence.push('.');
            // Capitalize the sentence start.
            let mut chars = sentence.chars();
            let sentence = match chars.next() {
                Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
                None => sentence,
            };
            sentences.push(sentence);
        }

        // Only now does output start: no interleaving with evaluation.
        let latency = t0.elapsed();
        voice.start(&preamble);
        let source = Buffered::planned(sentences, None, 0, table.row_count() as u64, 0, false);
        SpeechStream::new(voice, cancel, t0, preamble, latency, Box::new(source))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::flights::FlightsConfig;
    use voxolap_data::salary::SalaryConfig;
    use voxolap_data::DimId;
    use voxolap_engine::query::AggFct;

    use crate::voice::InstantVoice;

    #[test]
    fn enumerates_every_aggregate_value() {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        let mut voice = InstantVoice::default();
        let outcome = PriorGreedy.vocalize(&table, &q, &mut voice);
        assert!(outcome.speech.is_none());
        assert!(!outcome.sentences.is_empty());
        // Every sentence follows the bullet-point pattern.
        for s in &outcome.sentences {
            assert!(s.contains("is the average mid-career salary for"), "{s}");
        }
    }

    #[test]
    fn output_grows_with_dimensionality() {
        let table = FlightsConfig { rows: 30_000, seed: 42 }.generate();
        let schema = table.schema();
        let small_q = Query::builder(AggFct::Avg)
            .group_by(DimId(1), LevelId(1)) // 4 seasons
            .build(schema)
            .unwrap();
        let big_q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(2)) // 24 states
            .group_by(DimId(1), LevelId(2)) // 12 months
            .build(schema)
            .unwrap();
        let mut voice = InstantVoice::default();
        let small = PriorGreedy.vocalize(&table, &small_q, &mut voice);
        let big = PriorGreedy.vocalize(&table, &big_q, &mut voice);
        assert!(
            big.body_len() > 4 * small.body_len(),
            "prior output explodes with dimensions: {} vs {}",
            big.body_len(),
            small.body_len()
        );
    }

    #[test]
    fn scope_merging_collapses_full_dimensions() {
        // Two dims with radix 2 and 3; six descriptions covering everything
        // must merge down to one unrestricted description.
        let descs: Vec<ScopeDesc> =
            (0..2).flat_map(|a| (0..3).map(move |b| vec![Some(a), Some(b)])).collect();
        let merged = PriorGreedy::merge_scopes(descs, &[2, 3]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0], vec![None, None]);
    }

    #[test]
    fn partial_coverage_does_not_merge() {
        let descs: Vec<ScopeDesc> = vec![vec![Some(0), Some(0)], vec![Some(0), Some(1)]];
        let merged = PriorGreedy::merge_scopes(descs.clone(), &[2, 3]);
        assert_eq!(merged.len(), 2, "2 of 3 coordinates covered: no merge");
    }

    #[test]
    fn merged_scopes_verbalize_as_all_data() {
        let table = SalaryConfig::paper_scale().generate();
        // Group by rough salary only: if both bins round to the same value
        // the result collapses to a single "all data" sentence.
        let q = Query::builder(AggFct::Count)
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        let mut voice = InstantVoice::default();
        let outcome = PriorGreedy.vocalize(&table, &q, &mut voice);
        // Either the bins differ (two sentences) or merged ("all data").
        assert!(!outcome.sentences.is_empty());
    }
}
