//! Truly concurrent pipelined vocalization.
//!
//! [`Holistic`](crate::holistic::Holistic) interleaves sampling and voice
//! output *cooperatively*: it polls `VO.IsPlaying` between iterations,
//! which is exact and deterministic but occupies the calling thread. A
//! deployment speaking through a real TTS engine wants the paper's literal
//! architecture instead — "while the current sentence is spoken, we
//! determine the best follow-up in the background". [`ConcurrentHolistic`]
//! provides that: a background thread samples continuously while the
//! calling thread sleeps on voice output and commits sentences.
//!
//! Trade-offs vs. the cooperative engine: wall-clock speaking time is
//! genuinely overlapped (the planner never blocks output), but outcomes
//! depend on thread scheduling and are therefore **not** bit-reproducible
//! across runs. Experiments use the cooperative engine; interactive
//! sessions can use either.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use voxolap_data::Table;
use voxolap_engine::query::Query;
use voxolap_mcts::NodeId;
use voxolap_speech::candidates::CandidateGenerator;
use voxolap_speech::render::Renderer;

use crate::approach::Vocalizer;
use crate::holistic::HolisticConfig;
use crate::outcome::{PlanStats, VocalizationOutcome};
use crate::sampler::PlannerCore;
use crate::tree::SpeechTree;
use crate::voice::VoiceOutput;

/// How long the committing thread sleeps between `VO.IsPlaying` polls.
const POLL_INTERVAL: Duration = Duration::from_millis(2);

/// Sampling iterations per lock acquisition on the background thread —
/// large enough to amortize locking, small enough to keep commit latency
/// (time the main thread waits for the lock) negligible.
const SAMPLER_BATCH: usize = 32;

/// The concurrent variant of the holistic vocalizer.
#[derive(Debug, Clone, Default)]
pub struct ConcurrentHolistic {
    config: HolisticConfig,
}

impl ConcurrentHolistic {
    /// Create with the given configuration (shared with
    /// [`Holistic`](crate::holistic::Holistic); the uncertainty mode is
    /// currently ignored by the concurrent engine).
    pub fn new(config: HolisticConfig) -> Self {
        ConcurrentHolistic { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &HolisticConfig {
        &self.config
    }
}

/// State shared between the sampler thread and the committing thread.
struct Shared<'a> {
    core: PlannerCore<'a>,
    tree: SpeechTree,
    /// The node sampling currently descends from (the last committed
    /// sentence).
    current: NodeId,
}

impl Vocalizer for ConcurrentHolistic {
    fn name(&self) -> &'static str {
        "holistic-concurrent"
    }

    fn vocalize(
        &self,
        table: &Table,
        query: &Query,
        voice: &mut dyn VoiceOutput,
    ) -> VocalizationOutcome {
        let cfg = &self.config;
        let t0 = Instant::now();
        let schema = table.schema();
        let renderer = Renderer::new(schema, query);

        let preamble = renderer.preamble();
        voice.start(&preamble);
        let latency = t0.elapsed();

        let mut core =
            PlannerCore::with_resample_size(table, query, cfg.seed, cfg.resample_size);
        core.set_policy(cfg.policy);
        let Some(overall) = core.warmup(cfg.warmup_rows) else {
            let sentence = "No data matches the query scope.".to_string();
            voice.start(&sentence);
            return VocalizationOutcome {
                speech: None,
                preamble,
                sentences: vec![sentence],
                latency,
                stats: PlanStats {
                    rows_read: core.rows_read(),
                    samples: 0,
                    tree_nodes: 0,
                    truncated: false,
                    planning_time: t0.elapsed(),
                },
            };
        };
        core.calibrate_sigma(overall, cfg.sigma_override);

        let generator = CandidateGenerator::new(schema, query, cfg.candidates.clone());
        let tree = SpeechTree::build(
            &generator,
            &renderer,
            &cfg.constraints,
            overall,
            cfg.max_tree_nodes,
        );

        let shared = Mutex::new(Shared { core, tree, current: SpeechTree::ROOT });
        let stop = AtomicBool::new(false);
        let mut sentences: Vec<String> = Vec::new();

        std::thread::scope(|scope| {
            // Background sampler: runs until told to stop, always rooted
            // at the latest committed node (so prior statistics in the
            // chosen subtree keep paying off).
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    let mut s = shared.lock();
                    let from = s.current;
                    for _ in 0..SAMPLER_BATCH {
                        let Shared { core, tree, .. } = &mut *s;
                        core.sample_once(tree, from, cfg.rows_per_iteration);
                    }
                }
            });

            // Committing loop: sleep while the voice plays, then pick the
            // best child (ensuring the minimum per-sentence sample count).
            loop {
                let sentence_started = shared.lock().core.samples();
                while voice.is_playing() {
                    std::thread::sleep(POLL_INTERVAL);
                }
                // Progress floor for near-instant voices.
                while shared.lock().core.samples()
                    < sentence_started + cfg.min_samples_per_sentence
                {
                    std::thread::sleep(POLL_INTERVAL);
                }
                let mut s = shared.lock();
                if s.tree.tree().is_leaf(s.current) {
                    break;
                }
                let Some(next) = s.tree.tree().best_child(s.current) else {
                    break;
                };
                s.current = next;
                let sentence = s
                    .tree
                    .sentence(next, &renderer)
                    .expect("committed nodes are never the root");
                drop(s);
                sentences.push(sentence.clone());
                voice.start(&sentence);
            }
            stop.store(true, Ordering::Relaxed);
        });

        let s = shared.into_inner();
        VocalizationOutcome {
            speech: Some(s.tree.speech_at(s.current)),
            preamble,
            sentences,
            latency,
            stats: PlanStats {
                rows_read: s.core.rows_read(),
                samples: s.core.samples(),
                tree_nodes: s.tree.tree().node_count(),
                truncated: s.tree.truncated(),
                planning_time: t0.elapsed(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::salary::SalaryConfig;
    use voxolap_data::DimId;
    use voxolap_engine::query::AggFct;
    use voxolap_speech::constraints::SpeechConstraints;

    /// A wall-clock voice local to these tests (the production one lives
    /// in voxolap-voice, which sits above this crate).
    struct SleepyVoice {
        until: Option<Instant>,
        per_char: Duration,
        transcript: Vec<String>,
    }

    impl SleepyVoice {
        fn new(per_char: Duration) -> Self {
            SleepyVoice { until: None, per_char, transcript: Vec::new() }
        }
    }

    impl VoiceOutput for SleepyVoice {
        fn start(&mut self, sentence: &str) {
            self.until = Some(Instant::now() + self.per_char * sentence.len() as u32);
            self.transcript.push(sentence.to_string());
        }
        fn is_playing(&mut self) -> bool {
            self.until.is_some_and(|t| Instant::now() < t)
        }
        fn transcript(&self) -> &[String] {
            &self.transcript
        }
    }

    fn setup() -> (voxolap_data::Table, Query) {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        (table, q)
    }

    #[test]
    fn concurrent_engine_produces_valid_speech() {
        let (table, q) = setup();
        let cfg = HolisticConfig {
            min_samples_per_sentence: 200,
            max_tree_nodes: 40_000,
            ..HolisticConfig::default()
        };
        let mut voice = SleepyVoice::new(Duration::from_micros(200));
        let outcome = ConcurrentHolistic::new(cfg).vocalize(&table, &q, &mut voice);
        let speech = outcome.speech.as_ref().expect("structured speech");
        assert!(speech.refinements.len() <= 2);
        assert!(!outcome.sentences.is_empty());
        assert_eq!(voice.transcript().len(), 1 + outcome.sentences.len());
        assert!(outcome.latency.as_millis() < 500);
    }

    #[test]
    fn background_sampling_accumulates_during_speech() {
        let (table, q) = setup();
        let cfg = HolisticConfig {
            min_samples_per_sentence: 1,
            max_tree_nodes: 40_000,
            ..HolisticConfig::default()
        };
        // ~20 ms of "speaking" per sentence buys thousands of iterations.
        let mut voice = SleepyVoice::new(Duration::from_micros(300));
        let outcome = ConcurrentHolistic::new(cfg).vocalize(&table, &q, &mut voice);
        assert!(
            outcome.stats.samples > 500,
            "background thread sampled during speech: {}",
            outcome.stats.samples
        );
    }

    #[test]
    fn respects_fragment_budget() {
        let (table, q) = setup();
        let cfg = HolisticConfig {
            constraints: SpeechConstraints { max_chars: 300, max_refinements: 1 },
            min_samples_per_sentence: 100,
            max_tree_nodes: 40_000,
            ..HolisticConfig::default()
        };
        let mut voice = SleepyVoice::new(Duration::from_micros(50));
        let outcome = ConcurrentHolistic::new(cfg).vocalize(&table, &q, &mut voice);
        assert!(outcome.speech.unwrap().refinements.len() <= 1);
    }
}
