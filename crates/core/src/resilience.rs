//! Engine-side graceful degradation (DESIGN.md §12).
//!
//! The planners thread a per-run [`ResCtx`] through their ingestion and
//! sampling hot paths. Each data-read batch walks the degradation ladder:
//!
//! 1. **retry** — a failed read is retried with exponential backoff and
//!    deterministic jitter;
//! 2. **circuit breaker** — repeated consecutive failures trip the
//!    source's breaker; while it is open, reads are skipped entirely and
//!    planning continues on whatever the sample cache already holds
//!    (warm-start rows make this fallback literal);
//! 3. **anytime answer** — when the run's deadline passes or its fault
//!    budget is exhausted mid-plan, the driver commits what it has: a
//!    shortened but grammar-valid speech tagged `degraded: true`.
//!
//! With no injector attached every hook is an `Option` branch that
//! consumes no randomness, so fault-free runs stay bit-identical to the
//! pre-fault engines (guarded by parity tests).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use voxolap_faults::{CircuitBreaker, DegradeReason, FaultSite, Resilience, RunState};

use crate::pipeline::cancel::{CancelKind, CancelToken};

/// Per-run resilience context: the engine's shared [`Resilience`] bundle,
/// this run's [`RunState`], and the breaker guarding the run's data
/// source. Cloned per worker thread; all state is shared through `Arc`s.
#[derive(Debug, Clone)]
pub(crate) struct ResCtx {
    res: Arc<Resilience>,
    run: Arc<RunState>,
    breaker: Arc<CircuitBreaker>,
}

impl ResCtx {
    /// Build the context for a run reading from `source`.
    pub(crate) fn new(res: Arc<Resilience>, run: Arc<RunState>, source: &str) -> Self {
        let breaker = res.breaker(source);
        ResCtx { res, run, breaker }
    }

    /// Gate one read batch through the degradation ladder. `true` means
    /// the batch may stream rows; `false` means the source is unavailable
    /// (breaker open or just tripped) — the caller reads nothing and
    /// planning continues on cached samples, with the run marked degraded.
    ///
    /// Transient faults never yield `false`: a failed read is retried
    /// with backoff, and even an exhausted retry budget only counts one
    /// consecutive failure against the breaker before trying afresh.
    pub(crate) fn read_allowed(&self) -> bool {
        if self.res.injector().is_none() {
            return true;
        }
        loop {
            if !self.breaker.allow() {
                self.fallback();
                return false;
            }
            let Some(fault) = self.res.roll(FaultSite::DataRead) else {
                self.breaker.on_success();
                return true;
            };
            self.run.note_fault();
            fault.stall();
            if !fault.error {
                self.breaker.on_success();
                return true;
            }
            // The read failed: retry with exponential backoff before
            // declaring this attempt a consecutive failure.
            let retry = self.res.retry();
            let stats = self.res.stats();
            let mut recovered = false;
            for attempt in 0..retry.max_retries {
                stats.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(retry.delay(attempt, fault.token));
                match self.res.roll(FaultSite::DataRead) {
                    None => {
                        recovered = true;
                        break;
                    }
                    Some(f) => {
                        self.run.note_fault();
                        f.stall();
                        if !f.error {
                            recovered = true;
                            break;
                        }
                    }
                }
            }
            if recovered {
                self.breaker.on_success();
                return true;
            }
            if self.breaker.on_failure() {
                stats.breaker_trips.fetch_add(1, Ordering::Relaxed);
            }
            // Not tripped yet: take another full attempt at the source.
        }
    }

    /// The source's breaker is open: record the cache fallback (once per
    /// run) and tag the answer degraded.
    fn fallback(&self) {
        if self.run.note_fallback() {
            self.res.stats().cache_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        self.run.mark_degraded(DegradeReason::CacheFallback);
    }

    /// Consult the Sample fault site before one sampling iteration.
    /// `true` means the iteration is lost (the caller still counts it, so
    /// progress floors terminate); a latency-only fault just stalls.
    pub(crate) fn sample_faulted(&self) -> bool {
        let Some(fault) = self.res.roll(FaultSite::Sample) else {
            return false;
        };
        self.run.note_fault();
        fault.stall();
        fault.error
    }
}

/// How a sampling round ends when interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RoundEnd {
    /// Keep sampling.
    Continue,
    /// Hard stop: yield no further sentence.
    Stop,
    /// Commit what the tree holds right now — the anytime answer.
    Anytime,
}

/// Decide how a per-sentence round reacts to cancellation and the fault
/// budget. `at_root` means no body sentence was committed yet (an anytime
/// commit is needed for the answer to contain at least a baseline);
/// `at_leaf` means the speech is already complete (nothing is lost, so
/// nothing is marked degraded). Without a [`RunState`] this reduces
/// exactly to the pre-fault `cancel.fired()` check.
pub(crate) fn round_status(
    cancel: &CancelToken,
    run: Option<&RunState>,
    at_root: bool,
    at_leaf: bool,
) -> RoundEnd {
    if let Some(kind) = cancel.fired_kind() {
        return match (kind, run) {
            (CancelKind::Deadline, Some(run)) if !at_leaf => {
                run.mark_degraded(DegradeReason::Deadline);
                if at_root {
                    RoundEnd::Anytime
                } else {
                    RoundEnd::Stop
                }
            }
            _ => RoundEnd::Stop,
        };
    }
    if let Some(run) = run {
        if run.budget_exhausted() {
            if at_leaf {
                return RoundEnd::Stop;
            }
            run.mark_degraded(DegradeReason::FaultBudget);
            return if at_root { RoundEnd::Anytime } else { RoundEnd::Stop };
        }
    }
    RoundEnd::Continue
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};
    use voxolap_faults::{FaultPlan, SiteSchedule};

    fn ctx(res: Resilience) -> (Arc<Resilience>, Arc<RunState>, ResCtx) {
        let res = Arc::new(res);
        let run = res.new_run();
        let rc = ResCtx::new(res.clone(), run.clone(), "table");
        (res, run, rc)
    }

    #[test]
    fn inert_context_always_allows_reads() {
        let (_res, run, rc) = ctx(Resilience::default());
        for _ in 0..100 {
            assert!(rc.read_allowed());
            assert!(!rc.sample_faulted());
        }
        assert_eq!(run.faults(), 0);
        assert!(!run.degraded());
    }

    #[test]
    fn transient_read_faults_recover_via_retry() {
        // 30% error rate: most batches succeed, failed ones recover on a
        // retry roll with overwhelming probability before the breaker
        // (threshold 5 consecutive) can trip.
        let plan = FaultPlan::new(3).with_site(FaultSite::DataRead, SiteSchedule::error(0.3));
        let res = Resilience::new(Some(plan))
            .with_breaker(50, Duration::from_millis(1))
            .with_budget(u64::MAX);
        let (res, run, rc) = ctx(res);
        for _ in 0..200 {
            assert!(rc.read_allowed(), "retries absorb transient faults");
        }
        assert!(run.faults() > 0, "faults were observed");
        assert!(res.stats().snapshot().retries > 0, "retries were counted");
        assert_eq!(res.stats().snapshot().cache_fallbacks, 0);
        assert!(!run.degraded());
    }

    #[test]
    fn permanent_failure_trips_breaker_and_falls_back() {
        let plan = FaultPlan::new(1).with_site(FaultSite::DataRead, SiteSchedule::error(1.0));
        let res = Resilience::new(Some(plan)).with_breaker(3, Duration::from_secs(3600));
        let (res, run, rc) = ctx(res);
        assert!(!rc.read_allowed(), "a dead source denies the batch");
        assert!(!rc.read_allowed(), "breaker stays open within cooldown");
        let snap = res.stats().snapshot();
        assert_eq!(snap.breaker_trips, 1);
        assert_eq!(snap.cache_fallbacks, 1, "fallback counted once per run");
        assert!(snap.retries >= 3 * 2, "each failure cycle retried");
        assert!(run.degraded());
        assert_eq!(run.reason(), Some(DegradeReason::CacheFallback));
    }

    #[test]
    fn breaker_probe_recovers_after_cooldown() {
        let plan = FaultPlan::new(1).with_site(FaultSite::DataRead, SiteSchedule::error(1.0));
        let res = Resilience::new(Some(plan)).with_breaker(2, Duration::from_millis(5));
        let (res, run, rc) = ctx(res);
        assert!(!rc.read_allowed());
        // Exhaust the deterministic failing prefix so later rolls can
        // pass, then wait out the cooldown: the half-open probe closes
        // the breaker and reads resume.
        let inj = res.injector().unwrap();
        let mut probe_plan_done = false;
        for _ in 0..200 {
            if inj.roll(FaultSite::DataRead).is_none() {
                probe_plan_done = true;
                break;
            }
        }
        // p = 1.0 never rolls a miss; flip expectations accordingly.
        assert!(!probe_plan_done, "p=1.0 always faults");
        std::thread::sleep(Duration::from_millis(6));
        assert!(!rc.read_allowed(), "probe fails against p=1.0 and re-opens");
        assert!(res.stats().snapshot().breaker_trips >= 2, "failed probe re-trips");
        assert!(run.degraded());
    }

    #[test]
    fn sample_faults_stall_or_skip() {
        let plan = FaultPlan::new(9).with_site(
            FaultSite::Sample,
            SiteSchedule { probability: 1.0, latency: Duration::ZERO, error: true },
        );
        let (_res, run, rc) = ctx(Resilience::new(Some(plan)));
        assert!(rc.sample_faulted(), "error faults skip the iteration");
        assert_eq!(run.faults(), 1);
    }

    #[test]
    fn round_status_matches_prefault_semantics_without_run() {
        let live = CancelToken::new();
        assert_eq!(round_status(&live, None, true, false), RoundEnd::Continue);
        live.cancel();
        assert_eq!(round_status(&live, None, true, false), RoundEnd::Stop);
        let late = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(round_status(&late, None, true, false), RoundEnd::Stop);
    }

    #[test]
    fn deadline_with_run_yields_anytime_at_root_only() {
        let late = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let run = RunState::default();
        assert_eq!(round_status(&late, Some(&run), true, false), RoundEnd::Anytime);
        assert_eq!(run.reason(), Some(DegradeReason::Deadline));
        let run = RunState::default();
        assert_eq!(round_status(&late, Some(&run), false, false), RoundEnd::Stop);
        assert!(run.degraded(), "mid-speech deadline still degrades the answer");
        let run = RunState::default();
        assert_eq!(round_status(&late, Some(&run), false, true), RoundEnd::Stop);
        assert!(!run.degraded(), "a complete speech is never degraded");
        // A client cancel is a hard stop even with a run attached.
        let client = CancelToken::new();
        client.cancel();
        let run = RunState::default();
        assert_eq!(round_status(&client, Some(&run), true, false), RoundEnd::Stop);
        assert!(!run.degraded());
    }

    #[test]
    fn fault_budget_exhaustion_yields_anytime_at_root() {
        let live = CancelToken::new();
        let run = RunState::new(2);
        run.note_fault();
        assert_eq!(round_status(&live, Some(&run), true, false), RoundEnd::Continue);
        run.note_fault();
        assert_eq!(round_status(&live, Some(&run), true, false), RoundEnd::Anytime);
        assert_eq!(run.reason(), Some(DegradeReason::FaultBudget));
        let run = RunState::new(1);
        run.note_fault();
        assert_eq!(round_status(&live, Some(&run), false, false), RoundEnd::Stop);
        assert_eq!(round_status(&live, Some(&run), false, true), RoundEnd::Stop);
    }
}
