//! The speech search tree (paper Figure 2, Algorithm 2 `ST.Expand`).
//!
//! The tree is generated **in its entirety** during preprocessing — an
//! unusual choice for MCTS that the paper justifies by the user-preference
//! bound on speech length: the tree's height is at most the fragment budget
//! and its size `O(m^k)` (Theorem A.4). Node payloads store only the
//! *increment* each node adds to its parent's speech (a baseline value or a
//! compiled refinement), so a path's belief mean for one aggregate is
//! recovered in `O(k)` by walking ancestors (Lemma A.2).
//!
//! A configurable node cap guards against degenerate configurations
//! (very large predicate pools with deep fragment budgets); hitting it
//! marks the tree as truncated in the planner statistics.

use voxolap_data::schema::Schema;
use voxolap_engine::query::ResultLayout;
use voxolap_mcts::{NodeId, Tree};
use voxolap_speech::ast::{Baseline, Refinement, Speech};
use voxolap_speech::candidates::CandidateGenerator;
use voxolap_speech::constraints::SpeechConstraints;
use voxolap_speech::render::Renderer;
use voxolap_speech::scope::RefinementScope;

/// Payload of one search-tree node: the increment over the parent's speech.
#[derive(Debug, Clone)]
pub enum NodeKind {
    /// The root — represents the preamble, which carries no choices.
    Root,
    /// A baseline statement with its claimed value.
    Baseline(Baseline),
    /// A refinement with its resolved scope and additive delta
    /// (delta already accounts for reference chaining through subsuming
    /// ancestors, paper §3.4).
    Refinement {
        /// The grammar-level refinement.
        ast: Refinement,
        /// Its aggregate scope.
        scope: RefinementScope,
        /// Additive change applied to in-scope aggregates.
        delta: f64,
        /// The aggregate value this refinement implies for its scope —
        /// the reference for chained finer refinements.
        implied_value: f64,
    },
}

/// The fully expanded speech search tree for one query.
#[derive(Debug)]
pub struct SpeechTree {
    tree: Tree<NodeKind>,
    truncated: bool,
    n_aggs: usize,
}

impl SpeechTree {
    /// The root node (represents the preamble).
    pub const ROOT: NodeId = Tree::<NodeKind>::ROOT;

    /// Expand the full tree (`ST.Expand` from the root): one child per
    /// baseline candidate around `overall_estimate`, then recursively one
    /// child per valid refinement, bounded by `constraints` and `max_nodes`.
    pub fn build(
        generator: &CandidateGenerator<'_>,
        renderer: &Renderer<'_>,
        constraints: &SpeechConstraints,
        overall_estimate: f64,
        max_nodes: usize,
    ) -> Self {
        let schema = generator.schema();
        let layout = generator.query().layout();
        let mut st = SpeechTree {
            tree: Tree::new(NodeKind::Root),
            truncated: false,
            n_aggs: layout.n_aggregates(),
        };
        for b in generator.baselines(overall_estimate) {
            if st.tree.node_count() >= max_nodes {
                st.truncated = true;
                break;
            }
            let speech = Speech { baseline: b, refinements: Vec::new() };
            if !constraints.is_valid(renderer, &speech) {
                continue;
            }
            let node = st.tree.add_child(Self::ROOT, NodeKind::Baseline(b));
            st.expand(node, generator, renderer, constraints, schema, layout, max_nodes);
        }
        st
    }

    /// Recursive expansion below `node` (paper Algorithm 2 `ST.Expand`).
    #[allow(clippy::too_many_arguments)]
    fn expand(
        &mut self,
        node: NodeId,
        generator: &CandidateGenerator<'_>,
        renderer: &Renderer<'_>,
        constraints: &SpeechConstraints,
        schema: &Schema,
        layout: &ResultLayout,
        max_nodes: usize,
    ) {
        let prefix = self.speech_at(node);
        if constraints.at_fragment_limit(&prefix) {
            return;
        }
        for r in generator.refinements(&prefix) {
            if self.tree.node_count() >= max_nodes {
                self.truncated = true;
                return;
            }
            let candidate = prefix.with_refinement(r.clone());
            if !constraints.is_valid(renderer, &candidate) {
                continue;
            }
            let (delta, implied) = self.resolve_reference(node, &r, schema);
            let scope = RefinementScope::compile(&r, layout, schema);
            let child = self.tree.add_child(
                node,
                NodeKind::Refinement { ast: r, scope, delta, implied_value: implied },
            );
            self.expand(child, generator, renderer, constraints, schema, layout, max_nodes);
        }
    }

    /// Resolve the reference value for a new refinement under `parent`:
    /// the implied value of the nearest ancestor refinement whose scope
    /// subsumes the new one, or the path's baseline value.
    fn resolve_reference(&self, parent: NodeId, r: &Refinement, schema: &Schema) -> (f64, f64) {
        let is_anc =
            |dim: voxolap_data::DimId, a: voxolap_data::MemberId, d: voxolap_data::MemberId| {
                schema.dimension(dim).is_ancestor_or_self(a, d)
            };
        let mut reference = None;
        let mut cur = Some(parent);
        let mut baseline = 0.0;
        while let Some(n) = cur {
            match self.tree.data(n) {
                NodeKind::Refinement { ast, implied_value, .. } => {
                    if reference.is_none() && ast.subsumes(r, is_anc) {
                        reference = Some(*implied_value);
                    }
                }
                NodeKind::Baseline(b) => baseline = b.value,
                NodeKind::Root => {}
            }
            cur = self.tree.parent(n);
        }
        let reference = reference.unwrap_or(baseline);
        let implied = reference * r.change.factor();
        (implied - reference, implied)
    }

    /// Reconstruct the speech a node represents by walking to the root.
    pub fn speech_at(&self, node: NodeId) -> Speech {
        let mut baseline = Baseline::point(0.0);
        let mut refinements = Vec::new();
        let mut cur = Some(node);
        while let Some(n) = cur {
            match self.tree.data(n) {
                NodeKind::Refinement { ast, .. } => refinements.push(ast.clone()),
                NodeKind::Baseline(b) => baseline = *b,
                NodeKind::Root => {}
            }
            cur = self.tree.parent(n);
        }
        refinements.reverse();
        Speech { baseline, refinements }
    }

    /// Belief mean `M(a, t)` for the speech at `node` and the aggregate with
    /// decomposed coordinates `coords` — `O(k)` ancestor walk (Lemma A.2).
    pub fn mean_for(&self, node: NodeId, coords: &[u32]) -> f64 {
        let n = self.n_aggs as f64;
        let mut mean = 0.0;
        let mut cur = Some(node);
        while let Some(nid) = cur {
            match self.tree.data(nid) {
                NodeKind::Refinement { scope, delta, .. } => {
                    let m = scope.size() as f64;
                    if scope.contains_coords(coords) {
                        mean += delta;
                    } else if m < n {
                        mean -= m * delta / (n - m);
                    }
                }
                NodeKind::Baseline(b) => mean += b.value,
                NodeKind::Root => {}
            }
            cur = self.tree.parent(nid);
        }
        mean
    }

    /// The sentence a node contributes when spoken (baseline or refinement
    /// sentence; the root has none).
    pub fn sentence(&self, node: NodeId, renderer: &Renderer<'_>) -> Option<String> {
        match self.tree.data(node) {
            NodeKind::Root => None,
            NodeKind::Baseline(b) => {
                let speech = Speech { baseline: *b, refinements: Vec::new() };
                Some(renderer.baseline_sentence(&speech))
            }
            NodeKind::Refinement { ast, .. } => Some(renderer.refinement_sentence(ast)),
        }
    }

    /// `true` if expansion hit the node cap.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Number of result aggregates (`n`).
    pub fn n_aggregates(&self) -> usize {
        self.n_aggs
    }

    /// Access the underlying UCT tree.
    pub fn tree(&self) -> &Tree<NodeKind> {
        &self.tree
    }

    /// Mutable access to the underlying UCT tree (for sampling updates).
    pub fn tree_mut(&mut self) -> &mut Tree<NodeKind> {
        &mut self.tree
    }

    /// All node ids, in creation order (root first).
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.tree.node_count() as u32).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::salary::SalaryConfig;
    use voxolap_data::DimId;
    use voxolap_engine::query::{AggFct, Query};
    use voxolap_speech::candidates::CandidateConfig;
    use voxolap_speech::scope::CompiledSpeech;

    fn setup() -> (voxolap_data::Table, Query) {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        (table, q)
    }

    fn build_tree(
        table: &voxolap_data::Table,
        q: &Query,
        constraints: SpeechConstraints,
        max_nodes: usize,
    ) -> SpeechTree {
        let schema = table.schema();
        let gen = CandidateGenerator::new(schema, q, CandidateConfig::default());
        let renderer = Renderer::new(schema, q);
        SpeechTree::build(&gen, &renderer, &constraints, 88.0, max_nodes)
    }

    #[test]
    fn tree_layers_follow_grammar() {
        let (table, q) = setup();
        let st = build_tree(
            &table,
            &q,
            SpeechConstraints { max_chars: 300, max_refinements: 1 },
            1_000_000,
        );
        assert!(!st.truncated());
        // Root children are baselines, grandchildren refinements.
        for &b in st.tree().children(SpeechTree::ROOT) {
            assert!(matches!(st.tree().data(b), NodeKind::Baseline(_)));
            for &r in st.tree().children(b) {
                assert!(matches!(st.tree().data(r), NodeKind::Refinement { .. }));
                assert!(st.tree().is_leaf(r), "fragment budget 1 stops here");
            }
        }
    }

    #[test]
    fn speech_at_reconstructs_path() {
        let (table, q) = setup();
        let st = build_tree(&table, &q, SpeechConstraints::paper_default(), 100_000);
        let b = st.tree().children(SpeechTree::ROOT)[0];
        let r = st.tree().children(b)[0];
        let speech = st.speech_at(r);
        assert_eq!(speech.refinements.len(), 1);
        match st.tree().data(b) {
            NodeKind::Baseline(base) => assert_eq!(speech.baseline.value, base.value),
            _ => unreachable!(),
        }
    }

    #[test]
    fn mean_for_matches_compiled_speech() {
        let (table, q) = setup();
        let schema = table.schema();
        let st = build_tree(&table, &q, SpeechConstraints::paper_default(), 50_000);
        let layout = q.layout();
        // Compare tree-incremental means with the reference CompiledSpeech
        // implementation for a sample of nodes.
        let mut checked = 0;
        for node in st.all_nodes().step_by(97) {
            let speech = st.speech_at(node);
            if node == SpeechTree::ROOT {
                continue;
            }
            let cs = CompiledSpeech::compile(&speech, layout, schema);
            for agg in 0..layout.n_aggregates() as u32 {
                let coords = layout.coords_of_agg(agg);
                let tree_mean = st.mean_for(node, &coords);
                let ref_mean = cs.mean_for(agg, layout);
                assert!(
                    (tree_mean - ref_mean).abs() < 1e-9,
                    "node {node:?} agg {agg}: {tree_mean} vs {ref_mean}"
                );
            }
            checked += 1;
        }
        assert!(checked > 3, "checked {checked} nodes");
    }

    #[test]
    fn node_cap_truncates() {
        let (table, q) = setup();
        let st = build_tree(&table, &q, SpeechConstraints::paper_default(), 50);
        assert!(st.truncated());
        assert!(st.tree().node_count() <= 51);
    }

    #[test]
    fn sentences_render_per_node_kind() {
        let (table, q) = setup();
        let schema = table.schema();
        let renderer = Renderer::new(schema, &q);
        let st = build_tree(&table, &q, SpeechConstraints::paper_default(), 10_000);
        assert_eq!(st.sentence(SpeechTree::ROOT, &renderer), None);
        let b = st.tree().children(SpeechTree::ROOT)[0];
        assert!(st.sentence(b, &renderer).unwrap().contains("is the average"));
        let r = st.tree().children(b)[0];
        assert!(st.sentence(r, &renderer).unwrap().starts_with("Values "));
    }

    #[test]
    fn depth_respects_fragment_budget() {
        let (table, q) = setup();
        for budget in 0..=2 {
            let st = build_tree(
                &table,
                &q,
                SpeechConstraints { max_chars: 10_000, max_refinements: budget },
                2_000_000,
            );
            // Depth = 1 (baseline layer) + refinement budget.
            assert_eq!(st.tree().depth(SpeechTree::ROOT), 1 + budget);
        }
    }
}
