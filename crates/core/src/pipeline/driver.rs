//! The shared Plan/Sample → Commit driver.
//!
//! Holistic, ParallelHolistic (both modes), and Unmerged used to carry
//! near-identical control loops; this module owns the one loop they all
//! share. A [`SampleStep`] abstracts the ingestion strategy — the
//! sequential [`PlannerCore`] or a sharded [`ShardWorker`] — and
//! [`plan_next_sentence`] runs Algorithm 1's per-sentence round against
//! it: sample while the previous sentence plays (or until the progress
//! floor), then commit to the best-mean child and render it. The
//! multi-threaded engine gets its own [`MultiSource`] whose per-sentence
//! round fans the same sampling out over scoped worker threads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use voxolap_data::schema::MeasureUnit;
use voxolap_data::MorselPool;
use voxolap_engine::query::{Query, ResultLayout};
use voxolap_engine::semantic::{LoggedRow, SemanticCache};
use voxolap_engine::sharded::ShardedSampleCache;
use voxolap_faults::RunState;
use voxolap_mcts::NodeId;
use voxolap_speech::render::Renderer;

use crate::holistic::{admit_core, relevant_aggs, HolisticConfig};
use crate::parallel::{admit_parallel, ShardWorker, POLL_INTERVAL};
use crate::pipeline::cancel::CancelToken;
use crate::pipeline::stream::{FinishInfo, SentenceSource};
use crate::resilience::{round_status, RoundEnd};
use crate::sampler::{PlannerCore, RowLog};
use crate::tree::SpeechTree;
use crate::uncertainty::{annotate, ConfidenceSource, UncertaintyMode};
use crate::voice::VoiceOutput;

/// One sampling strategy driving the shared per-sentence loop.
pub(crate) trait SampleStep {
    /// One sampling iteration rooted at `from`.
    fn step(&mut self, tree: &mut SpeechTree, from: NodeId);

    /// Cumulative sampling iterations.
    fn samples(&self) -> u64;

    /// Cumulative (fresh) rows read.
    fn rows_read(&self) -> u64;

    /// The cache backing uncertainty annotations.
    fn confidence(&self) -> &dyn ConfidenceSource;

    /// Offer this run's results to the semantic cache (once, at finish).
    fn admit(&mut self);
}

/// [`SampleStep`] over the sequential [`PlannerCore`] — the Holistic
/// engine's ingestion strategy.
pub(crate) struct CoreSampler<'a> {
    core: PlannerCore<'a>,
    rows_per_iteration: usize,
    semantic: Option<Arc<SemanticCache>>,
    seed: u64,
}

impl<'a> CoreSampler<'a> {
    pub(crate) fn new(
        core: PlannerCore<'a>,
        rows_per_iteration: usize,
        semantic: Option<Arc<SemanticCache>>,
        seed: u64,
    ) -> Self {
        CoreSampler { core, rows_per_iteration, semantic, seed }
    }
}

impl SampleStep for CoreSampler<'_> {
    fn step(&mut self, tree: &mut SpeechTree, from: NodeId) {
        self.core.sample_once(tree, from, self.rows_per_iteration);
    }

    fn samples(&self) -> u64 {
        self.core.samples()
    }

    fn rows_read(&self) -> u64 {
        self.core.rows_read()
    }

    fn confidence(&self) -> &dyn ConfidenceSource {
        self.core.cache()
    }

    fn admit(&mut self) {
        admit_core(&self.semantic, self.seed, &self.core, self.core.query());
    }
}

/// [`SampleStep`] over a single [`ShardWorker`] — ParallelHolistic's
/// deterministic cooperative mode (`threads == 1`), bit-identical to
/// [`CoreSampler`] under a fixed seed.
pub(crate) struct ShardSampler<'a> {
    worker: ShardWorker<'a>,
    cache: Arc<ShardedSampleCache>,
    /// The worker's morsel pool — kept for snapshot admission, whose
    /// progress vector is the warm-start resume point.
    pool: Arc<MorselPool>,
    samples: u64,
    seeded_total: u64,
    donor_rows: Vec<LoggedRow>,
    semantic: Option<Arc<SemanticCache>>,
    seed: u64,
    /// Pinned table version + row count, stamped into admissions.
    version: u64,
    table_rows: u64,
}

impl<'a> ShardSampler<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        worker: ShardWorker<'a>,
        cache: Arc<ShardedSampleCache>,
        pool: Arc<MorselPool>,
        seeded_total: u64,
        donor_rows: Vec<LoggedRow>,
        semantic: Option<Arc<SemanticCache>>,
        seed: u64,
        version: u64,
        table_rows: u64,
    ) -> Self {
        ShardSampler {
            worker,
            cache,
            pool,
            samples: 0,
            seeded_total,
            donor_rows,
            semantic,
            seed,
            version,
            table_rows,
        }
    }
}

impl SampleStep for ShardSampler<'_> {
    fn step(&mut self, tree: &mut SpeechTree, from: NodeId) {
        self.worker.sample_once(tree, from, false);
        self.samples += 1;
    }

    fn samples(&self) -> u64 {
        self.samples
    }

    fn rows_read(&self) -> u64 {
        self.cache.nr_read().saturating_sub(self.seeded_total)
    }

    fn confidence(&self) -> &dyn ConfidenceSource {
        &*self.cache
    }

    fn admit(&mut self) {
        let results = vec![self.worker.take_result()];
        admit_parallel(
            &self.semantic,
            self.seed,
            &self.cache,
            &self.pool,
            self.worker.query(),
            std::mem::take(&mut self.donor_rows),
            results,
            self.version,
            self.table_rows,
        );
    }
}

/// One per-sentence round of Algorithm 1: sample while the previously
/// started sentence plays (plus the progress floor for instant voices),
/// then commit. Checking the round status *first* in each iteration
/// keeps the voice polling sequence — and therefore the sampling
/// iteration count — bit-identical to the pre-pipeline engines when the
/// token never fires. An `Anytime` status breaks out to commit the best
/// answer the tree holds right now instead of yielding nothing.
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_next_sentence<S: SampleStep>(
    sampler: &mut S,
    tree: &mut SpeechTree,
    current: &mut NodeId,
    renderer: &Renderer<'_>,
    cfg: &HolisticConfig,
    voice: &mut dyn VoiceOutput,
    cancel: &CancelToken,
    layout: &ResultLayout,
    unit: MeasureUnit,
    run: Option<&RunState>,
) -> Option<String> {
    let at_root = *current == SpeechTree::ROOT;
    let at_leaf = tree.tree().is_leaf(*current);
    let mut iterations = 0u64;
    loop {
        match round_status(cancel, run, at_root, at_leaf) {
            RoundEnd::Stop => return None,
            RoundEnd::Anytime => break,
            RoundEnd::Continue => {}
        }
        if !(voice.is_playing() || iterations < cfg.min_samples_per_sentence) {
            // Mirror the pre-fault double-check: a token firing between
            // the last poll and the commit still aborts cleanly.
            match round_status(cancel, run, at_root, at_leaf) {
                RoundEnd::Stop => return None,
                _ => break,
            }
        }
        sampler.step(tree, *current);
        iterations += 1;
    }
    commit_and_render(tree, current, renderer, cfg, sampler.confidence(), layout, unit)
}

/// Advance `current` to its best-mean child and render that sentence
/// (with the configured uncertainty annotation); `None` when the walk is
/// finished. Committed nodes are never the root, so `tree.sentence` is
/// always `Some`; a `None` ends the speech instead of panicking.
#[allow(clippy::too_many_arguments)]
pub(crate) fn commit_and_render(
    tree: &SpeechTree,
    current: &mut NodeId,
    renderer: &Renderer<'_>,
    cfg: &HolisticConfig,
    confidence: &dyn ConfidenceSource,
    layout: &ResultLayout,
    unit: MeasureUnit,
) -> Option<String> {
    if tree.tree().is_leaf(*current) {
        return None;
    }
    let next = tree.tree().best_child(*current)?;
    let mut sentence = tree.sentence(next, renderer)?;
    *current = next;
    if !matches!(cfg.uncertainty, UncertaintyMode::Off) {
        let aggs = relevant_aggs(tree, next, layout);
        if let Some(extra) = annotate(cfg.uncertainty, confidence, layout, &aggs, unit) {
            sentence = format!("{sentence} {extra}");
        }
    }
    Some(sentence)
}

/// Cooperative sentence source: the shared loop over one [`SampleStep`],
/// on the calling thread. Used by Holistic and by ParallelHolistic at
/// `threads == 1`.
pub(crate) struct CoopSource<'a, S> {
    sampler: S,
    tree: SpeechTree,
    renderer: Renderer<'a>,
    cfg: HolisticConfig,
    current: NodeId,
    layout: &'a ResultLayout,
    unit: MeasureUnit,
    /// Per-run degrade state (`None` = no resilience attached).
    run: Option<Arc<RunState>>,
}

impl<'a, S> CoopSource<'a, S> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        sampler: S,
        tree: SpeechTree,
        renderer: Renderer<'a>,
        cfg: HolisticConfig,
        layout: &'a ResultLayout,
        unit: MeasureUnit,
        run: Option<Arc<RunState>>,
    ) -> Self {
        CoopSource { sampler, tree, renderer, cfg, current: SpeechTree::ROOT, layout, unit, run }
    }
}

impl<'a, S: SampleStep> SentenceSource<'a> for CoopSource<'a, S> {
    fn next(&mut self, voice: &mut dyn VoiceOutput, cancel: &CancelToken) -> Option<String> {
        plan_next_sentence(
            &mut self.sampler,
            &mut self.tree,
            &mut self.current,
            &self.renderer,
            &self.cfg,
            voice,
            cancel,
            self.layout,
            self.unit,
            self.run.as_deref(),
        )
    }

    fn samples(&self) -> u64 {
        self.sampler.samples()
    }

    fn rows_read(&self) -> u64 {
        self.sampler.rows_read()
    }

    fn finish(&mut self) -> FinishInfo {
        self.sampler.admit();
        FinishInfo {
            speech: Some(self.tree.speech_at(self.current)),
            tree_nodes: self.tree.tree().node_count(),
            truncated: self.tree.truncated(),
        }
    }
}

/// Multi-threaded sentence source: each per-sentence round fans sampling
/// out over scoped worker threads (virtual-loss UCT descent against the
/// lock-free tree) while the calling thread paces against the voice
/// output, then commits. Timing-dependent and not bit-reproducible —
/// exactly like the engine it replaces.
pub(crate) struct MultiSource<'a> {
    workers: Vec<ShardWorker<'a>>,
    cache: Arc<ShardedSampleCache>,
    /// The workers' shared morsel pool — kept for snapshot admission.
    pool: Arc<MorselPool>,
    tree: SpeechTree,
    renderer: Renderer<'a>,
    cfg: HolisticConfig,
    current: NodeId,
    layout: &'a ResultLayout,
    unit: MeasureUnit,
    samples: AtomicU64,
    seeded_total: u64,
    donor_rows: Vec<LoggedRow>,
    semantic: Option<Arc<SemanticCache>>,
    seed: u64,
    query: &'a Query,
    /// Per-run degrade state (`None` = no resilience attached).
    run: Option<Arc<RunState>>,
    /// Pinned table version + row count, stamped into admissions.
    version: u64,
    table_rows: u64,
}

impl<'a> MultiSource<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        workers: Vec<ShardWorker<'a>>,
        cache: Arc<ShardedSampleCache>,
        pool: Arc<MorselPool>,
        tree: SpeechTree,
        renderer: Renderer<'a>,
        cfg: HolisticConfig,
        layout: &'a ResultLayout,
        unit: MeasureUnit,
        seeded_total: u64,
        donor_rows: Vec<LoggedRow>,
        semantic: Option<Arc<SemanticCache>>,
        seed: u64,
        query: &'a Query,
        run: Option<Arc<RunState>>,
        version: u64,
        table_rows: u64,
    ) -> Self {
        MultiSource {
            workers,
            cache,
            pool,
            tree,
            renderer,
            cfg,
            current: SpeechTree::ROOT,
            layout,
            unit,
            samples: AtomicU64::new(0),
            seeded_total,
            donor_rows,
            semantic,
            seed,
            query,
            run,
            version,
            table_rows,
        }
    }
}

impl<'a> SentenceSource<'a> for MultiSource<'a> {
    fn next(&mut self, voice: &mut dyn VoiceOutput, cancel: &CancelToken) -> Option<String> {
        let floor = self.samples.load(Ordering::Relaxed) + self.cfg.min_samples_per_sentence;
        let stop = AtomicBool::new(false);
        let tree = &self.tree;
        let current = self.current;
        let samples = &self.samples;
        let at_root = current == SpeechTree::ROOT;
        let at_leaf = tree.tree().is_leaf(current);
        let run = self.run.as_deref();
        std::thread::scope(|scope| {
            for worker in self.workers.iter_mut() {
                let stop = &stop;
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed)
                        && !cancel.fired()
                        && !run.is_some_and(|r| r.budget_exhausted())
                    {
                        worker.sample_once(tree, current, true);
                        samples.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            // The calling thread paces: sleep while the previously
            // started sentence plays, then until the progress floor. An
            // exhausted fault budget ends the round early so the anytime
            // path can commit whatever the tree holds.
            let exhausted = || run.is_some_and(|r| r.budget_exhausted());
            while !cancel.fired() && !exhausted() && voice.is_playing() {
                std::thread::sleep(POLL_INTERVAL);
            }
            while !cancel.fired() && !exhausted() && samples.load(Ordering::Relaxed) < floor {
                std::thread::sleep(POLL_INTERVAL);
            }
            stop.store(true, Ordering::Relaxed);
        });
        match round_status(cancel, run, at_root, at_leaf) {
            RoundEnd::Stop => return None,
            RoundEnd::Anytime | RoundEnd::Continue => {}
        }
        commit_and_render(
            &self.tree,
            &mut self.current,
            &self.renderer,
            &self.cfg,
            &*self.cache,
            self.layout,
            self.unit,
        )
    }

    fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    fn rows_read(&self) -> u64 {
        self.cache.nr_read().saturating_sub(self.seeded_total)
    }

    fn finish(&mut self) -> FinishInfo {
        let results: Vec<Option<RowLog>> =
            self.workers.iter_mut().map(|w| w.take_result()).collect();
        admit_parallel(
            &self.semantic,
            self.seed,
            &self.cache,
            &self.pool,
            self.query,
            std::mem::take(&mut self.donor_rows),
            results,
            self.version,
            self.table_rows,
        );
        FinishInfo {
            speech: Some(self.tree.speech_at(self.current)),
            tree_nodes: self.tree.tree().node_count(),
            truncated: self.tree.truncated(),
        }
    }
}
