//! The streaming speech pipeline (DESIGN.md §11).
//!
//! Every vocalizer is decomposed into four stages sharing one driver:
//!
//! ```text
//! Ingest ──► Plan/Sample ──► Commit ──► Emit
//! ```
//!
//! * **Ingest** happens at stream construction: start the preamble,
//!   consult the semantic cache, warm up the sample cache, calibrate σ,
//!   build the speech tree. (Optimal and PriorGreedy plug in here as an
//!   exact-plan stage — their whole speech is planned up front.)
//! * **Plan/Sample + Commit** run once per
//!   [`SpeechStream::next_sentence`] call through the shared driver,
//!   parameterized by a `SelectionPolicy` and an ingestion strategy
//!   (sequential [`PlannerCore`](crate::sampler::PlannerCore), sharded
//!   cooperative, or sharded multi-threaded).
//! * **Emit** is the pull: the caller decides when to ask for the next
//!   sentence, and a [`CancelToken`] threaded through ingestion and UCT
//!   sampling aborts planning within one iteration when the consumer is
//!   gone.
//!
//! The blocking `Vocalizer::vocalize()` survives as a thin adapter —
//! [`SpeechStream::drain`] — with transcript bit-parity to the
//! pre-pipeline engines.

pub mod cancel;
pub(crate) mod driver;
pub mod stream;

pub use cancel::{CancelKind, CancelToken};
pub use stream::{PlannedSentence, SentenceStats, SpeechStream};
