//! Cooperative cancellation for in-flight planning.
//!
//! A [`CancelToken`] is a cheap, clonable handle shared between the party
//! driving a [`SpeechStream`](crate::pipeline::SpeechStream) and the
//! planner sampling inside it. The planner polls [`CancelToken::fired`]
//! once per sampling iteration, so a dropped client stops sampling within
//! one iteration — the paper's pipelining loop becomes interruptible
//! without any thread being killed mid-update.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// Why a token fired. The distinction matters for graceful degradation:
/// a client cancel is a hard stop (the consumer is gone), while a passed
/// deadline can still be answered — shortened — through the anytime path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelKind {
    /// [`CancelToken::cancel`] was called: the consumer abandoned the run.
    Client,
    /// The token's deadline passed while planning was still under way.
    Deadline,
}

/// Shared cancellation flag with an optional hard deadline.
///
/// Cloning shares the flag: cancelling any clone fires all of them.
/// Without a deadline, [`fired`](CancelToken::fired) is a single relaxed
/// atomic load — cheap enough to sit inside the sampling hot loop.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A fresh token that fires only when [`cancel`](CancelToken::cancel)
    /// is called.
    pub fn new() -> Self {
        CancelToken { inner: Arc::new(Inner { cancelled: AtomicBool::new(false), deadline: None }) }
    }

    /// A token that nobody holds a cancelling handle to — the blocking
    /// `vocalize()` path uses this, keeping its behavior (and its voice
    /// polling sequence) identical to an uncancellable run.
    pub fn never() -> Self {
        Self::new()
    }

    /// A token that additionally fires once `deadline` has passed.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner { cancelled: AtomicBool::new(false), deadline: Some(deadline) }),
        }
    }

    /// Fire the token: every planner polling a clone of it stops within
    /// one sampling iteration.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether planning should stop (explicit cancel or deadline passed).
    #[inline]
    pub fn fired(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }

    /// Like [`fired`](CancelToken::fired), but reporting *why* — `None`
    /// while planning may continue. An explicit cancel wins over a passed
    /// deadline (the consumer is gone either way).
    #[inline]
    pub fn fired_kind(&self) -> Option<CancelKind> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Some(CancelKind::Client);
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => Some(CancelKind::Deadline),
            _ => None,
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fires_on_cancel_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.fired());
        token.cancel();
        assert!(clone.fired());
    }

    #[test]
    fn deadline_fires_without_explicit_cancel() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(token.fired());
        let future = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!future.fired());
    }

    #[test]
    fn never_token_does_not_fire() {
        assert!(!CancelToken::never().fired());
    }

    #[test]
    fn fired_kind_distinguishes_client_from_deadline() {
        let client = CancelToken::new();
        assert_eq!(client.fired_kind(), None);
        client.cancel();
        assert_eq!(client.fired_kind(), Some(CancelKind::Client));
        let late = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(late.fired_kind(), Some(CancelKind::Deadline));
        // An explicit cancel outranks a passed deadline.
        late.cancel();
        assert_eq!(late.fired_kind(), Some(CancelKind::Client));
    }
}
