//! The pull-based speech stream: sentences surface as they are planned.
//!
//! [`SpeechStream`] is the primary API of every vocalizer. Construction
//! runs the Ingest stage (preamble start, cache warm-up, tree build);
//! each [`next_sentence`](SpeechStream::next_sentence) call runs one
//! Plan/Sample → Commit round and returns the committed sentence together
//! with that round's planner deltas; [`finish`](SpeechStream::finish)
//! runs the terminal stage (semantic-cache admission) and folds the
//! per-sentence history into the classic [`VocalizationOutcome`].
//! `Vocalizer::vocalize()` is just [`drain`](SpeechStream::drain).

use std::sync::Arc;
use std::time::{Duration, Instant};

use voxolap_faults::{DegradeReason, FaultSite, Resilience, RunState};
use voxolap_speech::ast::Speech;

use crate::outcome::{PlanStats, VocalizationOutcome};
use crate::pipeline::cancel::{CancelKind, CancelToken};
use crate::voice::VoiceOutput;

/// Planner-work deltas attributable to one sentence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SentenceStats {
    /// Sampling iterations spent while this sentence was planned.
    pub samples: u64,
    /// Rows streamed into the sample cache during those iterations.
    pub rows_read: u64,
    /// Wall-clock time from requesting the sentence to committing it.
    pub elapsed: Duration,
}

/// One committed sentence, as yielded by
/// [`SpeechStream::next_sentence`].
#[derive(Debug, Clone)]
pub struct PlannedSentence {
    /// Zero-based position in the speech body (the preamble is not a
    /// planned sentence; it is available up front via
    /// [`SpeechStream::preamble`]).
    pub index: usize,
    /// The sentence text, including any uncertainty annotation.
    pub text: String,
    /// Planner work attributable to this sentence.
    pub stats: SentenceStats,
}

/// Terminal information a sentence source reports exactly once, after the
/// last sentence (admissions have already been performed by then).
pub(crate) struct FinishInfo {
    pub speech: Option<Speech>,
    pub tree_nodes: usize,
    pub truncated: bool,
}

/// The engine-specific part of a stream: plans one sentence per call
/// (pacing itself against `voice` and aborting on `cancel`), and settles
/// accounts — semantic-cache admission, final speech — in `finish`.
pub(crate) trait SentenceSource<'a> {
    /// Plan and commit the next sentence; `None` when the speech is
    /// complete or the token fired. Must NOT start voice output — the
    /// stream does that, so the voice-call sequence is identical for
    /// every source.
    fn next(&mut self, voice: &mut dyn VoiceOutput, cancel: &CancelToken) -> Option<String>;

    /// Cumulative sampling iterations so far.
    fn samples(&self) -> u64;

    /// Cumulative rows read so far.
    fn rows_read(&self) -> u64;

    /// Settle accounts (called exactly once).
    fn finish(&mut self) -> FinishInfo;
}

/// A source whose sentences were fully planned at construction time:
/// Optimal, PriorGreedy, Unmerged, the semantic-cache exact-hit path, and
/// the no-data report. Emission still goes sentence-by-sentence through
/// the stream, but no sampling happens between sentences.
pub(crate) struct Buffered<'a> {
    queued: std::collections::VecDeque<String>,
    speech: Option<Speech>,
    samples: u64,
    rows_read: u64,
    tree_nodes: usize,
    truncated: bool,
    /// Deferred semantic-cache admission (e.g. the no-data path still
    /// admits its exhausted scan).
    on_finish: Option<Box<dyn FnOnce() + 'a>>,
}

impl<'a> Buffered<'a> {
    pub(crate) fn planned(
        sentences: Vec<String>,
        speech: Option<Speech>,
        samples: u64,
        rows_read: u64,
        tree_nodes: usize,
        truncated: bool,
    ) -> Self {
        Buffered {
            queued: sentences.into(),
            speech,
            samples,
            rows_read,
            tree_nodes,
            truncated,
            on_finish: None,
        }
    }

    /// The "No data matches the query scope." report.
    pub(crate) fn no_data(rows_read: u64, on_finish: Option<Box<dyn FnOnce() + 'a>>) -> Self {
        Buffered {
            queued: vec!["No data matches the query scope.".to_string()].into(),
            speech: None,
            samples: 0,
            rows_read,
            tree_nodes: 0,
            truncated: false,
            on_finish,
        }
    }
}

impl<'a> SentenceSource<'a> for Buffered<'a> {
    fn next(&mut self, _voice: &mut dyn VoiceOutput, cancel: &CancelToken) -> Option<String> {
        // A gone client stops delivery; a passed deadline only bounds
        // *planning* — sentences already planned are the anytime answer
        // and still play.
        if cancel.fired_kind() == Some(CancelKind::Client) {
            return None;
        }
        self.queued.pop_front()
    }

    fn samples(&self) -> u64 {
        self.samples
    }

    fn rows_read(&self) -> u64 {
        self.rows_read
    }

    fn finish(&mut self) -> FinishInfo {
        if let Some(admit) = self.on_finish.take() {
            admit();
        }
        FinishInfo {
            speech: self.speech.take(),
            tree_nodes: self.tree_nodes,
            truncated: self.truncated,
        }
    }
}

/// A speech being planned and spoken, one sentence at a time.
///
/// By the time a stream exists, the preamble has already been started on
/// the voice output (it needs no data) and the Ingest stage — cache
/// warm-up, σ calibration, speech-tree construction — has run. Pull
/// sentences with [`next_sentence`](SpeechStream::next_sentence); each
/// call overlaps sampling with the previously started sentence exactly
/// like the blocking engines did, then starts the new sentence on the
/// voice. Call [`finish`](SpeechStream::finish) (or
/// [`drain`](SpeechStream::drain)) to settle semantic-cache admissions
/// and obtain the aggregate [`VocalizationOutcome`].
pub struct SpeechStream<'a> {
    voice: &'a mut dyn VoiceOutput,
    cancel: CancelToken,
    t0: Instant,
    preamble: String,
    latency: Duration,
    sentences: Vec<String>,
    next_index: usize,
    done: bool,
    source: Box<dyn SentenceSource<'a> + 'a>,
    /// Fault injection at the Emit site plus per-run degrade state
    /// (`None` keeps emission byte-identical to the pre-fault stream).
    resilience: Option<(Arc<Resilience>, Arc<RunState>)>,
    /// `true` when the answer comes from a version-stale cached exact
    /// result (§12 stale-serve); surfaces as `PlanStats::stale`.
    stale: bool,
}

impl<'a> SpeechStream<'a> {
    pub(crate) fn new(
        voice: &'a mut dyn VoiceOutput,
        cancel: CancelToken,
        t0: Instant,
        preamble: String,
        latency: Duration,
        source: Box<dyn SentenceSource<'a> + 'a>,
    ) -> Self {
        SpeechStream {
            voice,
            cancel,
            t0,
            preamble,
            latency,
            sentences: Vec::new(),
            next_index: 0,
            done: false,
            source,
            resilience: None,
            stale: false,
        }
    }

    /// Tag this stream's answer as served from a version-stale cached
    /// exact result. Never set on the fresh-planning paths.
    pub(crate) fn mark_stale(mut self) -> Self {
        self.stale = true;
        self
    }

    /// Attach the engine's resilience bundle and this run's degrade
    /// state; emission then consults the Emit fault site and `finish`
    /// tags the outcome. `None` leaves the stream untouched.
    pub(crate) fn attach_resilience(
        mut self,
        resilience: Option<(Arc<Resilience>, Arc<RunState>)>,
    ) -> Self {
        self.resilience = resilience;
        self
    }

    /// Whether this run's answer is (so far) tagged degraded.
    pub fn degraded(&self) -> bool {
        self.resilience.as_ref().is_some_and(|(_, run)| run.degraded())
    }

    /// Whether this answer is served from a version-stale cached exact
    /// result (see [`crate::outcome::PlanStats::stale`]).
    pub fn stale(&self) -> bool {
        self.stale
    }

    /// The preamble, already started on the voice output.
    pub fn preamble(&self) -> &str {
        &self.preamble
    }

    /// Time from stream construction to the preamble starting.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Whether this stream's cancellation token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.fired()
    }

    /// Plan, commit, and start speaking the next sentence. `None` when
    /// the speech is complete or the cancellation token fired; planner
    /// deltas cover exactly the work done for this sentence.
    pub fn next_sentence(&mut self) -> Option<PlannedSentence> {
        if self.done {
            return None;
        }
        let samples_before = self.source.samples();
        let rows_before = self.source.rows_read();
        let t = Instant::now();
        let Some(text) = self.source.next(&mut *self.voice, &self.cancel) else {
            self.done = true;
            return None;
        };
        // Emit fault site: a latency fault stalls the hand-off to the
        // voice; an error fault cuts the speech short — except for the
        // very first body sentence (the baseline), which must always be
        // delivered for the answer to remain grammar-valid.
        if let Some((res, run)) = &self.resilience {
            if let Some(fault) = res.roll(FaultSite::Emit) {
                run.note_fault();
                fault.stall();
                if fault.error && self.next_index > 0 {
                    run.mark_degraded(DegradeReason::EmitFailure);
                    self.done = true;
                    return None;
                }
            }
        }
        self.voice.start(&text);
        let stats = SentenceStats {
            samples: self.source.samples().saturating_sub(samples_before),
            rows_read: self.source.rows_read().saturating_sub(rows_before),
            elapsed: t.elapsed(),
        };
        self.sentences.push(text.clone());
        let index = self.next_index;
        self.next_index += 1;
        Some(PlannedSentence { index, text, stats })
    }

    /// Settle semantic-cache admissions and fold the spoken sentences
    /// into a [`VocalizationOutcome`]. Valid at any point — after a
    /// cancellation, the outcome covers what was spoken so far.
    pub fn finish(mut self) -> VocalizationOutcome {
        let info = self.source.finish();
        let degraded = match &self.resilience {
            Some((res, run)) => {
                let degraded = run.degraded();
                let stats = res.stats();
                if degraded {
                    stats.degraded_answers.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                } else {
                    stats.clean_answers.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                degraded
            }
            None => false,
        };
        VocalizationOutcome {
            speech: info.speech,
            preamble: self.preamble,
            sentences: self.sentences,
            latency: self.latency,
            stats: PlanStats {
                rows_read: self.source.rows_read(),
                samples: self.source.samples(),
                tree_nodes: info.tree_nodes,
                truncated: info.truncated,
                planning_time: self.t0.elapsed(),
                degraded,
                stale: self.stale,
            },
        }
    }

    /// Pull every remaining sentence, then [`finish`](SpeechStream::finish)
    /// — the blocking `Vocalizer::vocalize()` adapter.
    pub fn drain(mut self) -> VocalizationOutcome {
        while self.next_sentence().is_some() {}
        self.finish()
    }
}
