//! Voice output abstraction (`VO.Start` / `VO.IsPlaying`, paper Table 3).
//!
//! Algorithm 1 only observes voice output through two operations: an
//! asynchronous `start` and an `is_playing` poll. That makes the engine
//! testable against a **virtual clock** — [`VirtualVoice`] models speaking
//! time as a per-character iteration budget, so a unit test or benchmark
//! deterministically reproduces the pipelining behaviour ("while the
//! current sentence is spoken, we determine the best follow-up in the
//! background") without real time or audio. A wall-clock implementation
//! lives in `voxolap-voice`.

/// Asynchronous voice output as seen by the planner.
pub trait VoiceOutput {
    /// Start speaking `sentence`; returns immediately (`VO.Start`).
    fn start(&mut self, sentence: &str);

    /// `true` iff the last sentence is still playing (`VO.IsPlaying`).
    ///
    /// Takes `&mut self` because virtual implementations advance their
    /// clock by one planner iteration per poll — the planner calls this
    /// exactly once per sampling iteration.
    fn is_playing(&mut self) -> bool;

    /// Everything spoken so far, in order.
    fn transcript(&self) -> &[String];
}

/// Virtual-time voice output: speaking a sentence of `n` characters grants
/// the planner `n × iterations_per_char` sampling iterations.
///
/// The default calibration corresponds to ≈ 15 characters/second of speech
/// and ≈ 3 000 planner iterations/second (measured on commodity hardware),
/// i.e. 200 iterations per character — a typical 60-character sentence buys
/// the planner ≈ 4 seconds ≈ 12 000 iterations of background sampling,
/// matching the paper's "many seconds of sampling time" observation.
#[derive(Debug, Clone)]
pub struct VirtualVoice {
    iterations_per_char: f64,
    remaining: f64,
    transcript: Vec<String>,
}

impl VirtualVoice {
    /// Create with an explicit iterations-per-character budget.
    pub fn new(iterations_per_char: f64) -> Self {
        assert!(iterations_per_char >= 0.0 && iterations_per_char.is_finite());
        VirtualVoice { iterations_per_char, remaining: 0.0, transcript: Vec::new() }
    }

    /// Remaining iteration budget for the current sentence.
    pub fn remaining_iterations(&self) -> f64 {
        self.remaining
    }
}

impl Default for VirtualVoice {
    fn default() -> Self {
        VirtualVoice::new(200.0)
    }
}

impl VoiceOutput for VirtualVoice {
    fn start(&mut self, sentence: &str) {
        self.remaining = sentence.chars().count() as f64 * self.iterations_per_char;
        self.transcript.push(sentence.to_string());
    }

    fn is_playing(&mut self) -> bool {
        if self.remaining >= 1.0 {
            self.remaining -= 1.0;
            true
        } else {
            self.remaining = 0.0;
            false
        }
    }

    fn transcript(&self) -> &[String] {
        &self.transcript
    }
}

/// Voice output that finishes instantly — degenerates the holistic planner
/// to its minimum per-sentence sample count. Useful to isolate planner
/// behaviour from pipelining in tests.
#[derive(Debug, Clone, Default)]
pub struct InstantVoice {
    transcript: Vec<String>,
}

impl VoiceOutput for InstantVoice {
    fn start(&mut self, sentence: &str) {
        self.transcript.push(sentence.to_string());
    }

    fn is_playing(&mut self) -> bool {
        false
    }

    fn transcript(&self) -> &[String] {
        &self.transcript
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_voice_budget_scales_with_length() {
        let mut v = VirtualVoice::new(2.0);
        v.start("abcde"); // 5 chars -> 10 iterations
        let mut polls = 0;
        while v.is_playing() {
            polls += 1;
        }
        assert_eq!(polls, 10);
        assert!(!v.is_playing(), "stays stopped");
    }

    #[test]
    fn virtual_voice_records_transcript() {
        let mut v = VirtualVoice::default();
        v.start("one");
        while v.is_playing() {}
        v.start("two");
        assert_eq!(v.transcript(), &["one".to_string(), "two".to_string()]);
    }

    #[test]
    fn starting_new_sentence_resets_budget() {
        let mut v = VirtualVoice::new(1.0);
        v.start("aaaaaaaaaa");
        assert!(v.is_playing());
        v.start("b"); // interrupt with a short sentence
        assert_eq!(v.remaining_iterations(), 1.0);
        assert!(v.is_playing());
        assert!(!v.is_playing());
    }

    #[test]
    fn instant_voice_never_plays() {
        let mut v = InstantVoice::default();
        v.start("hello");
        assert!(!v.is_playing());
        assert_eq!(v.transcript().len(), 1);
    }

    #[test]
    fn zero_budget_voice_is_instant() {
        let mut v = VirtualVoice::new(0.0);
        v.start("hello");
        assert!(!v.is_playing());
    }
}
