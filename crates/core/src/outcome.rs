//! Result of a vocalization run: the spoken text plus planner statistics.

use std::time::Duration;

use voxolap_speech::ast::Speech;

/// Planner statistics accumulated during one vocalization.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanStats {
    /// Rows streamed from the table into the sample cache.
    pub rows_read: u64,
    /// Speech-evaluation sampling iterations performed.
    pub samples: u64,
    /// Nodes in the speech search tree (0 for approaches without one).
    pub tree_nodes: usize,
    /// `true` if tree expansion hit the node cap and was truncated.
    pub truncated: bool,
    /// Total planning time, including any exact evaluation.
    pub planning_time: Duration,
    /// `true` when the answer was degraded (anytime commit after a
    /// deadline or exhausted fault budget, cache fallback, or a failed
    /// emission) — always `false` without an attached resilience bundle.
    pub degraded: bool,
    /// `true` when the answer was served from a version-stale cached
    /// exact result (the table grew since the entry was computed and the
    /// §12 ladder chose the stale answer over a fresh plan). Always
    /// `false` on tables that never saw an append.
    pub stale: bool,
}

/// Outcome of vocalizing one query.
#[derive(Debug, Clone)]
pub struct VocalizationOutcome {
    /// The structured speech, when the approach produces one (the prior
    /// baseline emits free-form enumerations instead).
    pub speech: Option<Speech>,
    /// The preamble sentence (empty for approaches that skip it).
    pub preamble: String,
    /// Body sentences in spoken order (baseline, refinements, and any
    /// uncertainty annotations).
    pub sentences: Vec<String>,
    /// Time from query submission until voice output started — the latency
    /// measure of paper Figure 3.
    pub latency: Duration,
    /// Planner statistics.
    pub stats: PlanStats,
}

impl VocalizationOutcome {
    /// The speech body (all sentences after the preamble, joined).
    pub fn body_text(&self) -> String {
        self.sentences.join(" ")
    }

    /// Body length in characters — the quantity reported in paper Table 9.
    pub fn body_len(&self) -> usize {
        self.body_text().chars().count()
    }

    /// The complete spoken text.
    pub fn full_text(&self) -> String {
        if self.preamble.is_empty() {
            self.body_text()
        } else if self.sentences.is_empty() {
            self.preamble.clone()
        } else {
            format!("{} {}", self.preamble, self.body_text())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(preamble: &str, sentences: &[&str]) -> VocalizationOutcome {
        VocalizationOutcome {
            speech: None,
            preamble: preamble.to_string(),
            sentences: sentences.iter().map(|s| s.to_string()).collect(),
            latency: Duration::from_millis(1),
            stats: PlanStats::default(),
        }
    }

    #[test]
    fn text_assembly() {
        let o = outcome("Considering everything.", &["A is 1.", "B rises."]);
        assert_eq!(o.body_text(), "A is 1. B rises.");
        assert_eq!(o.full_text(), "Considering everything. A is 1. B rises.");
        assert_eq!(o.body_len(), 16);
    }

    #[test]
    fn empty_parts_do_not_leave_stray_spaces() {
        let no_preamble = outcome("", &["Only body."]);
        assert_eq!(no_preamble.full_text(), "Only body.");
        let no_body = outcome("Only preamble.", &[]);
        assert_eq!(no_body.full_text(), "Only preamble.");
    }
}
