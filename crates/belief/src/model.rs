//! The belief model: speeches → per-aggregate normal distributions, and the
//! sampling reward of paper Algorithm 3.

use voxolap_engine::query::{AggIdx, ResultLayout};
use voxolap_speech::scope::CompiledSpeech;
use voxolap_speech::verbalize::round_significant;

use crate::normal::Normal;

/// The value range a listener associates with a spoken one-significant-digit
/// number: the rounding bucket of `v`.
///
/// Example 4.3 of the paper: a rounded estimate of "90 K" corresponds to the
/// interval `[85 K, 95 K)`. For `v = 0` (or non-finite `v`) the bucket
/// degenerates; `fallback_width` supplies its width instead.
pub fn rounding_bucket(v: f64, fallback_width: f64) -> (f64, f64) {
    if !v.is_finite() || v == 0.0 {
        let w = fallback_width.abs().max(f64::MIN_POSITIVE);
        return (-w / 2.0, w / 2.0);
    }
    let r = round_significant(v, 1);
    if r == 0.0 {
        let w = fallback_width.abs().max(f64::MIN_POSITIVE);
        return (-w / 2.0, w / 2.0);
    }
    let step = 10f64.powf(r.abs().log10().floor());
    (r - step / 2.0, r + step / 2.0)
}

/// Maps compiled speeches to belief distributions and rewards.
///
/// σ is modeled "as a constant that is approximately proportional to 50 %
/// of the mean when aggregating over the entire data set" (paper §3.4,
/// footnote 1). Build one per scenario from the overall mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeliefModel {
    sigma: f64,
}

impl BeliefModel {
    /// Create a model with an explicit σ.
    ///
    /// # Panics
    /// Panics on non-positive or non-finite σ.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma > 0.0, "sigma must be positive, got {sigma}");
        BeliefModel { sigma }
    }

    /// The paper's σ choice: half the overall mean of the measure
    /// (Example 3.4 chooses σ = 40 000 for an 80 000 average).
    pub fn from_overall_mean(mean: f64) -> Self {
        let sigma = (mean.abs() * 0.5).max(f64::MIN_POSITIVE);
        Self::new(if sigma.is_finite() { sigma } else { 1.0 })
    }

    /// The configured standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// `B(a, t)`: the belief distribution a speech induces about one
    /// aggregate — computable for a single aggregate without instantiating
    /// the full model (paper §3.4, "important for the design of our
    /// algorithm").
    pub fn belief(&self, speech: &CompiledSpeech, agg: AggIdx, layout: &ResultLayout) -> Normal {
        Normal::new(speech.mean_for(agg, layout), self.sigma)
    }

    /// The sampling reward of `SpeechDBEval`: the probability the belief
    /// assigns to the rounding bucket of a cache estimate `estimate`
    /// (Example 4.3: belief N(82 K, 40 K) and a rounded 90 K estimate give
    /// reward ≈ 0.1, the mass of `[85 K, 95 K)`).
    ///
    /// Returns 0 for non-finite estimates (no cached rows yet).
    pub fn reward(
        &self,
        speech: &CompiledSpeech,
        agg: AggIdx,
        layout: &ResultLayout,
        estimate: f64,
    ) -> f64 {
        if !estimate.is_finite() {
            return 0.0;
        }
        let belief = self.belief(speech, agg, layout);
        let (lo, hi) = rounding_bucket(estimate, self.sigma / 10.0);
        belief.prob_interval(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::salary::SalaryConfig;
    use voxolap_data::DimId;
    use voxolap_engine::query::{AggFct, Query};
    use voxolap_speech::ast::{Baseline, Change, Direction, Predicate, Refinement, Speech};

    #[test]
    fn bucket_of_ninety_k_matches_example_4_3() {
        let (lo, hi) = rounding_bucket(90.0, 1.0);
        assert!((lo - 85.0).abs() < 1e-9);
        assert!((hi - 95.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_rounds_first() {
        // 87.3 rounds to 90 at one significant digit.
        let (lo, hi) = rounding_bucket(87.3, 1.0);
        assert!((lo - 85.0).abs() < 1e-9);
        assert!((hi - 95.0).abs() < 1e-9);
        // Small fractions: 0.0231 -> 0.02, step 0.01 -> [0.015, 0.025].
        let (lo, hi) = rounding_bucket(0.0231, 1.0);
        assert!((lo - 0.015).abs() < 1e-12);
        assert!((hi - 0.025).abs() < 1e-12);
    }

    #[test]
    fn zero_and_nan_use_fallback_width() {
        let (lo, hi) = rounding_bucket(0.0, 2.0);
        assert_eq!((lo, hi), (-1.0, 1.0));
        let (lo, hi) = rounding_bucket(f64::NAN, 2.0);
        assert_eq!((lo, hi), (-1.0, 1.0));
    }

    #[test]
    fn negative_values_bucket_symmetrically() {
        let (lo, hi) = rounding_bucket(-90.0, 1.0);
        assert!((lo + 95.0).abs() < 1e-9);
        assert!((hi + 85.0).abs() < 1e-9);
    }

    fn salary_setup() -> (voxolap_data::Table, Query) {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .build(table.schema())
            .unwrap();
        (table, q)
    }

    #[test]
    fn example_4_3_reward_magnitude() {
        // Belief N(82 K, 40 K); estimate rounds to 90 K; the paper reports
        // a reward of ~0.1 (the mass of [85, 95)).
        let model = BeliefModel::new(40.0);
        let (table, q) = salary_setup();
        let speech = Speech::baseline_only(82.0);
        let cs = CompiledSpeech::compile(&speech, q.layout(), table.schema());
        let r = model.reward(&cs, 0, q.layout(), 90.0);
        assert!((r - 0.1).abs() < 0.01, "reward {r}");
    }

    #[test]
    fn reward_peaks_when_speech_matches_estimate() {
        let model = BeliefModel::new(40.0);
        let (table, q) = salary_setup();
        let schema = table.schema();
        let exact_speech = Speech::baseline_only(90.0);
        let off_speech = Speech::baseline_only(150.0);
        let cs_exact = CompiledSpeech::compile(&exact_speech, q.layout(), schema);
        let cs_off = CompiledSpeech::compile(&off_speech, q.layout(), schema);
        let r_exact = model.reward(&cs_exact, 0, q.layout(), 90.0);
        let r_off = model.reward(&cs_off, 0, q.layout(), 90.0);
        assert!(r_exact > r_off, "{r_exact} > {r_off}");
    }

    #[test]
    fn refinement_shifts_belief_mean() {
        let model = BeliefModel::new(40.0);
        let (table, q) = salary_setup();
        let schema = table.schema();
        let ne = schema.dimension(DimId(0)).member_by_phrase("the North East").unwrap();
        let speech = Speech {
            baseline: Baseline::point(80.0),
            refinements: vec![Refinement {
                predicates: vec![Predicate { dim: DimId(0), member: ne }],
                change: Change { direction: Direction::Increase, percent: 50 },
            }],
        };
        let cs = CompiledSpeech::compile(&speech, q.layout(), schema);
        let ne_idx = q.layout().coords(DimId(0)).iter().position(|&m| m == ne).unwrap() as u32;
        let b = model.belief(&cs, ne_idx, q.layout());
        assert!((b.mean - 120.0).abs() < 1e-9);
        assert!((b.sigma - 40.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_estimate_rewards_zero() {
        let model = BeliefModel::new(40.0);
        let (table, q) = salary_setup();
        let cs = CompiledSpeech::compile(&Speech::baseline_only(80.0), q.layout(), table.schema());
        assert_eq!(model.reward(&cs, 0, q.layout(), f64::NAN), 0.0);
        assert_eq!(model.reward(&cs, 0, q.layout(), f64::INFINITY), 0.0);
    }

    #[test]
    fn from_overall_mean_halves() {
        assert_eq!(BeliefModel::from_overall_mean(80.0).sigma(), 40.0);
        assert_eq!(BeliefModel::from_overall_mean(-80.0).sigma(), 40.0);
        // Degenerate means still yield a usable model.
        assert!(BeliefModel::from_overall_mean(0.0).sigma() > 0.0);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn non_positive_sigma_rejected() {
        BeliefModel::new(-1.0);
    }
}
