//! Normal distributions with a dependency-free error function.

/// Error function, Abramowitz & Stegun approximation 7.1.26
/// (maximum absolute error 1.5·10⁻⁷ — far below any tolerance relevant to
/// one-significant-digit voice output).
pub fn erf(x: f64) -> f64 {
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// A normal distribution `N(mean, sigma)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (> 0).
    pub sigma: f64,
}

impl Normal {
    /// Create a normal distribution.
    ///
    /// # Panics
    /// Panics if `sigma` is not strictly positive and finite.
    pub fn new(mean: f64, sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma > 0.0, "sigma must be positive, got {sigma}");
        Normal { mean, sigma }
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        0.5 * (1.0 + erf((x - self.mean) / (self.sigma * std::f64::consts::SQRT_2)))
    }

    /// Probability mass of the interval `[lo, hi]`.
    pub fn prob_interval(&self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "interval bounds out of order: [{lo}, {hi}]");
        (self.cdf(hi) - self.cdf(lo)).max(0.0)
    }

    /// Draw one sample using the Box–Muller transform.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.sigma * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        assert!((erf(0.0)).abs() < 1.5e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!(erf(6.0) > 0.999999);
    }

    #[test]
    fn cdf_symmetry_and_tails() {
        let n = Normal::new(10.0, 2.0);
        assert!((n.cdf(10.0) - 0.5).abs() < 1e-9);
        assert!(n.cdf(0.0) < 1e-4);
        assert!(n.cdf(20.0) > 0.9999);
        // cdf(mean + x) + cdf(mean - x) = 1.
        assert!((n.cdf(13.0) + n.cdf(7.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn interval_probabilities() {
        let n = Normal::new(0.0, 1.0);
        // One sigma each side ≈ 68.27 %.
        assert!((n.prob_interval(-1.0, 1.0) - 0.6827).abs() < 1e-3);
        // Concentration: nearer intervals carry more mass.
        assert!(n.prob_interval(0.0, 1.0) > n.prob_interval(1.0, 2.0));
        // Degenerate interval carries none.
        assert!(n.prob_interval(0.5, 0.5).abs() < 1e-12);
    }

    #[test]
    fn pdf_peaks_at_mean() {
        let n = Normal::new(5.0, 3.0);
        assert!(n.pdf(5.0) > n.pdf(6.0));
        assert!(n.pdf(5.0) > n.pdf(4.0));
        assert!((n.pdf(4.0) - n.pdf(6.0)).abs() < 1e-12, "symmetric density");
    }

    #[test]
    fn sampling_matches_moments() {
        let n = Normal::new(42.0, 7.0);
        let mut rng = StdRng::seed_from_u64(17);
        let k = 20_000;
        let samples: Vec<f64> = (0..k).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / k as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / k as f64;
        assert!((mean - 42.0).abs() < 0.3, "sample mean {mean}");
        assert!((var.sqrt() - 7.0).abs() < 0.3, "sample sigma {}", var.sqrt());
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn zero_sigma_rejected() {
        Normal::new(1.0, 0.0);
    }
}
