//! # voxolap-belief
//!
//! The user belief model of paper §3.4 and the speech-quality metric of
//! Definition 2.2.
//!
//! A pilot user study (paper Table 2) established that listeners fill gaps
//! in concise voice output by assuming **symmetric**, **unimodal**
//! (concentrated), **composable**, and **maximum-entropy-uniform** value
//! distributions, well approximated by normal distributions with a standard
//! deviation proportional to the mean. Accordingly, the belief a speech `t`
//! induces about aggregate `a` is
//!
//! ```text
//! B(a, t) = N( M(a, t), σ )
//! ```
//!
//! where the mean assignment `M` is computed by
//! [`CompiledSpeech`](voxolap_speech::scope::CompiledSpeech) and σ is a
//! scenario constant ≈ 50 % of the overall mean ([`BeliefModel`]).
//!
//! Speech quality (Definition 2.2) is the average, over all result
//! aggregates, of the probability the belief assigns to (a value range
//! including) the actual aggregate value.
//!
//! ```
//! use voxolap_belief::normal::Normal;
//! let n = Normal::new(120_000.0, 40_000.0);
//! // Beliefs concentrate around the mean and are symmetric.
//! assert!((n.cdf(120_000.0) - 0.5).abs() < 1e-9);
//! ```

pub mod model;
pub mod normal;
pub mod quality;

pub use model::{rounding_bucket, BeliefModel};
pub use normal::Normal;
pub use quality::speech_quality;
