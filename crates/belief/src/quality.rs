//! Exact speech quality (paper Definition 2.2).
//!
//! The quality of a speech is the **average probability that users assign
//! to actual query-result values after listening to it**:
//!
//! ```text
//! quality(t) = Σ_{a ∈ q.aggs} Pr( a(D) | B(a, t) ) / |q.aggs|
//! ```
//!
//! For the continuous belief distributions of our model, `Pr(a(D) | ·)` is
//! the probability of a value range including the actual value — we use the
//! one-significant-digit rounding bucket, the same range granularity the
//! speech itself can express.

use voxolap_engine::exact::ExactResult;
use voxolap_engine::query::ResultLayout;
use voxolap_speech::scope::CompiledSpeech;

use crate::model::{rounding_bucket, BeliefModel};

/// Compute the exact quality of a compiled speech against the full query
/// result. Aggregates with undefined values (empty AVG scopes, `NaN`) are
/// skipped; returns 0 when no aggregate is defined.
pub fn speech_quality(
    speech: &CompiledSpeech,
    model: &BeliefModel,
    exact: &ExactResult,
    layout: &ResultLayout,
) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for agg in 0..layout.n_aggregates() as u32 {
        let actual = exact.value(agg);
        if !actual.is_finite() {
            continue;
        }
        let belief = model.belief(speech, agg, layout);
        let (lo, hi) = rounding_bucket(actual, model.sigma() / 10.0);
        total += belief.prob_interval(lo, hi);
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::salary::SalaryConfig;
    use voxolap_data::DimId;
    use voxolap_engine::exact::evaluate;
    use voxolap_engine::query::{AggFct, Query};
    use voxolap_speech::ast::{Baseline, Change, Direction, Predicate, Refinement, Speech};

    fn setup() -> (voxolap_data::Table, Query) {
        let table = SalaryConfig::paper_scale().generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        (table, q)
    }

    #[test]
    fn accurate_baseline_beats_inaccurate() {
        let (table, q) = setup();
        let schema = table.schema();
        let exact = evaluate(&q, &table);
        let model = BeliefModel::from_overall_mean(exact.grand_mean());

        let good =
            CompiledSpeech::compile(&Speech::baseline_only(exact.grand_mean()), q.layout(), schema);
        let bad = CompiledSpeech::compile(
            &Speech::baseline_only(exact.grand_mean() * 3.0),
            q.layout(),
            schema,
        );
        let q_good = speech_quality(&good, &model, &exact, q.layout());
        let q_bad = speech_quality(&bad, &model, &exact, q.layout());
        assert!(q_good > q_bad, "{q_good} > {q_bad}");
        assert!(q_good > 0.0 && q_good <= 1.0);
    }

    #[test]
    fn truthful_refinement_improves_quality() {
        // The salary generator lifts "at least 50 K" start salaries by 20%;
        // saying so must increase quality over the bare baseline.
        let (table, q) = setup();
        let schema = table.schema();
        let exact = evaluate(&q, &table);
        let model = BeliefModel::from_overall_mean(exact.grand_mean());

        let hi = schema.dimension(DimId(1)).member_by_phrase("at least 50 K").unwrap();
        let baseline = Speech::baseline_only(exact.grand_mean());
        let refined = Speech {
            baseline: Baseline::point(exact.grand_mean()),
            refinements: vec![Refinement {
                predicates: vec![Predicate { dim: DimId(1), member: hi }],
                change: Change { direction: Direction::Increase, percent: 10 },
            }],
        };
        let q_base = speech_quality(
            &CompiledSpeech::compile(&baseline, q.layout(), schema),
            &model,
            &exact,
            q.layout(),
        );
        let q_ref = speech_quality(
            &CompiledSpeech::compile(&refined, q.layout(), schema),
            &model,
            &exact,
            q.layout(),
        );
        assert!(q_ref > q_base, "refined {q_ref} > baseline {q_base}");
    }

    #[test]
    fn misleading_refinement_hurts_quality() {
        let (table, q) = setup();
        let schema = table.schema();
        let exact = evaluate(&q, &table);
        let model = BeliefModel::from_overall_mean(exact.grand_mean());

        let hi = schema.dimension(DimId(1)).member_by_phrase("at least 50 K").unwrap();
        let baseline = Speech::baseline_only(exact.grand_mean());
        // Claim high start salaries pay LESS — the opposite of the data.
        let lying = Speech {
            baseline: Baseline::point(exact.grand_mean()),
            refinements: vec![Refinement {
                predicates: vec![Predicate { dim: DimId(1), member: hi }],
                change: Change { direction: Direction::Decrease, percent: 50 },
            }],
        };
        let q_base = speech_quality(
            &CompiledSpeech::compile(&baseline, q.layout(), schema),
            &model,
            &exact,
            q.layout(),
        );
        let q_lie = speech_quality(
            &CompiledSpeech::compile(&lying, q.layout(), schema),
            &model,
            &exact,
            q.layout(),
        );
        assert!(q_lie < q_base, "lying {q_lie} < baseline {q_base}");
    }

    #[test]
    fn quality_is_bounded() {
        let (table, q) = setup();
        let exact = evaluate(&q, &table);
        let model = BeliefModel::from_overall_mean(exact.grand_mean());
        for v in [1.0, 50.0, 90.0, 500.0] {
            let cs = CompiledSpeech::compile(&Speech::baseline_only(v), q.layout(), table.schema());
            let quality = speech_quality(&cs, &model, &exact, q.layout());
            assert!((0.0..=1.0).contains(&quality), "quality {quality} for baseline {v}");
        }
    }

    #[test]
    fn empty_aggregates_are_skipped() {
        // Institution-level grouping at tiny row counts leaves empty AVG
        // scopes; quality must remain finite.
        let table = SalaryConfig { rows: 8, seed: 1 }.generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(1), LevelId(2))
            .build(table.schema())
            .unwrap();
        let exact = evaluate(&q, &table);
        let model = BeliefModel::from_overall_mean(80.0);
        let cs = CompiledSpeech::compile(&Speech::baseline_only(80.0), q.layout(), table.schema());
        let quality = speech_quality(&cs, &model, &exact, q.layout());
        assert!(quality.is_finite());
    }
}
