//! # voxolap-simuser
//!
//! Simulated-listener user studies reproducing the paper's crowd
//! experiments without crowd workers. The substitution is principled: the
//! paper's own belief model (§3.4) *is* a model of how an average listener
//! fills information gaps, validated by its pilot study. Our simulated
//! listeners instantiate that model with calibrated noise, plus the one
//! deviant behaviour the paper observed — workers who misread "values
//! increase **by** 100 %" as "increase **to** 100 %" (the user 1/8
//! outliers of Table 6).
//!
//! * [`listener`] — the simulated listener: belief-model estimates with
//!   noise, optional "increase-to" misunderstanding;
//! * [`pilot`] — the implicit-assumptions pilot study (Tables 2 and 10);
//! * [`estimation`] — the estimation study (Tables 6 and 14): absolute
//!   error and relative-tendency accuracy per approach;
//! * [`preference`] — the exploratory preference study (Tables 8 and 9):
//!   scripted analysis sessions, speech-length statistics, and a
//!   length-driven preference model;
//! * [`explore`] — fact extraction from vocalizations (Table 7 analogue);
//! * [`sessions`] — seeded multi-turn utterance scripts for driving
//!   thousands of live voice sessions against the server (DESIGN.md §15).

pub mod estimation;
pub mod explore;
pub mod listener;
pub mod pilot;
pub mod preference;
pub mod sessions;

pub use estimation::{EstimationResult, EstimationStudy};
pub use listener::{ListenerConfig, SimulatedListener};
pub use pilot::{PilotResult, PilotStudy};
pub use preference::{PreferenceResult, PreferenceStudy};
pub use sessions::{utterance_script, ScriptConfig};
