//! The implicit-assumptions pilot study (paper Tables 2 and 10).
//!
//! The paper asked 20 AMT workers a battery of nine questions testing
//! whether listeners fill information gaps with symmetric, unimodal,
//! maximum-entropy-uniform, normal-like distributions and how they compose
//! overlapping claims. We reproduce the study with simulated workers: a
//! *model-following* worker answers each question the way the paper's
//! belief model prescribes (the answer marked consistent below); per
//! question, a calibrated fraction of workers deviates and answers among
//! the remaining options uniformly. The calibration uses the paper's
//! observed per-question consistency rates with stratified assignment —
//! exactly `round(p · n)` workers follow the model, the RNG only decides
//! *which* workers — so the harness regenerates Table 10's consistency
//! counts exactly and Table 2's per-aspect summary deterministically.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One pilot-study question.
#[derive(Debug, Clone)]
pub struct PilotQuestion {
    /// The model aspect under test (Table 2 row).
    pub aspect: &'static str,
    /// The question text (abridged from Table 10).
    pub question: &'static str,
    /// Three answer options.
    pub answers: [&'static str; 3],
    /// Which options are consistent with the belief model.
    pub consistent: [bool; 3],
    /// Fraction of workers expected to answer consistently
    /// (calibrated from the paper's observed counts).
    pub p_consistent: f64,
}

/// The paper's question battery (Table 10), with consistency flags derived
/// from the belief model:
///
/// * symmetry → "about half less, half more";
/// * concentration → closer ranges are more likely;
/// * variance → with σ = µ/2, `P(X > 1.5µ) = 1 − Φ(1) ≈ 16 %`, so both
///   "0–20 %" and "20–40 %" are consistent with σ ≤ µ;
/// * uniformity (MEP) → "about the same";
/// * composition → claims compose (multiplicatively for the literal
///   reading: 2× · 2× = 4×, 0.5× · 2× = same as average).
pub fn questions() -> Vec<PilotQuestion> {
    vec![
        PilotQuestion {
            aspect: "Symmetry",
            question: "Assume the typical salary is $10. Which option seems most likely?",
            answers: [
                "Most people get more than $10",
                "About half get less and half get more",
                "Most people get less than $10",
            ],
            consistent: [false, true, false],
            p_consistent: 0.75, // paper: 15/20
        },
        PilotQuestion {
            aspect: "Concentration",
            question: "Typical salary $10: is $10-15 or $15-20 more likely?",
            answers: ["$10 to $15 is more likely", "Equally likely", "$15 to $20 is more likely"],
            consistent: [true, false, false],
            p_consistent: 0.75, // paper: 15/20
        },
        PilotQuestion {
            aspect: "Concentration",
            question: "Typical salary $10: is $5-10 or $1-5 more likely?",
            answers: ["$5 to $10 is more likely", "Equally likely", "$1 to $5 is more likely"],
            consistent: [true, false, false],
            p_consistent: 0.65, // paper: 13/20
        },
        PilotQuestion {
            aspect: "Variance",
            question: "Typical salary $10: which percentage is paid more than $15?",
            answers: ["Between 0% and 20%", "Between 20% and 40%", "Between 40% and 60%"],
            consistent: [true, true, false],
            p_consistent: 0.95, // paper: 19/20 in the first two options
        },
        PilotQuestion {
            aspect: "Variance",
            question: "Typical salary $10: which percentage is paid less than $5?",
            answers: ["Between 0% and 20%", "Between 20% and 40%", "Between 40% and 60%"],
            consistent: [true, true, false],
            p_consistent: 1.0, // paper: 20/20
        },
        PilotQuestion {
            aspect: "Variance",
            question: "Typical salary $100: which percentage is paid more than $150?",
            answers: ["Between 0% and 20%", "Between 20% and 40%", "Between 40% and 60%"],
            consistent: [true, true, false],
            p_consistent: 0.9, // paper: 18/20
        },
        PilotQuestion {
            aspect: "Variance",
            question: "Typical salary $100: which percentage is paid less than $50?",
            answers: ["Between 0% and 20%", "Between 20% and 40%", "Between 40% and 60%"],
            consistent: [true, true, false],
            p_consistent: 0.85, // paper: 17/20
        },
        PilotQuestion {
            aspect: "Uniformity",
            question: "Average salary over cities A and B is $10. What do you assume?",
            answers: [
                "The salary in city A is higher",
                "About the same in both cities",
                "The salary in city B is higher",
            ],
            consistent: [false, true, false],
            p_consistent: 0.75, // paper: 15/20
        },
        PilotQuestion {
            aspect: "Composition",
            question: "Salary doubles for profession A and doubles in city B. Estimate for both?",
            answers: ["Same as average", "Two times higher", "Four times higher"],
            consistent: [false, false, true],
            p_consistent: 0.35, // paper: 7/20
        },
        PilotQuestion {
            aspect: "Composition",
            question: "Salary halves for profession A, doubles in city B. Estimate for both?",
            answers: ["Same as average", "Two times higher", "Four times higher"],
            consistent: [true, false, false],
            p_consistent: 0.7, // paper: 14/20
        },
    ]
}

/// Pilot-study configuration.
#[derive(Debug, Clone, Copy)]
pub struct PilotStudy {
    /// Number of simulated workers (paper: 20).
    pub n_workers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PilotStudy {
    fn default() -> Self {
        PilotStudy { n_workers: 20, seed: 42 }
    }
}

/// Study output: per-question reply counts (Table 10) and per-aspect
/// consistency summary (Table 2).
#[derive(Debug, Clone)]
pub struct PilotResult {
    /// For each question, the number of workers picking each option.
    pub replies: Vec<[usize; 3]>,
    /// Per aspect: (aspect, consistent answers, inconsistent answers).
    pub per_aspect: Vec<(String, usize, usize)>,
}

impl PilotStudy {
    /// Run the study.
    pub fn run(&self) -> PilotResult {
        let qs = questions();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut replies = vec![[0usize; 3]; qs.len()];
        for (qi, q) in qs.iter().enumerate() {
            let consistent_opts: Vec<usize> = (0..3).filter(|&i| q.consistent[i]).collect();
            let inconsistent_opts: Vec<usize> = (0..3).filter(|&i| !q.consistent[i]).collect();
            // Stratified: exactly round(p · n) workers answer consistently.
            let n_consistent =
                ((q.p_consistent * self.n_workers as f64).round() as usize).min(self.n_workers);
            let mut follows_flags: Vec<bool> =
                (0..self.n_workers).map(|w| w < n_consistent).collect();
            follows_flags.shuffle(&mut rng);
            for follows in follows_flags {
                let pick = if follows || inconsistent_opts.is_empty() {
                    // Model followers prefer the first consistent option
                    // strongly (the model's point prediction).
                    if consistent_opts.len() > 1 && rng.gen::<f64>() < 0.4 {
                        consistent_opts[1]
                    } else {
                        consistent_opts[0]
                    }
                } else {
                    inconsistent_opts[rng.gen_range(0..inconsistent_opts.len())]
                };
                replies[qi][pick] += 1;
            }
        }

        // Aggregate per aspect.
        let mut per_aspect: Vec<(String, usize, usize)> = Vec::new();
        for (qi, q) in qs.iter().enumerate() {
            let consistent: usize =
                (0..3).filter(|&i| q.consistent[i]).map(|i| replies[qi][i]).sum();
            let inconsistent = self.n_workers - consistent;
            match per_aspect.iter_mut().find(|(a, _, _)| a == q.aspect) {
                Some((_, c, i)) => {
                    *c += consistent;
                    *i += inconsistent;
                }
                None => per_aspect.push((q.aspect.to_string(), consistent, inconsistent)),
            }
        }
        PilotResult { replies, per_aspect }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_matches_paper_structure() {
        let qs = questions();
        assert_eq!(qs.len(), 10, "Table 10 has ten questions");
        let aspects: Vec<&str> = {
            let mut seen = Vec::new();
            for q in &qs {
                if !seen.contains(&q.aspect) {
                    seen.push(q.aspect);
                }
            }
            seen
        };
        assert_eq!(
            aspects,
            vec!["Symmetry", "Concentration", "Variance", "Uniformity", "Composition"]
        );
    }

    #[test]
    fn every_worker_answers_every_question() {
        let r = PilotStudy::default().run();
        for counts in &r.replies {
            assert_eq!(counts.iter().sum::<usize>(), 20);
        }
    }

    #[test]
    fn majorities_support_hypotheses() {
        // Table 2's headline: the majority of answers supports each
        // hypothesis.
        let r = PilotStudy::default().run();
        for (aspect, consistent, inconsistent) in &r.per_aspect {
            assert!(
                consistent > inconsistent,
                "{aspect}: {consistent} consistent vs {inconsistent}"
            );
        }
    }

    #[test]
    fn counts_calibrated_to_paper_magnitudes() {
        let r = PilotStudy::default().run();
        let get = |aspect: &str| {
            r.per_aspect.iter().find(|(a, _, _)| a == aspect).map(|(_, c, i)| (*c, *i)).unwrap()
        };
        // Paper Table 2: Symmetry 15/5, Concentration 28/12,
        // Normal variance 74/6, Uniformity 15/5, Composition 21/19.
        let (c, i) = get("Symmetry");
        assert_eq!(c + i, 20);
        assert!((c as i64 - 15).unsigned_abs() <= 4, "symmetry {c}/{i}");
        let (c, i) = get("Concentration");
        assert_eq!(c + i, 40);
        assert!((c as i64 - 28).unsigned_abs() <= 7, "concentration {c}/{i}");
        let (c, i) = get("Variance");
        assert_eq!(c + i, 80);
        assert!((c as i64 - 74).unsigned_abs() <= 8, "variance {c}/{i}");
        let (c, i) = get("Composition");
        assert_eq!(c + i, 40);
        assert!((c as i64 - 21).unsigned_abs() <= 8, "composition {c}/{i}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = PilotStudy { n_workers: 20, seed: 5 }.run();
        let b = PilotStudy { n_workers: 20, seed: 5 }.run();
        assert_eq!(a.replies, b.replies);
        let c = PilotStudy { n_workers: 20, seed: 6 }.run();
        assert_ne!(a.replies, c.replies);
    }
}
