//! The exploratory preference study (paper Tables 8 and 9).
//!
//! The paper had 40 crowd workers (20 per dataset) analyze data through a
//! web interface that could switch between the prior vocalization method
//! and this paper's, then asked for a five-point preference and measured
//! the speech lengths each method generated during the sessions.
//!
//! We reproduce the study with scripted sessions: each simulated worker
//! issues a pseudo-random walk of keyword commands (drill down, roll up,
//! filters — through the same parser real users would exercise), every
//! resulting query is vocalized by **both** methods, and lengths are
//! logged. Preferences follow the paper's observed driver — "many users
//! based their preferences on speech length" — via a per-user weighting of
//! the log length ratio, which regenerates Table 8's shape: a majority for
//! this approach, stronger on the higher-dimensional flights dataset.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use voxolap_belief::normal::Normal;
use voxolap_core::holistic::{Holistic, HolisticConfig};
use voxolap_core::prior::PriorGreedy;
use voxolap_core::voice::InstantVoice;
use voxolap_data::flights::FlightsConfig;
use voxolap_data::salary::SalaryConfig;
use voxolap_data::Table;
use voxolap_voice::session::Session;

/// Configuration of the preference study.
#[derive(Debug, Clone, Copy)]
pub struct PreferenceStudy {
    /// Sessions (workers) per dataset (paper: 20).
    pub sessions_per_dataset: usize,
    /// Minimum and maximum commands issued per session.
    pub commands_per_session: (usize, usize),
    /// Rows of the generated flights dataset (full scale is slow in
    /// debug-mode tests; experiments use larger values).
    pub flights_rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PreferenceStudy {
    fn default() -> Self {
        PreferenceStudy {
            sessions_per_dataset: 20,
            commands_per_session: (5, 12),
            flights_rows: 30_000,
            seed: 42,
        }
    }
}

/// Length statistics of one method over one dataset (Table 9 row).
#[derive(Debug, Clone, Copy)]
pub struct MethodLengths {
    /// Average speech length in characters.
    pub avg: f64,
    /// Maximum speech length in characters.
    pub max: usize,
}

/// Input-method preference counts across all workers (paper §5.2:
/// "about one quarter of users (nine out of 40) preferred keyboard input
/// over voice input", citing missing microphones, noisy environments,
/// and recognition errors).
#[derive(Debug, Clone, Copy, Default)]
pub struct InputPreference {
    /// Workers preferring voice input.
    pub voice: usize,
    /// Workers preferring keyboard input.
    pub keyboard: usize,
}

/// Study outcome for one dataset.
#[derive(Debug, Clone)]
pub struct DatasetOutcome {
    /// Dataset name.
    pub dataset: String,
    /// Preference counts: `[Prior++, Prior+, Neutral, This+, This++]`.
    pub counts: [usize; 5],
    /// Length statistics of this paper's approach.
    pub this_len: MethodLengths,
    /// Length statistics of the prior approach.
    pub prior_len: MethodLengths,
    /// Total queries vocalized across sessions.
    pub queries: usize,
}

/// Full study output.
#[derive(Debug, Clone)]
pub struct PreferenceResult {
    /// One outcome per dataset (salary first, as in Table 8).
    pub datasets: Vec<DatasetOutcome>,
    /// Input-method preferences across all workers.
    pub input: InputPreference,
}

/// Command vocabulary per dataset: the walks workers take.
fn command_pool(dataset: &str) -> Vec<&'static str> {
    match dataset {
        "salary" => vec![
            "break down by region",
            "break down by rough start salary",
            "drill down into the college location",
            "by precise start salary",
            "at least 50 K",
            "less than 50 K",
            "clear filters",
            "roll up the college location",
            "the midwest",
            "the north east",
        ],
        _ => vec![
            "break down by region",
            "break down by season",
            "by month",
            "drill down into the start airport",
            "break down by airline",
            "winter",
            "summer",
            "the north east",
            "clear filters",
            "roll up the start airport",
            "roll up the flight date",
            "texas",
        ],
    }
}

/// Study-scale holistic configuration: small per-sentence budgets keep 400+
/// vocalizations tractable while preserving planner behaviour.
fn study_holistic(seed: u64) -> Holistic {
    Holistic::new(HolisticConfig {
        min_samples_per_sentence: 48,
        warmup_rows: 120,
        max_tree_nodes: 20_000,
        seed,
        ..HolisticConfig::default()
    })
}

impl PreferenceStudy {
    /// Run the study over both datasets.
    pub fn run(&self) -> PreferenceResult {
        let salary = SalaryConfig::paper_scale().generate();
        let flights = FlightsConfig { rows: self.flights_rows, seed: 42 }.generate();
        PreferenceResult {
            datasets: vec![
                self.run_dataset("salary", &salary),
                self.run_dataset("flights", &flights),
            ],
            input: self.input_preferences(),
        }
    }

    /// Simulate input-method preferences: a worker prefers keyboard when
    /// they lack a microphone, sit in a noisy environment, or experience
    /// speech-recognition failures — the reasons the paper's workers
    /// actually cited. Calibrated so ≈ one quarter prefer keyboard.
    pub fn input_preferences(&self) -> InputPreference {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x17u64);
        let mut out = InputPreference::default();
        for _ in 0..(2 * self.sessions_per_dataset) {
            let no_microphone = rng.gen::<f64>() < 0.08;
            let noisy_environment = rng.gen::<f64>() < 0.10;
            let recognition_failures = rng.gen::<f64>() < 0.12;
            if no_microphone || noisy_environment || recognition_failures {
                out.keyboard += 1;
            } else {
                out.voice += 1;
            }
        }
        out
    }

    /// Run all sessions for one dataset.
    pub fn run_dataset(&self, name: &str, table: &Table) -> DatasetOutcome {
        let pool = command_pool(name);
        let mut rng = StdRng::seed_from_u64(self.seed ^ name.len() as u64);
        let prior = PriorGreedy;

        let mut this_lens: Vec<usize> = Vec::new();
        let mut prior_lens: Vec<usize> = Vec::new();
        let mut counts = [0usize; 5];
        let mut queries = 0usize;

        for s in 0..self.sessions_per_dataset {
            let holistic = study_holistic(self.seed.wrapping_add(s as u64));
            let mut session = Session::new(table);
            let n_cmds = rng.gen_range(self.commands_per_session.0..=self.commands_per_session.1);
            let mut session_this = Vec::new();
            let mut session_prior = Vec::new();
            for _ in 0..n_cmds {
                let cmd = pool[rng.gen_range(0..pool.len())];
                if session.input(cmd).is_err() {
                    continue;
                }
                let mut voice = InstantVoice::default();
                let Ok(this_outcome) = session.vocalize_with(&holistic, &mut voice) else {
                    continue;
                };
                let mut voice = InstantVoice::default();
                let Ok(prior_outcome) = session.vocalize_with(&prior, &mut voice) else {
                    continue;
                };
                session_this.push(this_outcome.body_len());
                session_prior.push(prior_outcome.body_len());
                queries += 1;
            }
            if session_this.is_empty() {
                continue;
            }
            // Preference model: log length ratio weighted per user.
            let avg_this: f64 =
                session_this.iter().sum::<usize>() as f64 / session_this.len() as f64;
            let avg_prior: f64 =
                session_prior.iter().sum::<usize>() as f64 / session_prior.len() as f64;
            let ratio = (avg_prior / avg_this.max(1.0)).max(1e-6);
            let weight = Normal::new(0.6, 0.35).sample(&mut rng);
            let bias = Normal::new(0.0, 0.35).sample(&mut rng);
            let score = ratio.ln() * weight + bias;
            let bucket = if score < -0.65 {
                0 // Prior++
            } else if score < -0.2 {
                1 // Prior+
            } else if score < 0.25 {
                2 // Neutral
            } else if score < 0.8 {
                3 // This+
            } else {
                4 // This++
            };
            counts[bucket] += 1;
            this_lens.extend(session_this);
            prior_lens.extend(session_prior);
        }

        let stats = |lens: &[usize]| MethodLengths {
            avg: if lens.is_empty() {
                0.0
            } else {
                lens.iter().sum::<usize>() as f64 / lens.len() as f64
            },
            max: lens.iter().copied().max().unwrap_or(0),
        };
        DatasetOutcome {
            dataset: name.to_string(),
            counts,
            this_len: stats(&this_lens),
            prior_len: stats(&prior_lens),
            queries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_study() -> PreferenceStudy {
        PreferenceStudy {
            sessions_per_dataset: 6,
            commands_per_session: (3, 5),
            flights_rows: 4_000,
            seed: 42,
        }
    }

    #[test]
    fn this_approach_is_shorter_on_both_datasets() {
        let result = small_study().run();
        for d in &result.datasets {
            assert!(
                d.prior_len.avg > d.this_len.avg,
                "{}: prior avg {} > this avg {}",
                d.dataset,
                d.prior_len.avg,
                d.this_len.avg
            );
            assert!(d.prior_len.max >= d.this_len.max, "{}", d.dataset);
            assert!(d.queries > 0);
        }
    }

    #[test]
    fn length_gap_is_larger_for_flights() {
        // Table 9: the difference "is more pronounced for the flights data
        // set" because it has more dimensions.
        let result = small_study().run();
        let salary = &result.datasets[0];
        let flights = &result.datasets[1];
        let salary_ratio = salary.prior_len.avg / salary.this_len.avg;
        let flights_ratio = flights.prior_len.avg / flights.this_len.avg;
        assert!(
            flights_ratio > salary_ratio,
            "flights ratio {flights_ratio:.2} > salary ratio {salary_ratio:.2}"
        );
    }

    #[test]
    fn majority_prefers_this_approach() {
        let result = small_study().run();
        for d in &result.datasets {
            let prior_side = d.counts[0] + d.counts[1];
            let this_side = d.counts[3] + d.counts[4];
            assert!(
                this_side >= prior_side,
                "{}: this {this_side} vs prior {prior_side}",
                d.dataset
            );
        }
    }

    #[test]
    fn sessions_sum_to_preference_counts() {
        let study = small_study();
        let result = study.run();
        for d in &result.datasets {
            let total: usize = d.counts.iter().sum();
            assert!(total <= study.sessions_per_dataset);
            assert!(total > 0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = small_study().run();
        let b = small_study().run();
        assert_eq!(a.datasets[0].counts, b.datasets[0].counts);
        assert_eq!(a.datasets[1].this_len.max, b.datasets[1].this_len.max);
        assert_eq!(a.input.keyboard, b.input.keyboard);
    }

    #[test]
    fn about_a_quarter_prefer_keyboard() {
        // Paper §5.2: nine of 40 workers preferred keyboard input.
        let study = PreferenceStudy::default();
        let input = study.input_preferences();
        assert_eq!(input.voice + input.keyboard, 40);
        assert!(
            (4..=16).contains(&input.keyboard),
            "keyboard preference near one quarter: {}",
            input.keyboard
        );
    }
}
