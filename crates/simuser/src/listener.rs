//! The simulated listener.
//!
//! A listener hears a speech and forms per-aggregate value estimates. The
//! *model-following* listener reports the belief mean `M(a, t)` (paper
//! §3.4) perturbed by multiplicative noise — the paper's estimation study
//! shows most workers land within ~1 % of the belief mean (Table 6, users
//! 2–7). The *misunderstanding* listener reproduces the paper's observed
//! outlier mode: interpreting "values increase **by** P percent" as
//! "values increase **to** P percent", which produced the 27–56 % errors
//! of users 1 and 8.

use rand::rngs::StdRng;
use rand::SeedableRng;

use voxolap_belief::normal::Normal;
use voxolap_data::schema::{MeasureUnit, Schema};
use voxolap_engine::query::Query;
use voxolap_speech::ast::Speech;
use voxolap_speech::parse::{parse_body, SpeechParseError};
use voxolap_speech::scope::{CompiledSpeech, RefinementScope};

/// Listener behaviour configuration.
#[derive(Debug, Clone, Copy)]
pub struct ListenerConfig {
    /// Relative standard deviation of the estimate noise (0.05 = ±5 %).
    pub noise_rel: f64,
    /// Whether this listener misreads "increase by" as "increase to".
    pub misunderstands: bool,
}

impl Default for ListenerConfig {
    fn default() -> Self {
        ListenerConfig { noise_rel: 0.05, misunderstands: false }
    }
}

/// A simulated listener with a private RNG.
#[derive(Debug, Clone)]
pub struct SimulatedListener {
    config: ListenerConfig,
    seed: u64,
}

impl SimulatedListener {
    /// Create a listener; `seed` individualizes its noise.
    pub fn new(config: ListenerConfig, seed: u64) -> Self {
        SimulatedListener { config, seed }
    }

    /// Like [`SimulatedListener::estimate_fields`], but from the **text**
    /// the listener actually hears — the honest information boundary: the
    /// spoken body is parsed back into a speech first, so any information
    /// lost in verbalization (one-significant-digit rounding, range
    /// midpoints) is lost for the listener too.
    pub fn estimate_fields_from_text(
        &self,
        body_text: &str,
        query: &Query,
        schema: &Schema,
    ) -> Result<Vec<f64>, SpeechParseError> {
        let speech = parse_body(body_text, schema, query)?;
        Ok(self.estimate_fields(&speech, query, schema))
    }

    /// The listener's estimates for every result field after hearing
    /// `speech`, in aggregate-layout order.
    pub fn estimate_fields(&self, speech: &Speech, query: &Query, schema: &Schema) -> Vec<f64> {
        let layout = query.layout();
        let compiled = CompiledSpeech::compile(speech, layout, schema);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let noise = Normal::new(1.0, self.config.noise_rel.max(f64::MIN_POSITIVE));

        // Misunderstanders replace in-scope means with the literal spoken
        // percentage ("increase to P percent").
        let mis_scopes: Vec<(RefinementScope, f64)> = if self.config.misunderstands {
            speech
                .refinements
                .iter()
                .map(|r| {
                    let literal = match schema.measure(query.measure()).unit {
                        MeasureUnit::Fraction => r.change.percent as f64 / 100.0,
                        _ => r.change.percent as f64,
                    };
                    (RefinementScope::compile(r, layout, schema), literal)
                })
                .collect()
        } else {
            Vec::new()
        };

        (0..layout.n_aggregates() as u32)
            .map(|agg| {
                let mut mean = compiled.mean_for(agg, layout);
                let coords = layout.coords_of_agg(agg);
                for (scope, literal) in &mis_scopes {
                    if scope.contains_coords(&coords) {
                        mean = *literal;
                    }
                }
                mean * noise.sample(&mut rng)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::flights::FlightsConfig;
    use voxolap_data::DimId;
    use voxolap_engine::query::AggFct;
    use voxolap_speech::ast::{Baseline, Change, Direction, Predicate, Refinement};

    fn flights_setup() -> (voxolap_data::Table, Query) {
        let table = FlightsConfig { rows: 2_000, seed: 42 }.generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        (table, q)
    }

    fn winter_speech(schema: &Schema) -> Speech {
        let winter = schema.dimension(DimId(1)).member_by_phrase("Winter").unwrap();
        Speech {
            baseline: Baseline::point(0.02),
            refinements: vec![Refinement {
                predicates: vec![Predicate { dim: DimId(1), member: winter }],
                change: Change { direction: Direction::Increase, percent: 100 },
            }],
        }
    }

    #[test]
    fn follower_tracks_belief_means() {
        let (table, q) = flights_setup();
        let schema = table.schema();
        let speech = winter_speech(schema);
        let listener =
            SimulatedListener::new(ListenerConfig { noise_rel: 0.01, misunderstands: false }, 7);
        let estimates = listener.estimate_fields(&speech, &q, schema);
        let compiled = CompiledSpeech::compile(&speech, q.layout(), schema);
        assert_eq!(estimates.len(), 20);
        for (agg, &e) in estimates.iter().enumerate() {
            let m = compiled.mean_for(agg as u32, q.layout());
            assert!((e - m).abs() < m.abs() * 0.06 + 1e-6, "agg {agg}: {e} vs mean {m}");
        }
    }

    #[test]
    fn misunderstander_jumps_to_literal_percent() {
        let (table, q) = flights_setup();
        let schema = table.schema();
        let speech = winter_speech(schema);
        let listener =
            SimulatedListener::new(ListenerConfig { noise_rel: 0.01, misunderstands: true }, 9);
        let estimates = listener.estimate_fields(&speech, &q, schema);
        // Winter aggregates are read as "increase TO 100%" = 1.0.
        let winter = schema.dimension(DimId(1)).member_by_phrase("Winter").unwrap();
        let winter_coord = q.layout().coords(DimId(1)).iter().position(|&m| m == winter).unwrap();
        for agg in 0..q.n_aggregates() as u32 {
            let coords = q.layout().coords_of_agg(agg);
            if coords[1] as usize == winter_coord {
                assert!(
                    (estimates[agg as usize] - 1.0).abs() < 0.05,
                    "{}",
                    estimates[agg as usize]
                );
            } else {
                assert!(estimates[agg as usize] < 0.1);
            }
        }
    }

    #[test]
    fn text_listener_hears_only_what_was_spoken() {
        use voxolap_speech::render::Renderer;
        let (table, q) = flights_setup();
        let schema = table.schema();
        // A baseline of 0.0237 is *spoken* as "around two point four
        // percent": the text listener's estimates center on the spoken
        // value, not the internal one.
        let speech = Speech::baseline_only(0.0237);
        let renderer = Renderer::new(schema, &q);
        let body = renderer.body_text(&speech);
        let listener =
            SimulatedListener::new(ListenerConfig { noise_rel: 0.001, misunderstands: false }, 3);
        let from_text = listener.estimate_fields_from_text(&body, &q, schema).unwrap();
        for e in &from_text {
            assert!((e - 0.024).abs() < 0.001, "heard 2.4 percent, estimated {e}");
        }
    }

    #[test]
    fn different_seeds_different_noise() {
        let (table, q) = flights_setup();
        let schema = table.schema();
        let speech = winter_speech(schema);
        let a = SimulatedListener::new(ListenerConfig::default(), 1)
            .estimate_fields(&speech, &q, schema);
        let b = SimulatedListener::new(ListenerConfig::default(), 2)
            .estimate_fields(&speech, &q, schema);
        assert_ne!(a, b);
        // Same seed reproduces exactly.
        let a2 = SimulatedListener::new(ListenerConfig::default(), 1)
            .estimate_fields(&speech, &q, schema);
        assert_eq!(a, a2);
    }
}
