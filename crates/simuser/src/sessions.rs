//! Multi-turn exploration scripts for load-testing live sessions.
//!
//! The preference study ([`crate::preference`]) scripts *one* fixed
//! analysis session; the session-fabric load generator needs *thousands*
//! of distinct, seeded, multi-turn scripts whose every utterance the
//! keyword grammar (`voxolap_voice::parser`) actually understands against
//! the flights schema. Each simulated user opens with a breakdown, then
//! wanders: more breakdowns, drill-downs, member filters, aggregate
//! switches, an occasional `clear filters` — the drill-down/roll-up loop
//! the paper describes for its exploratory study (§B.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Opening utterances: every script starts by establishing a breakdown,
/// so the first answer is a real per-group vocalization.
const OPENERS: &[&str] = &[
    "break down by region",
    "break down by season",
    "break down by airline",
    "cancellation probability by region",
    "cancellation probability by season",
];

/// Follow-up utterances, all understood by the keyword grammar against
/// the flights schema (dimension names: *start airport*, *flight date*,
/// *airline*; member mentions become filters).
const FOLLOW_UPS: &[&str] = &[
    "break down by season",
    "break down by region",
    "break down by month",
    "break down by airline",
    "drill down into the start airport",
    "roll up the start airport",
    "only the winter",
    "only the north east",
    "clear filters",
    "how many flights",
    "back to the average",
];

/// Configuration for one fleet of session scripts.
#[derive(Debug, Clone, Copy)]
pub struct ScriptConfig {
    /// Utterances per session (including the opener), before `bye`.
    pub turns: usize,
    /// Fleet-level seed; each session derives its own stream from it.
    pub seed: u64,
}

impl Default for ScriptConfig {
    fn default() -> Self {
        ScriptConfig { turns: 4, seed: 0x5e55_1013 }
    }
}

/// The seeded utterance script of session `index` within the fleet:
/// deterministic per (seed, index), distinct across indices. Every line
/// parses against the flights schema.
pub fn utterance_script(config: ScriptConfig, index: u64) -> Vec<String> {
    // SplitMix-style hash so adjacent indices get unrelated streams.
    let mut z = config.seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    let mut rng = StdRng::seed_from_u64(z ^ (z >> 31));

    let turns = config.turns.max(1);
    let mut script = Vec::with_capacity(turns);
    script.push(OPENERS[rng.gen_range(0..OPENERS.len())].to_string());
    let mut last = usize::MAX;
    for _ in 1..turns {
        // Avoid immediate repeats: a repeated utterance is a no-op turn
        // that would not exercise planning.
        let mut pick = rng.gen_range(0..FOLLOW_UPS.len());
        if pick == last {
            pick = (pick + 1) % FOLLOW_UPS.len();
        }
        last = pick;
        script.push(FOLLOW_UPS[pick].to_string());
    }
    script
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::flights::FlightsConfig;
    use voxolap_voice::parser::parse;

    #[test]
    fn scripts_are_deterministic_and_distinct() {
        let cfg = ScriptConfig { turns: 6, seed: 7 };
        assert_eq!(utterance_script(cfg, 3), utterance_script(cfg, 3));
        let distinct = (0..64)
            .map(|i| utterance_script(cfg, i))
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(distinct > 16, "only {distinct} distinct scripts in 64");
    }

    #[test]
    fn every_utterance_parses_against_the_flights_schema() {
        let schema = FlightsConfig { rows: 10, seed: 1 }.generate().schema().clone();
        let cfg = ScriptConfig { turns: 8, seed: 42 };
        for i in 0..200 {
            for line in utterance_script(cfg, i) {
                assert!(parse(&schema, &line).is_ok(), "unparseable utterance {line:?}");
            }
        }
    }
}
