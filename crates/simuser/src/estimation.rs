//! The estimation study (paper Tables 6 and 14).
//!
//! The paper asked eight crowd workers to estimate all 20 result fields of
//! a flights query after listening to the speeches the three approaches
//! generated (Table 5), then reports each worker's mean absolute error in
//! percentage points (Table 6) and the share of correctly identified
//! relative tendencies among all field pairs (Table 14).
//!
//! We reproduce the study with simulated listeners: six model followers
//! with small estimate noise (the paper's users 2–7 landed within ~1 % of
//! the belief means) and two "increase-to" misunderstanders (the paper's
//! users 1 and 8, placed at the same positions). Listeners receive the
//! **rendered text** and re-parse it, so verbalization round-off reaches
//! them exactly as it reached the crowd workers.

use voxolap_data::schema::{MeasureUnit, Schema};
use voxolap_data::Table;
use voxolap_engine::exact::evaluate;
use voxolap_engine::query::Query;
use voxolap_speech::ast::Speech;
use voxolap_speech::render::Renderer;

use crate::listener::{ListenerConfig, SimulatedListener};

/// Configuration of the estimation study.
#[derive(Debug, Clone, Copy)]
pub struct EstimationStudy {
    /// Number of simulated users (paper: 8, after dropping a duplicate).
    pub n_users: usize,
    /// Relative noise of the model-following listeners.
    pub noise_rel: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EstimationStudy {
    fn default() -> Self {
        EstimationStudy { n_users: 8, noise_rel: 0.05, seed: 42 }
    }
}

/// One user's results across the compared approaches.
#[derive(Debug, Clone)]
pub struct UserRow {
    /// 1-based user number (users 1 and 8 misunderstand, as in the paper).
    pub user: usize,
    /// Mean absolute error per approach, in measure units scaled for
    /// display: percentage points for fractions, K$ for dollars.
    pub abs_err: Vec<f64>,
    /// Percentage of correctly identified relative tendencies per approach.
    pub tendency_pct: Vec<f64>,
}

/// Study output.
#[derive(Debug, Clone)]
pub struct EstimationResult {
    /// Approach names, aligned with the per-user vectors.
    pub approaches: Vec<String>,
    /// One row per user.
    pub per_user: Vec<UserRow>,
    /// Median absolute error per approach (the paper's summary row).
    pub median_abs_err: Vec<f64>,
    /// Mean tendency accuracy per approach (Table 14's "Total" row).
    pub total_tendency_pct: Vec<f64>,
}

/// Share of field pairs whose relative order the estimates preserve
/// (paper's tendency criterion: `e1 < e2 ∧ v1 < v2` or `e1 ≥ e2 ∧ v1 ≥ v2`).
pub fn tendency_accuracy(estimates: &[f64], actuals: &[f64]) -> f64 {
    let mut total = 0usize;
    let mut correct = 0usize;
    for i in 0..actuals.len() {
        for j in (i + 1)..actuals.len() {
            if !(actuals[i].is_finite() && actuals[j].is_finite()) {
                continue;
            }
            total += 1;
            let e_less = estimates[i] < estimates[j];
            let v_less = actuals[i] < actuals[j];
            if e_less == v_less {
                correct += 1;
            }
        }
    }
    if total == 0 {
        return 0.0;
    }
    100.0 * correct as f64 / total as f64
}

impl EstimationStudy {
    /// Run the study for a set of (approach name, speech) pairs on one
    /// query.
    pub fn run(
        &self,
        table: &Table,
        query: &Query,
        speeches: &[(String, Speech)],
    ) -> EstimationResult {
        let schema: &Schema = table.schema();
        let exact = evaluate(query, table);
        let actuals = exact.values();
        // Display scale: percentage points for fraction measures.
        let scale = match schema.measure(query.measure()).unit {
            MeasureUnit::Fraction => 100.0,
            _ => 1.0,
        };

        let mut per_user = Vec::with_capacity(self.n_users);
        for u in 1..=self.n_users {
            // Users 1 and n misunderstand, mirroring the paper's outliers.
            let misunderstands = u == 1 || u == self.n_users;
            let listener = SimulatedListener::new(
                ListenerConfig { noise_rel: self.noise_rel, misunderstands },
                self.seed.wrapping_add(u as u64 * 7919),
            );
            let mut abs_err = Vec::new();
            let mut tendency = Vec::new();
            let renderer = Renderer::new(schema, query);
            for (_, speech) in speeches {
                // Listeners hear the rendered text, not the internal AST.
                let body = renderer.body_text(speech);
                let estimates = listener
                    .estimate_fields_from_text(&body, query, schema)
                    .unwrap_or_else(|_| listener.estimate_fields(speech, query, schema));
                let mut err_sum = 0.0;
                let mut n = 0usize;
                for (e, a) in estimates.iter().zip(&actuals) {
                    if a.is_finite() {
                        err_sum += (e - a).abs() * scale;
                        n += 1;
                    }
                }
                abs_err.push(if n == 0 { 0.0 } else { err_sum / n as f64 });
                tendency.push(tendency_accuracy(&estimates, &actuals));
            }
            per_user.push(UserRow { user: u, abs_err, tendency_pct: tendency });
        }

        let n_app = speeches.len();
        let median_abs_err = (0..n_app)
            .map(|a| {
                let mut v: Vec<f64> = per_user.iter().map(|r| r.abs_err[a]).collect();
                v.sort_by(f64::total_cmp);
                let mid = v.len() / 2;
                if v.len().is_multiple_of(2) {
                    (v[mid - 1] + v[mid]) / 2.0
                } else {
                    v[mid]
                }
            })
            .collect();
        let total_tendency_pct = (0..n_app)
            .map(|a| {
                per_user.iter().map(|r| r.tendency_pct[a]).sum::<f64>() / per_user.len() as f64
            })
            .collect();

        EstimationResult {
            approaches: speeches.iter().map(|(n, _)| n.clone()).collect(),
            per_user,
            median_abs_err,
            total_tendency_pct,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::flights::FlightsConfig;
    use voxolap_data::DimId;
    use voxolap_engine::query::AggFct;
    use voxolap_speech::ast::{Baseline, Change, Direction, Predicate, Refinement};

    fn setup() -> (voxolap_data::Table, Query) {
        let table = FlightsConfig { rows: 60_000, seed: 42 }.generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        (table, q)
    }

    /// A speech close to the paper's holistic one: baseline ~2%, Winter
    /// +100%, North East +100%.
    fn good_speech(schema: &Schema, baseline: f64) -> Speech {
        let ne = schema.dimension(DimId(0)).member_by_phrase("the North East").unwrap();
        let winter = schema.dimension(DimId(1)).member_by_phrase("Winter").unwrap();
        Speech {
            baseline: Baseline::point(baseline),
            refinements: vec![
                Refinement {
                    predicates: vec![Predicate { dim: DimId(0), member: ne }],
                    change: Change { direction: Direction::Increase, percent: 100 },
                },
                Refinement {
                    predicates: vec![Predicate { dim: DimId(1), member: winter }],
                    change: Change { direction: Direction::Increase, percent: 100 },
                },
            ],
        }
    }

    /// A speech like the paper's unmerged one: wrong baseline, wrong region.
    fn bad_speech(schema: &Schema) -> Speech {
        let west = schema.dimension(DimId(0)).member_by_phrase("the West").unwrap();
        let winter = schema.dimension(DimId(1)).member_by_phrase("Winter").unwrap();
        Speech {
            baseline: Baseline::point(0.12),
            refinements: vec![
                Refinement {
                    predicates: vec![Predicate { dim: DimId(0), member: west }],
                    change: Change { direction: Direction::Increase, percent: 100 },
                },
                Refinement {
                    predicates: vec![Predicate { dim: DimId(1), member: winter }],
                    change: Change { direction: Direction::Increase, percent: 50 },
                },
            ],
        }
    }

    #[test]
    fn good_speeches_yield_lower_errors_than_bad() {
        let (table, q) = setup();
        let schema = table.schema();
        let speeches = vec![
            ("holistic".to_string(), good_speech(schema, 0.015)),
            ("unmerged".to_string(), bad_speech(schema)),
        ];
        let result = EstimationStudy::default().run(&table, &q, &speeches);
        assert!(
            result.median_abs_err[0] < result.median_abs_err[1],
            "good {} < bad {}",
            result.median_abs_err[0],
            result.median_abs_err[1]
        );
        // Paper magnitudes: good speeches give ~1 percentage point error,
        // bad ones give ~12.
        assert!(result.median_abs_err[0] < 4.0, "good error {}", result.median_abs_err[0]);
        assert!(result.median_abs_err[1] > 5.0, "bad error {}", result.median_abs_err[1]);
    }

    #[test]
    fn misunderstanders_are_outliers() {
        let (table, q) = setup();
        let schema = table.schema();
        let speeches = vec![("holistic".to_string(), good_speech(schema, 0.015))];
        let result = EstimationStudy::default().run(&table, &q, &speeches);
        let first = result.per_user.first().unwrap().abs_err[0];
        let last = result.per_user.last().unwrap().abs_err[0];
        let middle: f64 = result.per_user[1..7].iter().map(|r| r.abs_err[0]).sum::<f64>() / 6.0;
        assert!(first > 5.0 * middle, "user 1 is an outlier: {first} vs {middle}");
        assert!(last > 5.0 * middle, "user 8 is an outlier: {last} vs {middle}");
    }

    #[test]
    fn tendency_accuracy_counts_ordered_pairs() {
        let actuals = [1.0, 2.0, 3.0];
        assert_eq!(tendency_accuracy(&[1.0, 2.0, 3.0], &actuals), 100.0);
        assert_eq!(tendency_accuracy(&[3.0, 2.0, 1.0], &actuals), 0.0);
        // One inversion out of three pairs.
        let acc = tendency_accuracy(&[2.0, 1.0, 3.0], &actuals);
        assert!((acc - 100.0 * 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn tendencies_beat_chance_for_truthful_speeches() {
        let (table, q) = setup();
        let schema = table.schema();
        let speeches = vec![("holistic".to_string(), good_speech(schema, 0.015))];
        let result = EstimationStudy::default().run(&table, &q, &speeches);
        // Paper Table 14: ~70% for good speeches.
        assert!(
            result.total_tendency_pct[0] > 55.0,
            "tendency accuracy {}",
            result.total_tendency_pct[0]
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let (table, q) = setup();
        let schema = table.schema();
        let speeches = vec![("h".to_string(), good_speech(schema, 0.015))];
        let study = EstimationStudy { seed: 3, ..EstimationStudy::default() };
        let a = study.run(&table, &q, &speeches);
        let b = study.run(&table, &q, &speeches);
        assert_eq!(a.median_abs_err, b.median_abs_err);
    }
}
