//! Fact extraction from vocalizations (paper Table 7 analogue).
//!
//! Table 7 shows facts crowd workers stated after voice-based analysis,
//! annotated with the dimensions each fact refers to. We regenerate such
//! facts mechanically from the structured speeches our system produces:
//! every refinement becomes a claim about its predicate dimensions, and
//! the baseline becomes an overall claim — the same information a careful
//! listener could state after a session.

use voxolap_core::outcome::VocalizationOutcome;
use voxolap_data::schema::Schema;
use voxolap_engine::query::Query;
use voxolap_speech::ast::Direction;
use voxolap_speech::verbalize::verbalize_value;

/// One extracted fact with the dimensions it refers to.
#[derive(Debug, Clone)]
pub struct Fact {
    /// Dimension names the fact involves (Table 7's "Dimensions" column).
    pub dimensions: Vec<String>,
    /// The fact statement.
    pub text: String,
}

/// Derive facts from one vocalization outcome.
///
/// Returns one overall fact (from the baseline) plus one per refinement.
/// Outcomes without a structured speech (e.g. the prior baseline) yield no
/// facts.
pub fn extract_facts(outcome: &VocalizationOutcome, query: &Query, schema: &Schema) -> Vec<Fact> {
    let Some(speech) = &outcome.speech else {
        return Vec::new();
    };
    let mut facts = Vec::new();

    let grouped_dims: Vec<String> =
        query.group_by().iter().map(|&(d, _)| schema.dimension(d).name().to_string()).collect();
    let measure = schema.measure(query.measure());
    let agg_name = voxolap_speech::render::aggregate_phrase(query.fct(), &measure.name);
    let unit = voxolap_speech::render::render_unit(query.fct(), measure.unit);
    facts.push(Fact {
        dimensions: grouped_dims,
        text: format!(
            "{} is the typical {}.",
            verbalize_value(speech.baseline.value, unit),
            agg_name
        ),
    });

    for r in &speech.refinements {
        let dims: Vec<String> =
            r.predicates.iter().map(|p| schema.dimension(p.dim).name().to_string()).collect();
        let scope: Vec<String> = r
            .predicates
            .iter()
            .map(|p| schema.dimension(p.dim).predicate_phrase(p.member))
            .collect();
        let verb = match r.change.direction {
            Direction::Increase => "higher",
            Direction::Decrease => "lower",
        };
        facts.push(Fact {
            dimensions: dims,
            text: format!(
                "The {} is about {} percent {} than typical for {}.",
                agg_name,
                r.change.percent,
                verb,
                scope.join(" and ")
            ),
        });
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxolap_core::approach::Vocalizer;
    use voxolap_core::holistic::{Holistic, HolisticConfig};
    use voxolap_core::voice::InstantVoice;
    use voxolap_data::dimension::LevelId;
    use voxolap_data::flights::FlightsConfig;
    use voxolap_data::DimId;
    use voxolap_engine::query::AggFct;

    #[test]
    fn facts_cover_baseline_and_refinements() {
        let table = FlightsConfig { rows: 20_000, seed: 42 }.generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(0), LevelId(1))
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        let holistic = Holistic::new(HolisticConfig {
            min_samples_per_sentence: 600,
            ..HolisticConfig::default()
        });
        let mut voice = InstantVoice::default();
        let outcome = holistic.vocalize(&table, &q, &mut voice);
        let facts = extract_facts(&outcome, &q, table.schema());
        assert!(!facts.is_empty());
        assert!(facts[0].text.contains("typical average cancellation probability"));
        // Every refinement fact names the dimensions it refers to.
        for f in &facts[1..] {
            assert!(!f.dimensions.is_empty());
            assert!(f.text.contains("than typical for"));
        }
    }

    #[test]
    fn prior_outcomes_yield_no_structured_facts() {
        use voxolap_core::prior::PriorGreedy;
        let table = FlightsConfig { rows: 2_000, seed: 42 }.generate();
        let q = Query::builder(AggFct::Avg)
            .group_by(DimId(1), LevelId(1))
            .build(table.schema())
            .unwrap();
        let mut voice = InstantVoice::default();
        let outcome = PriorGreedy.vocalize(&table, &q, &mut voice);
        assert!(extract_facts(&outcome, &q, table.schema()).is_empty());
    }
}
