//! Belief-model benchmarks verifying Lemma A.2: evaluating a speech's
//! belief for **one** aggregate costs `O(k)` in the number of fragments —
//! independent of the number of result aggregates — while exact quality
//! (Definition 2.2) scales with the full result size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use voxolap_belief::model::BeliefModel;
use voxolap_belief::quality::speech_quality;
use voxolap_bench::{flights_table, region_season_query, state_month_query};
use voxolap_engine::exact::evaluate;
use voxolap_speech::ast::{Baseline, Change, Direction, Predicate, Refinement, Speech};
use voxolap_speech::scope::CompiledSpeech;

/// Build a speech with `k` refinements cycling over region members.
fn speech_with_k(table: &voxolap_data::Table, k: usize) -> Speech {
    let airport = table.schema().dimension(voxolap_data::DimId(0));
    let regions = airport.level_members(voxolap_data::dimension::LevelId(1));
    Speech {
        baseline: Baseline::point(0.02),
        refinements: (0..k)
            .map(|i| Refinement {
                predicates: vec![Predicate {
                    dim: voxolap_data::DimId(0),
                    member: regions[i % regions.len()],
                }],
                change: Change { direction: Direction::Increase, percent: 20 + 10 * i as u32 },
            })
            .collect(),
    }
}

fn single_aggregate_belief(c: &mut Criterion) {
    let table = flights_table(5_000);
    let query = region_season_query(&table);
    let model = BeliefModel::new(0.01);
    let mut group = c.benchmark_group("belief_single_aggregate");
    for k in [1usize, 2, 4, 8] {
        let speech = speech_with_k(&table, k);
        let compiled = CompiledSpeech::compile(&speech, query.layout(), table.schema());
        group.bench_with_input(BenchmarkId::from_parameter(k), &compiled, |b, cs| {
            b.iter(|| black_box(model.reward(cs, 7, query.layout(), 0.021)))
        });
    }
    group.finish();
}

fn exact_quality(c: &mut Criterion) {
    let table = flights_table(20_000);
    let mut group = c.benchmark_group("exact_quality");
    for (name, query) in
        [("20_fields", region_season_query(&table)), ("288_fields", state_month_query(&table))]
    {
        let exact = evaluate(&query, &table);
        let model = BeliefModel::from_overall_mean(exact.grand_mean().abs().max(0.001));
        let speech = speech_with_k(&table, 2);
        let compiled = CompiledSpeech::compile(&speech, query.layout(), table.schema());
        group.bench_function(name, |b| {
            b.iter(|| black_box(speech_quality(&compiled, &model, &exact, query.layout())))
        });
    }
    group.finish();
}

criterion_group!(benches, single_aggregate_belief, exact_quality);
criterion_main!(benches);
