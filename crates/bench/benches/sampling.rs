//! Sample-cache micro-benchmarks: row-observation throughput (the rate the
//! paper's "rows produced at a sufficiently high frequency" assumption
//! depends on), fixed-size resampling, and estimate construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use voxolap_bench::{flights_table, region_season_query};
use voxolap_engine::cache::{ResampleScratch, SampleCache};

fn cache_benches(c: &mut Criterion) {
    let table = flights_table(100_000);
    let query = region_season_query(&table);
    let layout = query.layout();

    // Pre-materialize rows so the bench isolates cache cost.
    let rows: Vec<(Option<u32>, f64)> = {
        let mut scan = table.scan_shuffled(7);
        let mut out = Vec::new();
        while let Some(r) = scan.next_row() {
            out.push((layout.agg_of_row(r.members), r.value));
        }
        out
    };

    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(rows.len() as u64));
    group.bench_function("observe_100k_rows", |b| {
        b.iter(|| {
            let mut cache = SampleCache::new(query.n_aggregates(), table.row_count() as u64);
            for &(agg, v) in &rows {
                cache.observe(agg, v);
            }
            black_box(cache.nr_read())
        })
    });
    group.finish();

    // Resample/estimate on a filled cache.
    let mut cache = SampleCache::new(query.n_aggregates(), table.row_count() as u64);
    for &(agg, v) in &rows {
        cache.observe(agg, v);
    }
    let mut group = c.benchmark_group("estimate");
    for resample in [10usize, 100] {
        let cache = cache.clone().with_resample_size(resample);
        // Per-call allocation (`estimate` builds fresh index/value buffers)
        // versus the planner's hot path (`estimate_with` reuses a
        // ResampleScratch across calls).
        group.bench_with_input(BenchmarkId::new("resample_alloc", resample), &cache, |b, cache| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let agg =
                    cache.pick_aggregate(voxolap_engine::query::AggFct::Avg, &mut rng).unwrap();
                black_box(cache.estimate(agg, &mut rng))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("resample_scratch", resample),
            &cache,
            |b, cache| {
                let mut rng = StdRng::seed_from_u64(3);
                let mut scratch = ResampleScratch::new();
                b.iter(|| {
                    let agg =
                        cache.pick_aggregate(voxolap_engine::query::AggFct::Avg, &mut rng).unwrap();
                    black_box(cache.estimate_with(agg, &mut rng, &mut scratch))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, cache_benches);
criterion_main!(benches);
