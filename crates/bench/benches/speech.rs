//! Speech-layer micro-benchmarks: rendering (per-sentence cost in the
//! pipelined read-out path) and candidate enumeration (the per-node cost of
//! tree expansion, which multiplies into Theorem A.4's `O(m^k)`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use voxolap_bench::{flights_table, region_season_query, state_month_query};
use voxolap_speech::ast::{Baseline, Change, Direction, Predicate, Refinement, Speech};
use voxolap_speech::candidates::{CandidateConfig, CandidateGenerator};
use voxolap_speech::render::Renderer;

fn render(c: &mut Criterion) {
    let table = flights_table(1_000);
    let query = region_season_query(&table);
    let schema = table.schema();
    let renderer = Renderer::new(schema, &query);
    let airport = schema.dimension(voxolap_data::DimId(0));
    let ne = airport.member_by_phrase("the North East").unwrap();
    let speech = Speech {
        baseline: Baseline::point(0.02),
        refinements: vec![Refinement {
            predicates: vec![Predicate { dim: voxolap_data::DimId(0), member: ne }],
            change: Change { direction: Direction::Increase, percent: 100 },
        }],
    };
    c.bench_function("render_full_speech", |b| b.iter(|| black_box(renderer.speech_text(&speech))));
    c.bench_function("render_preamble", |b| b.iter(|| black_box(renderer.preamble())));
}

fn candidates(c: &mut Criterion) {
    let table = flights_table(1_000);
    let mut group = c.benchmark_group("candidate_enumeration");
    for (name, query) in
        [("region_season", region_season_query(&table)), ("state_month", state_month_query(&table))]
    {
        let generator = CandidateGenerator::new(table.schema(), &query, CandidateConfig::default());
        let prefix = Speech::baseline_only(0.02);
        group.bench_with_input(BenchmarkId::from_parameter(name), &generator, |b, generator| {
            b.iter(|| black_box(generator.refinements(&prefix).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, render, candidates);
criterion_main!(benches);
