//! End-to-end planner latency (Figure 3, left): how long each approach
//! takes from query submission until voice output can start.
//!
//! The unmerged variant runs with an *iteration* budget here (its wall-clock
//! 500 ms budget would swamp Criterion); the experiment binary `fig3` uses
//! the paper's wall-clock budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use voxolap_bench::{experiment_candidates, fig3_queries, flights_table};
use voxolap_core::approach::Vocalizer;
use voxolap_core::holistic::{Holistic, HolisticConfig};
use voxolap_core::optimal::{Optimal, OptimalConfig};
use voxolap_core::unmerged::{SamplingBudget, Unmerged, UnmergedConfig};
use voxolap_core::voice::InstantVoice;

fn planner_latency(c: &mut Criterion) {
    let table = flights_table(50_000);
    let queries = fig3_queries(&table);
    let mut group = c.benchmark_group("planner");
    group.sample_size(10);

    for label in [",RD", "N,DA"] {
        let query = queries.iter().find(|(l, _)| l == label).map(|(_, q)| q.clone()).unwrap();

        let optimal = Optimal::new(OptimalConfig {
            candidates: experiment_candidates(),
            max_tree_nodes: 120_000,
            ..OptimalConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("optimal", label), &query, |b, q| {
            b.iter(|| {
                let mut voice = InstantVoice::default();
                black_box(optimal.vocalize(&table, q, &mut voice))
            })
        });

        let holistic = Holistic::new(HolisticConfig {
            candidates: experiment_candidates(),
            min_samples_per_sentence: 256,
            max_tree_nodes: 120_000,
            ..HolisticConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("holistic", label), &query, |b, q| {
            b.iter(|| {
                let mut voice = InstantVoice::default();
                black_box(holistic.vocalize(&table, q, &mut voice))
            })
        });

        let unmerged = Unmerged::new(UnmergedConfig {
            candidates: experiment_candidates(),
            budget: SamplingBudget::Iterations(1_500),
            max_tree_nodes: 120_000,
            ..UnmergedConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("unmerged", label), &query, |b, q| {
            b.iter(|| {
                let mut voice = InstantVoice::default();
                black_box(unmerged.vocalize(&table, q, &mut voice))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, planner_latency);
criterion_main!(benches);
