//! UCT search-tree benchmarks verifying the paper's complexity results:
//!
//! * Theorem A.4 — full tree expansion is `O(m^k)` (preprocessing);
//! * Theorem A.3 — one sampling iteration is `O(k·m)`, i.e. grows
//!   linearly in depth and branching, never with total tree size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use voxolap_mcts::Tree;

/// Build a uniform tree with branching `m` and depth `k`.
fn uniform_tree(m: usize, k: usize) -> Tree<u32> {
    let mut tree = Tree::new(0u32);
    let mut frontier = vec![Tree::<u32>::ROOT];
    for _ in 0..k {
        let mut next = Vec::with_capacity(frontier.len() * m);
        for &n in &frontier {
            for i in 0..m {
                next.push(tree.add_child(n, i as u32));
            }
        }
        frontier = next;
    }
    tree
}

fn expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_expand");
    for (m, k) in [(10usize, 2usize), (30, 2), (10, 3)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{m}_k{k}")),
            &(m, k),
            |b, &(m, k)| b.iter(|| black_box(uniform_tree(m, k).node_count())),
        );
    }
    group.finish();
}

fn sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_sample");
    // Sampling cost must track k*m, not total node count: compare trees
    // with equal k*m but very different sizes.
    for (m, k) in [(10usize, 2usize), (30, 2), (10, 3), (30, 3)] {
        let tree = uniform_tree(m, k);
        // Pre-visit so the UCT formula (not unvisited-priority) dominates.
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..tree.node_count() {
            tree.sample(Tree::<u32>::ROOT, &mut rng, |&d| d as f64 / 30.0);
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{m}_k{k}_nodes{}", tree.node_count())),
            &(),
            |b, _| {
                let mut rng = StdRng::seed_from_u64(2);
                b.iter(|| black_box(tree.sample(Tree::<u32>::ROOT, &mut rng, |&d| d as f64 / 30.0)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, expansion, sampling);
criterion_main!(benches);
