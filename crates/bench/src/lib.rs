//! # voxolap-bench
//!
//! Experiment harnesses regenerating every table and figure of the paper's
//! evaluation (§5 and Appendix B), plus Criterion micro-benchmarks.
//!
//! Each `expX` binary prints the rows/series the corresponding paper
//! artifact reports:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig3` | Figure 3 — latency and speech quality per approach |
//! | `tab2_tab10` | Tables 2 & 10 — pilot study on implicit assumptions |
//! | `tab5` | Table 5 — speeches for the region × season query |
//! | `tab6_tab14` | Tables 6 & 14 — estimation errors and tendencies |
//! | `tab7` | Table 7 — facts extracted in exploratory sessions |
//! | `tab8_tab9` | Tables 8 & 9 — preferences and speech lengths |
//! | `tab11` | Table 11 — dataset statistics |
//! | `tab12` | Table 12 — full region × season result |
//! | `tab13` | Table 13 — speeches for a large (hundreds of fields) query |
//! | `all_experiments` | Everything above, in `EXPERIMENTS.md` format |
//!
//! Run with `--release`; the optimal approach exhaustively scores large
//! speech trees by design.

use std::time::Duration;

use voxolap_belief::model::BeliefModel;
use voxolap_belief::quality::speech_quality;
use voxolap_core::holistic::{Holistic, HolisticConfig};
use voxolap_core::optimal::{Optimal, OptimalConfig};
use voxolap_core::outcome::VocalizationOutcome;
use voxolap_core::unmerged::{SamplingBudget, Unmerged, UnmergedConfig};
use voxolap_data::dimension::LevelId;
use voxolap_data::flights::FlightsConfig;
use voxolap_data::salary::SalaryConfig;
use voxolap_data::{DimId, Table};
use voxolap_engine::exact::evaluate;
use voxolap_engine::query::{AggFct, Query};
use voxolap_speech::candidates::CandidateConfig;
use voxolap_speech::constraints::SpeechConstraints;
use voxolap_speech::scope::CompiledSpeech;

pub mod experiments;

/// Default flights scale for experiments (the paper's full 5.3 M rows are
/// available via `--rows 5300000`; 200 k preserves every group's statistics
/// at a fraction of the generation time).
pub const DEFAULT_FLIGHTS_ROWS: usize = 200_000;

/// Paper-scale flights row count (§5 of the paper evaluates 5.3 M rows).
/// `--scale-rows` accepts anything from here up to ~50 M for synthetic
/// scale-up sweeps.
pub const PAPER_FLIGHTS_ROWS: usize = 5_300_000;

/// Resolve the dataset size for a bench binary: `--scale-rows N` (the
/// synthetic paper-scale sweep) takes precedence over `--rows N`.
pub fn arg_rows(default: usize) -> usize {
    match arg_usize("--scale-rows", 0) {
        0 => arg_usize("--rows", default),
        scaled => scaled,
    }
}

/// Host facts stamped into every `BENCH_*.json` header so the artifacts
/// are self-describing: scaling numbers measured on a 1-core CI container
/// and on a 16-core workstation are meaningless to compare without them.
#[derive(Debug, Clone, Copy)]
pub struct HostInfo {
    /// `std::thread::available_parallelism` at measurement time.
    pub cores: usize,
    /// Total physical memory in bytes (0 where undetectable).
    pub ram_bytes: u64,
}

impl HostInfo {
    /// Detect the current host.
    pub fn detect() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        HostInfo { cores, ram_bytes: total_ram_bytes().unwrap_or(0) }
    }
}

/// Total physical memory from `/proc/meminfo` (`None` off Linux).
fn total_ram_bytes() -> Option<u64> {
    let meminfo = std::fs::read_to_string("/proc/meminfo").ok()?;
    let kb: u64 = meminfo
        .lines()
        .find(|l| l.starts_with("MemTotal:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// `true` when `--json` was passed (experiment binaries emit machine-
/// readable records instead of markdown).
pub fn arg_json() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Parse `--key value` style arguments with a default.
pub fn arg_usize(key: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Generate the flights table at the given scale.
pub fn flights_table(rows: usize) -> Table {
    FlightsConfig { rows, seed: 42 }.generate()
}

/// Generate the salary table at paper scale.
pub fn salary_table() -> Table {
    SalaryConfig::paper_scale().generate()
}

/// The flights region × season query behind Tables 5, 6, 12, and 14.
pub fn region_season_query(table: &Table) -> Query {
    Query::builder(AggFct::Avg)
        .group_by(DimId(0), LevelId(1))
        .group_by(DimId(1), LevelId(1))
        .build(table.schema())
        .expect("region x season query is valid")
}

/// The large query behind Table 13 (hundreds of result fields):
/// state × month.
pub fn state_month_query(table: &Table) -> Query {
    Query::builder(AggFct::Avg)
        .group_by(DimId(0), LevelId(2))
        .group_by(DimId(1), LevelId(2))
        .build(table.schema())
        .expect("state x month query is valid")
}

/// The Figure 3 query set, in the paper's `X,Y` naming: `X` a filter
/// (`∅`, `N` = the North East, `W` = Winter), `Y` the breakdown dimensions
/// (`R` region, `D` date at season granularity, `A` airline).
pub fn fig3_queries(table: &Table) -> Vec<(String, Query)> {
    let schema = table.schema();
    let airport = schema.dimension(DimId(0));
    let date = schema.dimension(DimId(1));
    let ne = airport.member_by_phrase("the North East").expect("NE exists");
    let winter = date.member_by_phrase("Winter").expect("Winter exists");

    let dims = |label: &str| -> Vec<(DimId, LevelId)> {
        label
            .chars()
            .map(|c| match c {
                'R' => (DimId(0), LevelId(1)),
                'D' => (DimId(1), LevelId(1)),
                'A' => (DimId(2), LevelId(1)),
                other => panic!("unknown breakdown dimension {other}"),
            })
            .collect()
    };

    type QuerySpec = (&'static str, Option<(DimId, voxolap_data::MemberId)>, &'static str);
    let specs: [QuerySpec; 12] = [
        (",R", None, "R"),
        (",D", None, "D"),
        (",A", None, "A"),
        (",RD", None, "RD"),
        (",RA", None, "RA"),
        (",DA", None, "DA"),
        (",RDA", None, "RDA"),
        ("N,D", Some((DimId(0), ne)), "D"),
        ("N,A", Some((DimId(0), ne)), "A"),
        ("N,DA", Some((DimId(0), ne)), "DA"),
        ("W,R", Some((DimId(1), winter)), "R"),
        ("W,RA", Some((DimId(1), winter)), "RA"),
    ];

    specs
        .into_iter()
        .map(|(label, filter, breakdown)| {
            let mut b = Query::builder(AggFct::Avg);
            if let Some((d, m)) = filter {
                b = b.filter(d, m);
            }
            for (d, l) in dims(breakdown) {
                b = b.group_by(d, l);
            }
            (label.to_string(), b.build(schema).expect("fig3 query is valid"))
        })
        .collect()
}

/// The shared candidate space for approach comparisons — identical across
/// approaches so the comparison is about *evaluation strategy*, not search
/// space.
pub fn experiment_candidates() -> CandidateConfig {
    CandidateConfig { quantifiers: vec![5, 20, 50, 100, 200], ..CandidateConfig::default() }
}

/// Experiment-calibrated approach constructors.
pub fn experiment_holistic(seed: u64) -> Holistic {
    Holistic::new(HolisticConfig {
        candidates: experiment_candidates(),
        seed,
        max_tree_nodes: 300_000,
        // The flights measure is a 0/1 flag with a ~1.5% positive rate:
        // 10-row resamples are almost always all-zero and carry no signal.
        // The harness raises the fixed resample size so per-aggregate
        // estimates resolve the rate at one significant digit (see
        // DESIGN.md's substitution notes).
        resample_size: 400,
        ..HolisticConfig::default()
    })
}

/// The unmerged approach at the paper's 500 ms budget.
pub fn experiment_unmerged(seed: u64) -> Unmerged {
    Unmerged::new(UnmergedConfig {
        candidates: experiment_candidates(),
        seed,
        budget: SamplingBudget::WallClock(Duration::from_millis(500)),
        max_tree_nodes: 300_000,
        resample_size: 400,
        ..UnmergedConfig::default()
    })
}

/// The optimal approach over the same candidate space.
pub fn experiment_optimal() -> Optimal {
    Optimal::new(OptimalConfig {
        candidates: experiment_candidates(),
        max_tree_nodes: 300_000,
        constraints: SpeechConstraints { max_chars: 300, max_refinements: 2 },
        ..OptimalConfig::default()
    })
}

/// Exact speech quality of an outcome's speech (Definition 2.2), measured
/// against the full data set with the paper's σ = grand-mean / 2. Returns
/// 0 for outcomes without a structured speech.
pub fn outcome_quality(outcome: &VocalizationOutcome, table: &Table, query: &Query) -> f64 {
    let Some(speech) = &outcome.speech else {
        return 0.0;
    };
    let exact = evaluate(query, table);
    let grand = exact.grand_mean();
    if !grand.is_finite() || grand == 0.0 {
        return 0.0;
    }
    let model = BeliefModel::from_overall_mean(grand);
    let compiled = CompiledSpeech::compile(speech, query.layout(), table.schema());
    speech_quality(&compiled, &model, &exact, query.layout())
}

/// Render a GitHub-markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_query_set_shapes() {
        let table = flights_table(2_000);
        let queries = fig3_queries(&table);
        assert_eq!(queries.len(), 12);
        let by_label =
            |l: &str| queries.iter().find(|(label, _)| label == l).map(|(_, q)| q).unwrap();
        assert_eq!(by_label(",R").n_aggregates(), 5);
        assert_eq!(by_label(",RDA").n_aggregates(), 5 * 4 * 14);
        assert_eq!(by_label("N,DA").n_aggregates(), 4 * 14);
        assert_eq!(by_label("W,R").n_aggregates(), 5);
    }

    #[test]
    fn canonical_queries() {
        let table = flights_table(2_000);
        assert_eq!(region_season_query(&table).n_aggregates(), 20);
        assert_eq!(state_month_query(&table).n_aggregates(), 24 * 12);
    }

    #[test]
    fn markdown_renders() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
    }

    #[test]
    fn quality_of_outcomes_is_comparable() {
        use voxolap_core::approach::Vocalizer;
        use voxolap_core::voice::InstantVoice;
        let table = flights_table(20_000);
        let q = region_season_query(&table);
        let mut voice = InstantVoice::default();
        let optimal = experiment_optimal().vocalize(&table, &q, &mut voice);
        let quality = outcome_quality(&optimal, &table, &q);
        assert!(quality > 0.0 && quality <= 1.0, "quality {quality}");
    }
}
