//! Data-scale sweep (extends Figure 3): latency and quality of each
//! approach as the flights dataset grows toward the paper's 5.3 M rows.
//!
//! Expected shape: Holistic stays sub-millisecond at every scale because
//! nothing it does before the first spoken word depends on data size;
//! Unmerged is pinned at its budget while its quality degrades with scale
//! (500 ms covers a shrinking fraction of the data); Optimal pays a full
//! scan plus exhaustive plan scoring — for this narrow 20-aggregate query
//! the scoring term dominates, so its latency is large but flat; the
//! data-size term shows on wide queries (Figure 3's `,RDA` at 11 s).

use voxolap_core::approach::Vocalizer;
use voxolap_core::voice::{InstantVoice, VirtualVoice};

use crate::{
    experiment_holistic, experiment_optimal, experiment_unmerged, flights_table, markdown_table,
    region_season_query,
};

/// Run the sweep over the given row counts.
pub fn run(row_counts: &[usize], seed: u64) -> String {
    let mut rows_md = Vec::new();
    for &rows in row_counts {
        eprintln!("scaling: {rows} rows...");
        let table = flights_table(rows);
        let query = region_season_query(&table);

        let mut v = InstantVoice::default();
        let o_opt = experiment_optimal().vocalize(&table, &query, &mut v);
        let mut v = VirtualVoice::new(600.0);
        let o_hol = experiment_holistic(seed).vocalize(&table, &query, &mut v);
        let mut v = InstantVoice::default();
        let o_unm = experiment_unmerged(seed).vocalize(&table, &query, &mut v);

        rows_md.push(vec![
            rows.to_string(),
            format!("{:.1}", o_opt.latency.as_secs_f64() * 1e3),
            format!("{:.1}", o_hol.latency.as_secs_f64() * 1e3),
            format!("{:.1}", o_unm.latency.as_secs_f64() * 1e3),
            format!("{:.3}", crate::outcome_quality(&o_opt, &table, &query)),
            format!("{:.3}", crate::outcome_quality(&o_hol, &table, &query)),
            format!("{:.3}", crate::outcome_quality(&o_unm, &table, &query)),
        ]);
    }
    format!(
        "### Data-scale sweep (region x season query)\n\n{}",
        markdown_table(
            &[
                "rows",
                "latency optimal",
                "latency holistic",
                "latency unmerged",
                "quality optimal",
                "quality holistic",
                "quality unmerged",
            ],
            &rows_md,
        )
    )
}
