//! Figure 3: latency and speech quality of the vocalization variants.
//!
//! For each query of the Figure 3 set, runs Optimal, Holistic, and
//! Unmerged on the flights dataset and reports (a) latency — time from
//! query submission until voice output starts — and (b) exact speech
//! quality over the full data set under the belief model.
//!
//! Expected shape (paper §5.1): Optimal latency far above the 500 ms
//! interactivity threshold and growing with data size; Holistic latency
//! near zero; Unmerged latency ≈ its 500 ms budget; Holistic quality ≈
//! Optimal quality, Unmerged typically below both.

use voxolap_core::approach::Vocalizer;
use voxolap_core::voice::{InstantVoice, VirtualVoice};
use voxolap_data::Table;

use crate::{
    experiment_holistic, experiment_optimal, experiment_unmerged, fig3_queries, markdown_table,
    outcome_quality,
};

/// One measured cell of the figure.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Query label in the paper's `X,Y` naming.
    pub query: String,
    /// (latency ms, quality) per approach: optimal, holistic, unmerged.
    pub latency_ms: [f64; 3],
    /// Exact speech quality per approach, same order.
    pub quality: [f64; 3],
}

/// Run the experiment and return the measured rows.
pub fn measure(table: &Table, seed: u64) -> Vec<Fig3Row> {
    let optimal = experiment_optimal();
    let holistic = experiment_holistic(seed);
    let unmerged = experiment_unmerged(seed);

    fig3_queries(table)
        .into_iter()
        .map(|(label, query)| {
            let mut v = InstantVoice::default();
            let o_opt = optimal.vocalize(table, &query, &mut v);
            // Holistic overlaps sampling with (virtual) speaking time;
            // 600 iterations/char is conservative for a 15 chars/s voice
            // (see tab5_tab13).
            let mut v = VirtualVoice::new(600.0);
            let o_hol = holistic.vocalize(table, &query, &mut v);
            let mut v = InstantVoice::default();
            let o_unm = unmerged.vocalize(table, &query, &mut v);
            Fig3Row {
                query: label,
                latency_ms: [
                    o_opt.latency.as_secs_f64() * 1e3,
                    o_hol.latency.as_secs_f64() * 1e3,
                    o_unm.latency.as_secs_f64() * 1e3,
                ],
                quality: [
                    outcome_quality(&o_opt, table, &query),
                    outcome_quality(&o_hol, table, &query),
                    outcome_quality(&o_unm, table, &query),
                ],
            }
        })
        .collect()
}

/// Run and render as JSON lines (one record per query).
pub fn run_json(table: &Table, seed: u64) -> String {
    measure(table, seed)
        .iter()
        .map(|r| {
            voxolap_json::Value::obj([
                ("query", r.query.as_str().into()),
                ("latency_ms", r.latency_ms.to_vec().into()),
                ("quality", r.quality.to_vec().into()),
            ])
            .to_string()
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Run and render as markdown.
pub fn run(table: &Table, seed: u64) -> String {
    let rows = measure(table, seed);
    let md_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.query.clone(),
                format!("{:.1}", r.latency_ms[0]),
                format!("{:.1}", r.latency_ms[1]),
                format!("{:.1}", r.latency_ms[2]),
                format!("{:.3}", r.quality[0]),
                format!("{:.3}", r.quality[1]),
                format!("{:.3}", r.quality[2]),
            ]
        })
        .collect();
    let mut out = String::from("### Figure 3: latency (ms) and speech quality per approach\n\n");
    out.push_str(&markdown_table(
        &[
            "query",
            "latency optimal",
            "latency holistic",
            "latency unmerged",
            "quality optimal",
            "quality holistic",
            "quality unmerged",
        ],
        &md_rows,
    ));
    out
}
