//! Cross-query semantic-cache replay: a seeded workload of repeated,
//! scope-overlapping, and fresh queries against one [`Holistic`] engine
//! sharing a [`SemanticCache`], rendered as markdown and as the
//! machine-readable `BENCH_cache.json` record.
//!
//! Two measurements:
//!
//! * **Replay** — `n_queries` queries drawn from a small pool with
//!   configurable repeat/overlap ratios; per-query planning latency and
//!   rows read are bucketed by how the cache served the query (cold,
//!   exact hit, warm-start hit), as classified from the cache-counter
//!   deltas around each call.
//! * **Warm start** — rows needed to push the deterministic count
//!   estimator (`e_C = nrRows * seen(a) / nrRead`, paper Algorithm 3)
//!   below a relative-error threshold, cold versus warm-started from a
//!   donor snapshot with the same scope but a different group-by.
//!
//! [`Holistic`]: voxolap_core::holistic::Holistic
//! [`SemanticCache`]: voxolap_engine::semantic::SemanticCache

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use voxolap_core::approach::Vocalizer;
use voxolap_core::holistic::{Holistic, HolisticConfig};
use voxolap_core::sampler::PlannerCore;
use voxolap_core::voice::InstantVoice;
use voxolap_data::dimension::LevelId;
use voxolap_data::{DimId, Table};
use voxolap_engine::exact::{evaluate, ExactResult};
use voxolap_engine::query::{AggFct, Query};
use voxolap_engine::semantic::{CacheStats, SemanticCache};
use voxolap_json::Value;

use crate::{flights_table, markdown_table};

/// How a query was served, judged from the cache-counter deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    Cold,
    ExactHit,
    WarmHit,
}

impl Served {
    fn label(self) -> &'static str {
        match self {
            Served::Cold => "cold",
            Served::ExactHit => "exact_hit",
            Served::WarmHit => "warm_hit",
        }
    }
}

/// One replayed query.
#[derive(Debug, Clone)]
pub struct ReplayPoint {
    pub served: Served,
    pub planning_ms: f64,
    pub rows_read: u64,
}

/// Aggregated statistics of one `Served` class.
#[derive(Debug, Clone, Copy)]
pub struct ClassStats {
    pub count: usize,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub mean_rows: f64,
}

impl ClassStats {
    fn of(points: &[&ReplayPoint]) -> ClassStats {
        if points.is_empty() {
            return ClassStats { count: 0, mean_ms: 0.0, p50_ms: 0.0, mean_rows: 0.0 };
        }
        let mut ms: Vec<f64> = points.iter().map(|p| p.planning_ms).collect();
        ms.sort_by(|a, b| a.total_cmp(b));
        ClassStats {
            count: points.len(),
            mean_ms: ms.iter().sum::<f64>() / ms.len() as f64,
            p50_ms: ms[ms.len() / 2],
            mean_rows: points.iter().map(|p| p.rows_read as f64).sum::<f64>() / points.len() as f64,
        }
    }
}

/// The warm-start rows-to-accuracy measurement.
#[derive(Debug, Clone, Copy)]
pub struct WarmStartReport {
    pub donor_rows: u64,
    pub threshold: f64,
    pub cold_rows: u64,
    pub warm_fresh_rows: u64,
}

/// Full result of one replay run.
#[derive(Debug, Clone)]
pub struct CacheReplay {
    pub points: Vec<ReplayPoint>,
    pub final_stats: CacheStats,
    pub warm_start: WarmStartReport,
    /// In-memory size of the generated dataset (for the artifact header).
    pub dataset_bytes: usize,
}

impl CacheReplay {
    fn class(&self, served: Served) -> ClassStats {
        let points: Vec<&ReplayPoint> = self.points.iter().filter(|p| p.served == served).collect();
        ClassStats::of(&points)
    }

    /// Mean cold planning latency divided by mean exact-hit latency.
    pub fn exact_hit_speedup(&self) -> f64 {
        let cold = self.class(Served::Cold);
        let hit = self.class(Served::ExactHit);
        if hit.count == 0 || hit.mean_ms <= 0.0 {
            return 0.0;
        }
        cold.mean_ms / hit.mean_ms
    }

    /// Fraction of queries served from the cache (either layer).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.points.iter().filter(|p| p.served != Served::Cold).count();
        hits as f64 / self.points.len().max(1) as f64
    }
}

/// The query pool: groups of same-scope queries (identical filters, so
/// snapshots transfer within a group) across three scopes.
fn query_pool(table: &Table) -> Vec<Query> {
    let schema = table.schema();
    let ne = schema.dimension(DimId(0)).member_by_phrase("the North East").expect("NE exists");
    let winter = schema.dimension(DimId(1)).member_by_phrase("Winter").expect("Winter exists");
    let b = |filter: Option<(DimId, voxolap_data::MemberId)>, dims: &[(u8, u8)]| {
        let mut q = Query::builder(AggFct::Avg);
        if let Some((d, m)) = filter {
            q = q.filter(d, m);
        }
        for &(d, l) in dims {
            q = q.group_by(DimId(d), LevelId(l));
        }
        q.build(schema).expect("pool query is valid")
    };
    vec![
        // Scope 1: no filters.
        b(None, &[(0, 1)]),
        b(None, &[(1, 1)]),
        b(None, &[(2, 1)]),
        b(None, &[(0, 1), (1, 1)]),
        // Scope 2: the North East.
        b(Some((DimId(0), ne)), &[(1, 1)]),
        b(Some((DimId(0), ne)), &[(2, 1)]),
        b(Some((DimId(0), ne)), &[(1, 1), (2, 1)]),
        // Scope 3: Winter.
        b(Some((DimId(1), winter)), &[(0, 1)]),
        b(Some((DimId(1), winter)), &[(2, 1)]),
        b(Some((DimId(1), winter)), &[(0, 1), (2, 1)]),
    ]
}

/// Engine configuration for the replay. A cache hit skips sampling but
/// still scores the candidate tree exhaustively, so the tree is kept
/// small while the sampling floor stays high — the shape of a live
/// deployment, where row ingestion dominates planning.
fn replay_config(seed: u64) -> HolisticConfig {
    HolisticConfig {
        seed,
        min_samples_per_sentence: 24_000,
        max_tree_nodes: 2_000,
        resample_size: 200,
        ..HolisticConfig::default()
    }
}

/// Mean relative error of the deterministic per-aggregate count estimator
/// against the exact counts (aggregates with empty true scopes skipped).
fn count_error(core: &PlannerCore<'_>, exact: &ExactResult) -> f64 {
    let cache = core.cache();
    let nr_read = cache.nr_read();
    if nr_read == 0 {
        return f64::INFINITY;
    }
    let total = cache.nr_rows_total() as f64;
    let mut err = 0.0;
    let mut n = 0usize;
    for a in 0..exact.len() as u32 {
        let truth = exact.count(a) as f64;
        if truth == 0.0 {
            continue;
        }
        let est = total * cache.seen(a) as f64 / nr_read as f64;
        err += (est - truth).abs() / truth;
        n += 1;
    }
    if n == 0 {
        f64::INFINITY
    } else {
        err / n as f64
    }
}

/// Fresh rows a planner core needs before the count estimator's error
/// drops below `threshold` (chunked ingestion; stops at scan exhaustion).
fn rows_to_threshold(core: &mut PlannerCore<'_>, exact: &ExactResult, threshold: f64) -> u64 {
    const CHUNK: usize = 128;
    loop {
        if count_error(core, exact) < threshold {
            return core.rows_read();
        }
        if core.ingest_rows(CHUNK) == 0 {
            return core.rows_read();
        }
    }
}

/// Measure rows-to-accuracy cold versus warm-started: the donor streams
/// `donor_rows` rows of the shared scope grouped by region, the target
/// asks region × season. Both run the same seed, so the donor prefix is
/// exactly the first `donor_rows` rows the cold target would read.
pub fn warm_start_report(table: &Table, seed: u64, donor_rows: usize) -> WarmStartReport {
    let schema = table.schema();
    let donor_q = Query::builder(AggFct::Avg)
        .group_by(DimId(0), LevelId(1))
        .build(schema)
        .expect("donor query is valid");
    let target_q = Query::builder(AggFct::Avg)
        .group_by(DimId(0), LevelId(1))
        .group_by(DimId(1), LevelId(1))
        .build(schema)
        .expect("target query is valid");
    let exact = evaluate(&target_q, table);
    let threshold = 0.05;

    let mut donor = PlannerCore::new(table, &donor_q, seed);
    donor.enable_row_log(donor_rows);
    donor.ingest_rows(donor_rows);
    let snapshot = donor.take_snapshot(seed).expect("donor snapshot fits its log");

    let mut cold = PlannerCore::new(table, &target_q, seed);
    let cold_rows = rows_to_threshold(&mut cold, &exact, threshold);

    let mut warm = PlannerCore::new(table, &target_q, seed);
    assert!(warm.warm_start(&snapshot), "snapshot is compatible");
    let warm_fresh_rows = rows_to_threshold(&mut warm, &exact, threshold);

    WarmStartReport { donor_rows: snapshot.nr_read, threshold, cold_rows, warm_fresh_rows }
}

/// Replay a seeded workload of `n_queries` queries with the given repeat
/// and scope-overlap percentages against one cache-sharing engine.
pub fn measure(
    rows: usize,
    n_queries: usize,
    repeat_pct: usize,
    overlap_pct: usize,
    cache_mb: usize,
    seed: u64,
) -> CacheReplay {
    let table = flights_table(rows);
    let pool = query_pool(&table);
    let cache = Arc::new(SemanticCache::with_capacity_mb(cache_mb.max(1)));
    let engine = Holistic::new(replay_config(seed)).with_cache(cache.clone());

    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0ff_ee00_c0ff_ee00);
    let mut history: Vec<usize> = Vec::new();
    let mut next_fresh = 0usize;
    let mut points = Vec::with_capacity(n_queries);
    for _ in 0..n_queries {
        let roll = rng.gen_range(0..100usize);
        let idx = if roll < repeat_pct && !history.is_empty() {
            // Exact repeat of an earlier query.
            history[rng.gen_range(0..history.len())]
        } else if roll < repeat_pct + overlap_pct && !history.is_empty() {
            // Same pool (scopes repeat), different index than the last
            // query — lands on a scope sibling or a fresh scope.
            let prev = *history.last().expect("nonempty");
            (prev + 1 + rng.gen_range(0..pool.len() - 1)) % pool.len()
        } else {
            let idx = next_fresh % pool.len();
            next_fresh += 1;
            idx
        };
        history.push(idx);

        let before = cache.stats();
        let mut voice = InstantVoice::default();
        let outcome = engine.vocalize(&table, &pool[idx], &mut voice);
        let after = cache.stats();
        let served = if after.exact_hits > before.exact_hits {
            Served::ExactHit
        } else if after.warm_hits > before.warm_hits {
            Served::WarmHit
        } else {
            Served::Cold
        };
        points.push(ReplayPoint {
            served,
            planning_ms: outcome.stats.planning_time.as_secs_f64() * 1e3,
            rows_read: outcome.stats.rows_read,
        });
    }

    let warm_start = warm_start_report(&table, seed, 2_000.min(rows / 8));
    CacheReplay {
        points,
        final_stats: cache.stats(),
        warm_start,
        dataset_bytes: table.approx_bytes(),
    }
}

/// Render the replay as the `BENCH_cache.json` record.
pub fn to_json(
    rows: usize,
    repeat_pct: usize,
    overlap_pct: usize,
    cache_mb: usize,
    host: crate::HostInfo,
    replay: &CacheReplay,
) -> String {
    let class_json = |s: ClassStats| {
        Value::obj([
            ("count", s.count.into()),
            ("mean_ms", s.mean_ms.into()),
            ("p50_ms", s.p50_ms.into()),
            ("mean_rows_read", s.mean_rows.into()),
        ])
    };
    let ws = replay.warm_start;
    Value::obj([
        ("bench", "cache_replay".into()),
        ("dataset", "flights".into()),
        ("rows", (rows as u64).into()),
        ("queries", replay.points.len().into()),
        ("repeat_pct", repeat_pct.into()),
        ("overlap_pct", overlap_pct.into()),
        ("cache_mb", cache_mb.into()),
        ("host_cores", (host.cores as u64).into()),
        ("host_ram_bytes", host.ram_bytes.into()),
        ("dataset_bytes", (replay.dataset_bytes as u64).into()),
        ("cold", class_json(replay.class(Served::Cold))),
        ("exact_hit", class_json(replay.class(Served::ExactHit))),
        ("warm_hit", class_json(replay.class(Served::WarmHit))),
        ("exact_hit_speedup_vs_cold", replay.exact_hit_speedup().into()),
        ("hit_rate", replay.hit_rate().into()),
        (
            "cache_stats",
            Value::obj([
                ("exact_hits", replay.final_stats.exact_hits.into()),
                ("warm_hits", replay.final_stats.warm_hits.into()),
                ("misses", replay.final_stats.misses.into()),
                ("admissions", replay.final_stats.admissions.into()),
                ("evictions", replay.final_stats.evictions.into()),
                ("bytes_used", replay.final_stats.bytes_used.into()),
            ]),
        ),
        (
            "warm_start",
            Value::obj([
                ("donor_rows", ws.donor_rows.into()),
                ("count_error_threshold", ws.threshold.into()),
                ("cold_rows_to_threshold", ws.cold_rows.into()),
                ("warm_fresh_rows_to_threshold", ws.warm_fresh_rows.into()),
            ]),
        ),
    ])
    .to_string()
}

/// Render the replay as markdown.
pub fn run(rows: usize, replay: &CacheReplay) -> String {
    let md_rows: Vec<Vec<String>> = [Served::Cold, Served::ExactHit, Served::WarmHit]
        .iter()
        .map(|&s| {
            let c = replay.class(s);
            vec![
                s.label().to_string(),
                c.count.to_string(),
                format!("{:.2}", c.mean_ms),
                format!("{:.2}", c.p50_ms),
                format!("{:.0}", c.mean_rows),
            ]
        })
        .collect();
    let ws = replay.warm_start;
    format!(
        "### Semantic-cache replay ({rows} flights rows, {} queries)\n\n{}\n\
         exact-hit speedup vs cold: {:.1}x | hit rate: {:.0}%\n\
         warm start: {} donor rows; cold needs {} rows for count error < {:.0}%, \
         warm-started needs {} fresh rows\n",
        replay.points.len(),
        markdown_table(&["served", "count", "mean ms", "p50 ms", "mean rows"], &md_rows),
        replay.exact_hit_speedup(),
        replay.hit_rate() * 100.0,
        ws.donor_rows,
        ws.cold_rows,
        ws.threshold * 100.0,
        ws.warm_fresh_rows,
    )
}
