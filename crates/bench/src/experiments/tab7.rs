//! Table 7: example facts extracted via voice-based data analysis.
//!
//! Drives scripted exploratory sessions on the flights dataset through the
//! keyword parser and the holistic vocalizer, then extracts the facts a
//! careful listener could state — analogous to the worker-stated facts of
//! the paper's Table 7, annotated with the dimensions they refer to.

use voxolap_core::voice::VirtualVoice;
use voxolap_data::Table;
use voxolap_simuser::explore::extract_facts;
use voxolap_voice::session::Session;

use crate::{experiment_holistic, markdown_table};

/// The scripted sessions: each is a list of utterances ending in a
/// vocalization of the final query state.
fn scripts() -> Vec<Vec<&'static str>> {
    vec![
        vec!["break down by season"],
        vec!["break down by airline", "break down by region"],
        vec!["drill down into the start airport", "drill down into the start airport"],
        vec!["break down by region", "break down by season", "winter"],
    ]
}

/// Run the sessions and render the fact table.
pub fn run(table: &Table, seed: u64) -> String {
    let holistic = experiment_holistic(seed);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for script in scripts() {
        let mut session = Session::new(table);
        for cmd in &script {
            // Scripted commands are all valid; ignore the response.
            session.input(cmd).expect("scripted command parses");
        }
        let Ok(query) = session.query() else { continue };
        let mut voice = VirtualVoice::default();
        let Ok(outcome) = session.vocalize_with(&holistic, &mut voice) else { continue };
        for fact in extract_facts(&outcome, &query, table.schema()) {
            rows.push(vec![fact.dimensions.join(", "), fact.text]);
        }
    }
    format!(
        "### Table 7: facts extracted via voice-based analysis\n\n{}",
        markdown_table(&["Dimensions", "Fact"], &rows)
    )
}
