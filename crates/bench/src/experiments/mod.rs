//! One module per paper artifact; each exposes a `run(...) -> String`
//! returning the regenerated table/figure in markdown. The `exp*` binaries
//! are thin wrappers, and `all_experiments` composes everything into an
//! `EXPERIMENTS.md`-shaped report.

pub mod ablations;
pub mod cache;
pub mod fig3;
pub mod parallel;
pub mod scaling;
pub mod stream;
pub mod tab11;
pub mod tab12;
pub mod tab2_tab10;
pub mod tab5_tab13;
pub mod tab6_tab14;
pub mod tab7;
pub mod tab8_tab9;
