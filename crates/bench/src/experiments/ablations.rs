//! Ablation studies on the design choices DESIGN.md calls out:
//!
//! 1. **Pipelining** — holistic speech quality as a function of the
//!    per-character sampling budget the voice grants (0 = no overlap at
//!    all, the degenerate case; larger = slower speech or faster sampler).
//!    Shows why interleaving processing with read-out is the headline
//!    idea: quality climbs with speaking time at *zero* latency cost.
//! 2. **UCT prioritization** — UCT descent vs. uniform-random descent at
//!    equal iteration budgets. Shows what the exploration/exploitation
//!    balance buys over plain Monte-Carlo sampling.
//! 3. **Resample size** — the fixed cache-resample size (paper: 10) swept
//!    over {10, 50, 100, 400, 1000} on the 0/1 cancellation measure.
//!    Quantifies the substitution note in DESIGN.md.
//! 4. **σ calibration** — the belief σ as a fraction of the overall mean
//!    (paper: 0.5), swept to show the quality metric's sensitivity.
//! 5. **Stratified sampling** — cache coverage of rare aggregates after a
//!    fixed row budget, shuffled streaming vs. the pre-built
//!    [`AggregateIndex`](voxolap_engine::stratified::AggregateIndex)
//!    (the paper's "specialized indexing structures" extension).

use voxolap_core::approach::Vocalizer;
use voxolap_core::holistic::{Holistic, HolisticConfig};
use voxolap_core::sampler::SelectionPolicy;
use voxolap_core::voice::VirtualVoice;
use voxolap_data::Table;

use crate::{experiment_candidates, markdown_table, outcome_quality, region_season_query};

fn base_config(seed: u64) -> HolisticConfig {
    HolisticConfig {
        candidates: experiment_candidates(),
        seed,
        max_tree_nodes: 300_000,
        resample_size: 400,
        ..HolisticConfig::default()
    }
}

/// Average holistic quality over `seeds` runs with a given config and
/// voice budget.
fn mean_quality(
    table: &Table,
    cfg_of: impl Fn(u64) -> HolisticConfig,
    iterations_per_char: f64,
    seeds: &[u64],
) -> f64 {
    let query = region_season_query(table);
    let total: f64 = seeds
        .iter()
        .map(|&s| {
            let mut voice = VirtualVoice::new(iterations_per_char);
            let outcome = Holistic::new(cfg_of(s)).vocalize(table, &query, &mut voice);
            outcome_quality(&outcome, table, &query)
        })
        .sum();
    total / seeds.len() as f64
}

/// Run all four ablations and render markdown.
pub fn run(table: &Table, seed: u64) -> String {
    let seeds: Vec<u64> = (0..5).map(|i| seed + i * 101).collect();
    let mut out = String::from("### Ablations (flights, region x season, mean over 5 seeds)\n\n");

    // 1. Pipelining budget.
    let mut rows = Vec::new();
    for ipc in [0.0, 50.0, 200.0, 600.0, 2000.0] {
        let q = mean_quality(table, base_config, ipc, &seeds);
        rows.push(vec![format!("{ipc:.0}"), format!("{q:.3}")]);
    }
    out.push_str("#### Pipelining: sampling iterations per spoken character\n\n");
    out.push_str(&markdown_table(&["iterations/char", "quality"], &rows));

    // 2. UCT vs uniform random at a fixed modest budget.
    let mut rows = Vec::new();
    for (name, policy) in
        [("UCT", SelectionPolicy::Uct), ("uniform random", SelectionPolicy::UniformRandom)]
    {
        let q = mean_quality(table, |s| HolisticConfig { policy, ..base_config(s) }, 200.0, &seeds);
        rows.push(vec![name.to_string(), format!("{q:.3}")]);
    }
    out.push_str("\n#### Tree-descent policy (200 iterations/char)\n\n");
    out.push_str(&markdown_table(&["policy", "quality"], &rows));

    // 3. Resample size.
    let mut rows = Vec::new();
    for rs in [10usize, 50, 100, 400, 1000] {
        let q = mean_quality(
            table,
            |s| HolisticConfig { resample_size: rs, ..base_config(s) },
            600.0,
            &seeds,
        );
        rows.push(vec![rs.to_string(), format!("{q:.3}")]);
    }
    out.push_str("\n#### Fixed cache-resample size (paper default: 10)\n\n");
    out.push_str(&markdown_table(&["resample size", "quality"], &rows));

    // 4. Sigma calibration (fraction of overall mean; paper: 0.5). The
    // sweep fixes sigma via the override computed from the exact mean.
    let exact = voxolap_engine::exact::evaluate(&region_season_query(table), table);
    let grand = exact.grand_mean();
    let mut rows = Vec::new();
    for frac in [0.25, 0.5, 1.0, 2.0] {
        let q = mean_quality(
            table,
            |s| HolisticConfig { sigma_override: Some(grand.abs() * frac), ..base_config(s) },
            600.0,
            &seeds,
        );
        rows.push(vec![format!("{frac}"), format!("{q:.3}")]);
    }
    out.push_str("\n#### Belief sigma as a fraction of the overall mean (paper: 0.5)\n\n");
    out.push_str(&markdown_table(&["sigma fraction", "quality"], &rows));
    out.push_str(
        "\nNote: quality is itself measured under the paper's sigma = mean/2 model, so the \
         sigma sweep shows planner robustness to mis-calibrated sampling beliefs, not \
         listener-model changes.\n",
    );

    // 5. Stratified streaming: non-empty cache buckets and minimum bucket
    // size after a fixed row budget.
    out.push_str("\n#### Stratified vs shuffled streaming (cache coverage after N rows)\n\n");
    out.push_str(&stratified_coverage(table, seed));
    out
}

/// Compare cache coverage under shuffled vs stratified streaming on the
/// region x season query, whose smallest cell (US territories in Fall)
/// holds ~0.2 % of rows.
fn stratified_coverage(table: &Table, seed: u64) -> String {
    use voxolap_engine::cache::SampleCache;
    use voxolap_engine::stratified::AggregateIndex;

    let query = region_season_query(table);
    let n_aggs = query.n_aggregates();
    let index = AggregateIndex::build(table, &query, seed);

    let mut rows_md = Vec::new();
    for budget in [20usize, 100, 1_000, 10_000] {
        // Shuffled streaming.
        let mut shuffled = SampleCache::new(n_aggs, table.row_count() as u64);
        let mut scan = table.scan_shuffled(seed);
        for _ in 0..budget {
            let Some(r) = scan.next_row() else { break };
            shuffled.observe(query.layout().agg_of_row(r.members), r.value);
        }
        // Stratified streaming.
        let mut strat = SampleCache::new(n_aggs, table.row_count() as u64);
        let mut scan = index.scan(table);
        for _ in 0..budget {
            let Some((_, r)) = scan.next_row() else { break };
            strat.observe(query.layout().agg_of_row(r.members), r.value);
        }
        let min_bucket = |c: &SampleCache| (0..n_aggs as u32).map(|a| c.size(a)).min().unwrap_or(0);
        rows_md.push(vec![
            budget.to_string(),
            format!("{}/{}", shuffled.nonempty_count(), n_aggs),
            format!("{}/{}", strat.nonempty_count(), n_aggs),
            min_bucket(&shuffled).to_string(),
            min_bucket(&strat).to_string(),
        ]);
    }
    markdown_table(
        &[
            "rows streamed",
            "non-empty buckets (shuffled)",
            "non-empty buckets (stratified)",
            "min bucket (shuffled)",
            "min bucket (stratified)",
        ],
        &rows_md,
    )
}
