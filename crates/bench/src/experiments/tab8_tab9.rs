//! Tables 8 and 9: vocalization preferences and speech lengths from the
//! exploratory analysis study.

use voxolap_simuser::preference::PreferenceStudy;

use crate::markdown_table;

/// Run the study and render both tables.
pub fn run(flights_rows: usize, seed: u64) -> String {
    let study = PreferenceStudy { flights_rows, seed, ..PreferenceStudy::default() };
    let result = study.run();

    let mut out = String::from("### Table 8: vocalization preferences (Prior vs This)\n\n");
    let t8: Vec<Vec<String>> = result
        .datasets
        .iter()
        .map(|d| {
            let mut row = vec![d.dataset.clone()];
            row.extend(d.counts.iter().map(|c| c.to_string()));
            row
        })
        .collect();
    out.push_str(&markdown_table(
        &["Data", "Prior++", "Prior+", "Neutral", "This+", "This++"],
        &t8,
    ));

    out.push_str("\n### Table 9: speech lengths (characters) during the study\n\n");
    let mut t9: Vec<Vec<String>> = Vec::new();
    for d in &result.datasets {
        t9.push(vec![
            d.dataset.clone(),
            "Average".to_string(),
            format!("{:.0}", d.this_len.avg),
            format!("{:.0}", d.prior_len.avg),
        ]);
        t9.push(vec![
            d.dataset.clone(),
            "Maximum".to_string(),
            d.this_len.max.to_string(),
            d.prior_len.max.to_string(),
        ]);
    }
    out.push_str(&markdown_table(&["Scenario", "Aggregate", "This", "Prior"], &t9));
    out.push_str(&format!(
        "\nQueries vocalized: {} (salary), {} (flights).\n",
        result.datasets[0].queries, result.datasets[1].queries
    ));
    out.push_str(&format!(
        "\nInput-method preferences (paper: 9 of 40 preferred keyboard): \
         {} voice, {} keyboard.\n",
        result.input.voice, result.input.keyboard
    ));
    out
}
