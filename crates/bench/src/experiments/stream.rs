//! Streaming-delivery latency: time-to-first-sentence (TTFS) and
//! inter-sentence gaps per approach over the region × season query,
//! rendered as markdown and as the machine-readable `BENCH_stream.json`
//! record.
//!
//! The holistic approaches commit their first sentence after one
//! sentence's sampling budget and keep planning behind the (virtual)
//! speech, so TTFS stays far below total planning time; the unmerged
//! baseline plans the full speech up front, so its TTFS approaches the
//! total — the gap this benchmark quantifies.

use std::time::Instant;

use voxolap_core::approach::Vocalizer;
use voxolap_core::holistic::{Holistic, HolisticConfig};
use voxolap_core::parallel::ParallelHolistic;
use voxolap_core::unmerged::{Unmerged, UnmergedConfig};
use voxolap_core::CancelToken;
use voxolap_data::Table;
use voxolap_engine::query::Query;
use voxolap_json::Value;
use voxolap_voice::tts::RealTimeVoice;

use crate::{flights_table, markdown_table, region_season_query, HostInfo};

/// Speaking rate for the pacing voice: fast enough that a benchmark run
/// finishes in seconds, slow enough that planning genuinely overlaps
/// speech. A wall-clock voice (not [`VirtualVoice`]) paces every approach
/// the same way, including the multi-threaded planner whose pacing loop
/// polls on the wall clock.
///
/// [`VirtualVoice`]: voxolap_core::voice::VirtualVoice
const CHARS_PER_SEC: f64 = 2_000.0;

/// TTFS/gap samples collected over all runs of one approach.
#[derive(Debug, Clone)]
pub struct ApproachReport {
    pub approach: &'static str,
    pub ttfs_ms: Vec<f64>,
    pub gap_ms: Vec<f64>,
    pub total_ms: Vec<f64>,
    pub sentences: usize,
}

/// The `p`-th percentile (nearest rank) of an unsorted sample vector.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut l = samples.to_vec();
    l.sort_by(|a, b| a.total_cmp(b));
    let idx = ((p / 100.0) * (l.len() - 1) as f64).round() as usize;
    l[idx.min(l.len() - 1)]
}

fn engine(approach: &'static str, threads: usize, seed: u64) -> Box<dyn Vocalizer> {
    let config = HolisticConfig {
        seed,
        min_samples_per_sentence: 8_000,
        resample_size: 200,
        ..HolisticConfig::default()
    };
    match approach {
        "holistic" => Box::new(Holistic::new(config)),
        "parallel" => Box::new(ParallelHolistic::new(config).with_threads(threads)),
        "unmerged" => Box::new(Unmerged::new(UnmergedConfig {
            seed,
            resample_size: 200,
            ..UnmergedConfig::default()
        })),
        other => unreachable!("unknown approach {other}"),
    }
}

/// Run one approach `runs` times (fresh engine and seed each run, no
/// cross-query cache) and collect per-sentence delivery timestamps.
pub fn measure_approach(
    table: &Table,
    query: &Query,
    approach: &'static str,
    threads: usize,
    runs: usize,
) -> ApproachReport {
    let mut ttfs_ms = Vec::with_capacity(runs);
    let mut gap_ms = Vec::new();
    let mut total_ms = Vec::with_capacity(runs);
    let mut sentences = 0usize;
    for run in 0..runs {
        let engine = engine(approach, threads, 42 + run as u64);
        let mut voice = RealTimeVoice::new(CHARS_PER_SEC);
        let t0 = Instant::now();
        let mut stream = engine.stream(table, query, &mut voice, CancelToken::never());
        let mut last = t0;
        let mut first = true;
        while stream.next_sentence().is_some() {
            let now = Instant::now();
            if first {
                ttfs_ms.push((now - t0).as_secs_f64() * 1e3);
                first = false;
            } else {
                gap_ms.push((now - last).as_secs_f64() * 1e3);
            }
            last = now;
            sentences += 1;
        }
        let outcome = stream.finish();
        total_ms.push(outcome.stats.planning_time.as_secs_f64() * 1e3);
    }
    ApproachReport { approach, ttfs_ms, gap_ms, total_ms, sentences }
}

/// Measure all compared approaches on the flights region × season query.
/// Returns the reports plus the generated dataset's in-memory size in
/// bytes (for the artifact header).
pub fn measure(rows: usize, runs: usize, threads: usize) -> (Vec<ApproachReport>, usize) {
    let table = flights_table(rows);
    let dataset_bytes = table.approx_bytes();
    let query = region_season_query(&table);
    let reports = ["holistic", "parallel", "unmerged"]
        .iter()
        .map(|&a| measure_approach(&table, &query, a, threads, runs))
        .collect();
    (reports, dataset_bytes)
}

fn dist_json(samples: &[f64]) -> Value {
    Value::obj([
        ("count", samples.len().into()),
        ("p50", percentile(samples, 50.0).into()),
        ("p90", percentile(samples, 90.0).into()),
        ("p99", percentile(samples, 99.0).into()),
    ])
}

/// The paper's interactivity threshold: the first sentence should start
/// within 500 ms (§1, §5). Stamped into the record so readers can judge
/// the TTFS percentiles against the target without consulting the paper.
pub const TTFS_TARGET_MS: f64 = 500.0;

/// Render the measurement as the `BENCH_stream.json` record. Besides the
/// host facts, the header stamps the 500 ms TTFS target and — on hosts
/// with fewer than 4 cores — a note that the record was produced on a
/// container too small to demonstrate the paper-scale target, so a missed
/// target there reflects the host, not the implementation.
pub fn to_json(
    rows: usize,
    runs: usize,
    threads: usize,
    host: HostInfo,
    dataset_bytes: usize,
    reports: &[ApproachReport],
) -> String {
    let approaches: Vec<Value> = reports
        .iter()
        .map(|r| {
            Value::obj([
                ("approach", r.approach.into()),
                ("ttfs_ms", dist_json(&r.ttfs_ms)),
                ("gap_ms", dist_json(&r.gap_ms)),
                ("total_ms", dist_json(&r.total_ms)),
                ("sentences_total", r.sentences.into()),
            ])
        })
        .collect();
    let mut fields = vec![
        ("bench", "stream_latency".into()),
        ("dataset", "flights".into()),
        ("rows", (rows as u64).into()),
        ("runs", runs.into()),
        ("threads", threads.into()),
        ("host_cores", (host.cores as u64).into()),
        ("host_ram_bytes", host.ram_bytes.into()),
        ("dataset_bytes", (dataset_bytes as u64).into()),
        ("ttfs_target_ms", TTFS_TARGET_MS.into()),
        ("query", "avg cancellation by region x season".into()),
    ];
    if host.cores < 4 {
        fields.push((
            "host_note",
            format!(
                "measured on a {}-core container; the paper-scale 500 ms TTFS target \
                 assumes a >=4-core host, so percentiles here bound the container, \
                 not the implementation",
                host.cores
            )
            .into(),
        ));
    }
    fields.push(("approaches", approaches.into()));
    Value::obj(fields).to_string()
}

/// Render the measurement as markdown.
pub fn run(rows: usize, runs: usize, reports: &[ApproachReport]) -> String {
    let md_rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.approach.to_string(),
                format!("{:.2}", percentile(&r.ttfs_ms, 50.0)),
                format!("{:.2}", percentile(&r.ttfs_ms, 90.0)),
                format!("{:.2}", percentile(&r.gap_ms, 50.0)),
                format!("{:.2}", percentile(&r.gap_ms, 90.0)),
                format!("{:.1}", percentile(&r.total_ms, 50.0)),
            ]
        })
        .collect();
    format!(
        "### Streaming delivery latency ({rows} flights rows, {runs} runs)\n\n{}\n",
        markdown_table(
            &["approach", "ttfs p50 ms", "ttfs p90 ms", "gap p50 ms", "gap p90 ms", "total p50 ms"],
            &md_rows
        ),
    )
}
