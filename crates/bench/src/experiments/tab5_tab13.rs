//! Tables 5 and 13: the speeches the three approaches generate, with their
//! model-based quality.
//!
//! Table 5 uses the region × season query (20 fields); Table 13 a much
//! larger state × month query (hundreds of fields). Expected shape:
//! Optimal and Holistic produce similar, high-quality speeches naming the
//! true hot spots (the North East, Winter); Unmerged — with only 500 ms of
//! sampling and no pipelining — often claims the wrong scopes and scores
//! near zero.

use voxolap_core::approach::Vocalizer;
use voxolap_core::outcome::VocalizationOutcome;
use voxolap_core::voice::{InstantVoice, VirtualVoice};
use voxolap_data::Table;
use voxolap_engine::query::Query;
use voxolap_speech::ast::Speech;

use crate::{
    experiment_holistic, experiment_optimal, experiment_unmerged, markdown_table, outcome_quality,
    region_season_query, state_month_query,
};

/// The three approaches' outcomes for one query.
pub struct SpeechComparison {
    /// (approach name, outcome, exact quality).
    pub entries: Vec<(String, VocalizationOutcome, f64)>,
}

impl SpeechComparison {
    /// The structured speeches, for downstream studies (Tables 6/14).
    pub fn speeches(&self) -> Vec<(String, Speech)> {
        self.entries
            .iter()
            .filter_map(|(n, o, _)| o.speech.clone().map(|s| (n.clone(), s)))
            .collect()
    }
}

/// Run the three approaches on one query.
pub fn compare(table: &Table, query: &Query, seed: u64) -> SpeechComparison {
    let optimal = experiment_optimal();
    let holistic = experiment_holistic(seed);
    let unmerged = experiment_unmerged(seed);

    let mut v = InstantVoice::default();
    let o_opt = optimal.vocalize(table, query, &mut v);
    // 600 planner iterations per spoken character — conservative for a
    // 15 chars/s voice: the release-mode sampler sustains hundreds of
    // thousands of iterations per second, so real pipelined deployments
    // get strictly more background sampling than this.
    let mut v = VirtualVoice::new(600.0);
    let o_hol = holistic.vocalize(table, query, &mut v);
    let mut v = InstantVoice::default();
    let o_unm = unmerged.vocalize(table, query, &mut v);

    let entries = vec![
        ("Optimal".to_string(), o_opt, 0.0),
        ("Holistic".to_string(), o_hol, 0.0),
        ("Unmerged".to_string(), o_unm, 0.0),
    ]
    .into_iter()
    .map(|(n, o, _)| {
        let q = outcome_quality(&o, table, query);
        (n, o, q)
    })
    .collect();
    SpeechComparison { entries }
}

fn render(title: &str, cmp: &SpeechComparison) -> String {
    let rows: Vec<Vec<String>> = cmp
        .entries
        .iter()
        .map(|(name, outcome, quality)| {
            vec![name.clone(), outcome.body_text(), format!("{quality:.2}")]
        })
        .collect();
    format!("### {title}\n\n{}", markdown_table(&["Approach", "Speech", "Quality"], &rows))
}

/// Table 5: region × season.
pub fn run_tab5(table: &Table, seed: u64) -> (String, SpeechComparison) {
    let query = region_season_query(table);
    let cmp = compare(table, &query, seed);
    (render("Table 5: speeches for the region x season query (20 fields)", &cmp), cmp)
}

/// Table 13: state × month (hundreds of fields).
pub fn run_tab13(table: &Table, seed: u64) -> String {
    let query = state_month_query(table);
    let n = query.n_aggregates();
    let cmp = compare(table, &query, seed);
    render(&format!("Table 13: speeches for the state x month query ({n} fields)"), &cmp)
}
