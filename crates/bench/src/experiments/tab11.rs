//! Table 11: statistics of the benchmark datasets.

use voxolap_data::stats::DatasetStats;
use voxolap_data::Table;

use crate::markdown_table;

/// Render the dataset statistics table.
pub fn run(salary: &Table, flights: &Table) -> String {
    let rows: Vec<Vec<String>> = [salary, flights]
        .iter()
        .map(|t| {
            let s = DatasetStats::of(t);
            vec![s.name.clone(), s.dimensions.join(", "), s.rows.to_string(), s.size_display()]
        })
        .collect();
    format!(
        "### Table 11: benchmark data statistics\n\n{}",
        markdown_table(&["Data Set", "Dimensions", "#Rows", "Size"], &rows)
    )
}
