//! Table 12: the full result of the region × season cancellation query,
//! sorted by descending cancellation probability (as the paper prints it).

use voxolap_data::{DimId, Table};
use voxolap_engine::exact::evaluate;

use crate::{markdown_table, region_season_query};

/// Exact result rows: (region, season, probability), sorted descending.
pub fn measure(table: &Table) -> Vec<(String, String, f64)> {
    let query = region_season_query(table);
    let exact = evaluate(&query, table);
    let layout = query.layout();
    let schema = table.schema();
    let mut rows: Vec<(String, String, f64)> = (0..layout.n_aggregates() as u32)
        .filter(|&a| exact.value(a).is_finite())
        .map(|a| {
            let scope = layout.scope_of_agg(a);
            (
                schema.dimension(DimId(0)).member(scope[0]).phrase.clone(),
                schema.dimension(DimId(1)).member(scope[1]).phrase.clone(),
                exact.value(a),
            )
        })
        .collect();
    rows.sort_by(|a, b| b.2.total_cmp(&a.2));
    rows
}

/// Run and render as markdown.
pub fn run(table: &Table) -> String {
    let rows = measure(table);
    let md: Vec<Vec<String>> =
        rows.iter().map(|(r, s, p)| vec![r.clone(), s.clone(), format!("{p:.5}")]).collect();
    format!(
        "### Table 12: full region x season cancellation result ({} rows)\n\n{}",
        md.len(),
        markdown_table(&["Region", "Season", "Cancellation"], &md)
    )
}
