//! Parallel-planning scaling sweep: raw UCT sampling throughput
//! (samples/sec) of [`ParallelHolistic`]'s worker machinery at 1/2/4/8
//! threads on the paper-scale flights table, rendered as markdown and as
//! a machine-readable `BENCH_parallel.json` record.
//!
//! Throughput is measured by [`sampling_throughput`]: workers sample the
//! pre-built speech tree from the root for a fixed wall-clock window, with
//! setup (shard permutations, warm-up, tree construction) excluded. The
//! `speedup` column is relative to the 1-thread run of the same sweep.
//!
//! [`ParallelHolistic`]: voxolap_core::parallel::ParallelHolistic

use std::time::Duration;

use voxolap_core::holistic::HolisticConfig;
use voxolap_core::parallel::sampling_throughput;
use voxolap_json::Value;

use crate::{flights_table, markdown_table, region_season_query, HostInfo};

/// Thread counts the issue's scaling sweep covers.
pub const DEFAULT_THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One measured point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    pub threads: usize,
    pub samples: u64,
    pub rows_read: u64,
    pub elapsed_ms: f64,
    pub samples_per_sec: f64,
    /// Throughput relative to the sweep's 1-thread measurement.
    pub speedup: f64,
}

/// Run the sweep: one throughput measurement per thread count. Returns
/// the points plus the generated dataset's in-memory size in bytes (for
/// the artifact header).
pub fn measure(
    rows: usize,
    duration_ms: u64,
    thread_counts: &[usize],
    seed: u64,
) -> (Vec<ScalingPoint>, usize) {
    let table = flights_table(rows);
    let dataset_bytes = table.approx_bytes();
    let query = region_season_query(&table);
    let cfg = HolisticConfig { seed, ..HolisticConfig::default() };
    let duration = Duration::from_millis(duration_ms);
    let mut base: Option<f64> = None;
    let points = thread_counts
        .iter()
        .map(|&threads| {
            eprintln!("parallel scaling: {threads} thread(s)...");
            let r = sampling_throughput(&table, &query, &cfg, threads, duration);
            let samples_per_sec = r.samples_per_sec();
            let base_sps = *base.get_or_insert(samples_per_sec);
            ScalingPoint {
                threads,
                samples: r.samples,
                rows_read: r.rows_read,
                elapsed_ms: r.elapsed.as_secs_f64() * 1e3,
                samples_per_sec,
                speedup: samples_per_sec / base_sps,
            }
        })
        .collect();
    (points, dataset_bytes)
}

/// Render the sweep as the `BENCH_parallel.json` record. The header
/// carries the host's core count and RAM plus the dataset's in-memory
/// size — speedup beyond the core count is physically impossible, so
/// readers of the record can judge the numbers in context.
pub fn to_json(
    rows: usize,
    duration_ms: u64,
    host: HostInfo,
    dataset_bytes: usize,
    points: &[ScalingPoint],
) -> String {
    let results: Vec<Value> = points
        .iter()
        .map(|p| {
            Value::obj([
                ("threads", (p.threads as u64).into()),
                ("samples", p.samples.into()),
                ("rows_read", p.rows_read.into()),
                ("elapsed_ms", p.elapsed_ms.into()),
                ("samples_per_sec", p.samples_per_sec.into()),
                ("speedup_vs_1_thread", p.speedup.into()),
            ])
        })
        .collect();
    Value::obj([
        ("bench", "parallel_scaling".into()),
        ("dataset", "flights".into()),
        ("rows", (rows as u64).into()),
        ("duration_ms", duration_ms.into()),
        ("host_cores", (host.cores as u64).into()),
        ("host_ram_bytes", host.ram_bytes.into()),
        ("dataset_bytes", (dataset_bytes as u64).into()),
        ("results", results.into()),
    ])
    .to_string()
}

/// Render the sweep as markdown.
pub fn run(rows: usize, duration_ms: u64, points: &[ScalingPoint]) -> String {
    let md_rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.threads.to_string(),
                p.samples.to_string(),
                format!("{:.0}", p.samples_per_sec),
                format!("{:.2}", p.speedup),
            ]
        })
        .collect();
    format!(
        "### Parallel planning: sampling throughput ({rows} flights rows, \
         {duration_ms} ms per point)\n\n{}",
        markdown_table(&["threads", "samples", "samples/sec", "speedup"], &md_rows)
    )
}
