//! Parallel-planning scaling sweep: raw UCT sampling throughput
//! (samples/sec) of [`ParallelHolistic`]'s worker machinery at 1/2/4/8
//! threads on the paper-scale flights table, rendered as markdown and as
//! a machine-readable `BENCH_parallel.json` record.
//!
//! Each point carries two series:
//!
//! * **samples/sec** — end-to-end throughput via [`sampling_throughput`]:
//!   workers sample the pre-built speech tree from the root for a fixed
//!   wall-clock window, with setup (shard permutations, warm-up, tree
//!   construction) excluded. Mixes row ingestion with UCT planning work.
//! * **ingest rows/sec** — ingest-only throughput via
//!   [`ingest_throughput`]: workers drain whole seeded scans through the
//!   batched morsel path (columnar aggregate resolution + per-aggregate
//!   group-commit) with planning disabled. Isolates the scan+observe
//!   scaling the batching optimisation targets.
//!
//! The `speedup` columns are relative to the 1-thread run of the same
//! sweep and series.
//!
//! [`ParallelHolistic`]: voxolap_core::parallel::ParallelHolistic
//! [`ingest_throughput`]: voxolap_core::parallel::ingest_throughput

use std::time::Duration;

use voxolap_core::holistic::HolisticConfig;
use voxolap_core::parallel::{ingest_throughput, sampling_throughput};
use voxolap_json::Value;

use crate::{flights_table, markdown_table, region_season_query, HostInfo};

/// Thread counts the issue's scaling sweep covers.
pub const DEFAULT_THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One measured point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    pub threads: usize,
    pub samples: u64,
    pub rows_read: u64,
    pub elapsed_ms: f64,
    pub samples_per_sec: f64,
    /// End-to-end throughput relative to the sweep's 1-thread measurement.
    pub speedup: f64,
    /// Rows drained by the ingest-only measurement (scan + observe_batch,
    /// planning disabled).
    pub ingest_rows: u64,
    /// Full-table drains the ingest-only measurement completed.
    pub ingest_drains: u64,
    pub ingest_rows_per_sec: f64,
    /// Ingest-only throughput relative to the sweep's 1-thread measurement.
    pub ingest_speedup: f64,
}

/// Run the sweep: one end-to-end and one ingest-only measurement per
/// thread count. Returns the points plus the generated dataset's
/// in-memory size in bytes (for the artifact header).
pub fn measure(
    rows: usize,
    duration_ms: u64,
    thread_counts: &[usize],
    seed: u64,
) -> (Vec<ScalingPoint>, usize) {
    let table = flights_table(rows);
    let dataset_bytes = table.approx_bytes();
    let query = region_season_query(&table);
    let cfg = HolisticConfig { seed, ..HolisticConfig::default() };
    let duration = Duration::from_millis(duration_ms);
    let mut base: Option<f64> = None;
    let mut ingest_base: Option<f64> = None;
    let points = thread_counts
        .iter()
        .map(|&threads| {
            eprintln!("parallel scaling: {threads} thread(s)...");
            let r = sampling_throughput(&table, &query, &cfg, threads, duration);
            let samples_per_sec = r.samples_per_sec();
            let base_sps = *base.get_or_insert(samples_per_sec);
            let ing = ingest_throughput(&table, &query, seed, threads, duration);
            let ingest_rows_per_sec = ing.rows_per_sec();
            let ingest_base_rps = *ingest_base.get_or_insert(ingest_rows_per_sec);
            ScalingPoint {
                threads,
                samples: r.samples,
                rows_read: r.rows_read,
                elapsed_ms: r.elapsed.as_secs_f64() * 1e3,
                samples_per_sec,
                speedup: samples_per_sec / base_sps,
                ingest_rows: ing.rows,
                ingest_drains: ing.drains,
                ingest_rows_per_sec,
                ingest_speedup: ingest_rows_per_sec / ingest_base_rps,
            }
        })
        .collect();
    (points, dataset_bytes)
}

/// Render the sweep as the `BENCH_parallel.json` record. The header
/// carries the host's core count and RAM plus the dataset's in-memory
/// size — speedup beyond the core count is physically impossible, so
/// readers of the record can judge the numbers in context — and an
/// `ingest_mode` note describing what the ingest-only series measures.
pub fn to_json(
    rows: usize,
    duration_ms: u64,
    host: HostInfo,
    dataset_bytes: usize,
    points: &[ScalingPoint],
) -> String {
    let results: Vec<Value> = points
        .iter()
        .map(|p| {
            Value::obj([
                ("threads", (p.threads as u64).into()),
                ("samples", p.samples.into()),
                ("rows_read", p.rows_read.into()),
                ("elapsed_ms", p.elapsed_ms.into()),
                ("samples_per_sec", p.samples_per_sec.into()),
                ("speedup_vs_1_thread", p.speedup.into()),
                ("ingest_rows", p.ingest_rows.into()),
                ("ingest_drains", p.ingest_drains.into()),
                ("ingest_rows_per_sec", p.ingest_rows_per_sec.into()),
                ("ingest_speedup_vs_1_thread", p.ingest_speedup.into()),
            ])
        })
        .collect();
    Value::obj([
        ("bench", "parallel_scaling".into()),
        ("dataset", "flights".into()),
        ("rows", (rows as u64).into()),
        ("duration_ms", duration_ms.into()),
        ("host_cores", (host.cores as u64).into()),
        ("host_ram_bytes", host.ram_bytes.into()),
        ("dataset_bytes", (dataset_bytes as u64).into()),
        (
            "ingest_mode",
            "batched morsel ingest: scan + columnar agg_of_block + observe_batch, \
             planning disabled; full-table drains repeated for duration_ms"
                .into(),
        ),
        ("results", results.into()),
    ])
    .to_string()
}

/// Render the sweep as markdown.
pub fn run(rows: usize, duration_ms: u64, points: &[ScalingPoint]) -> String {
    let md_rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.threads.to_string(),
                p.samples.to_string(),
                format!("{:.0}", p.samples_per_sec),
                format!("{:.2}", p.speedup),
                format!("{:.0}", p.ingest_rows_per_sec),
                format!("{:.2}", p.ingest_speedup),
            ]
        })
        .collect();
    format!(
        "### Parallel planning: sampling throughput ({rows} flights rows, \
         {duration_ms} ms per point)\n\n{}",
        markdown_table(
            &["threads", "samples", "samples/sec", "speedup", "ingest rows/sec", "ingest speedup"],
            &md_rows
        )
    )
}
