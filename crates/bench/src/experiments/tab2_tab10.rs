//! Tables 2 and 10: the pilot study on implicit assumptions.

use voxolap_simuser::pilot::{questions, PilotStudy};

use crate::markdown_table;

/// Run the simulated pilot study and render both tables.
pub fn run(seed: u64) -> String {
    let result = PilotStudy { n_workers: 20, seed }.run();
    let qs = questions();

    let mut out = String::from("### Table 2: pilot study summary (consistent vs inconsistent)\n\n");
    let t2: Vec<Vec<String>> = result
        .per_aspect
        .iter()
        .map(|(a, c, i)| vec![a.clone(), c.to_string(), i.to_string()])
        .collect();
    out.push_str(&markdown_table(&["Model aspect", "#Consistent", "#Inconsistent"], &t2));

    out.push_str("\n### Table 10: detailed replies per question\n\n");
    let t10: Vec<Vec<String>> = qs
        .iter()
        .zip(&result.replies)
        .map(|(q, counts)| {
            vec![
                q.aspect.to_string(),
                q.question.to_string(),
                format!("{}/{}/{}", counts[0], counts[1], counts[2]),
            ]
        })
        .collect();
    out.push_str(&markdown_table(&["Aspect", "Question", "#Replies (1/2/3)"], &t10));
    out
}
