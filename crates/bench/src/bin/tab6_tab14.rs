//! Regenerates Tables 6 and 14: estimation errors and relative tendencies
//! for the speeches of Table 5.

use voxolap_bench::{
    arg_usize,
    experiments::{tab5_tab13, tab6_tab14},
    flights_table, DEFAULT_FLIGHTS_ROWS,
};

fn main() {
    let rows = arg_usize("--rows", DEFAULT_FLIGHTS_ROWS);
    let seed = arg_usize("--seed", 42) as u64;
    let table = flights_table(rows);
    let (tab5_md, comparison) = tab5_tab13::run_tab5(&table, seed);
    print!("{tab5_md}\n{}", tab6_tab14::run(&table, &comparison, seed));
}
