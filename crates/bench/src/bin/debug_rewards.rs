//! Diagnostic tool: after heavy sampling, compare the UCT mean rewards of
//! the best baseline's children against their exact qualities (Def. 2.2).
//!
//! Useful to see (a) how discriminative the reward signal is for a given
//! measure/σ and (b) whether sampled rankings converge toward the exact
//! ranking. A flat exact-quality landscape here is a property of the
//! paper's belief model, not a planner defect — many distinct refinements
//! describe the data almost equally well at one-significant-digit
//! granularity.

use voxolap_belief::model::{rounding_bucket, BeliefModel};
use voxolap_belief::normal::Normal;
use voxolap_bench::{experiment_candidates, flights_table, region_season_query};
use voxolap_core::sampler::PlannerCore;
use voxolap_core::tree::{NodeKind, SpeechTree};
use voxolap_engine::exact::evaluate;
use voxolap_speech::candidates::CandidateGenerator;
use voxolap_speech::constraints::SpeechConstraints;
use voxolap_speech::render::Renderer;

fn main() {
    let table = flights_table(50_000);
    let query = region_season_query(&table);
    let schema = table.schema();
    let exact = evaluate(&query, &table);
    let layout = query.layout();

    let gen = CandidateGenerator::new(schema, &query, experiment_candidates());
    let renderer = Renderer::new(schema, &query);
    let constraints = SpeechConstraints { max_chars: 300, max_refinements: 1 };

    let mut core = PlannerCore::with_resample_size(&table, &query, 42, 200);
    let overall = core.warmup(200).unwrap();
    let sigma = core.calibrate_sigma(overall, None);
    let model = BeliefModel::new(sigma);
    let mut tree = SpeechTree::build(&gen, &renderer, &constraints, overall, 300_000);

    for _ in 0..60_000 {
        core.sample_once(&mut tree, SpeechTree::ROOT, 8);
    }

    // Pick the best baseline, then rank its children.
    let base = tree.tree().best_child(SpeechTree::ROOT).unwrap();
    println!(
        "baseline: {:?}  mean reward {:.4}  visits {}",
        tree.sentence(base, &renderer),
        tree.tree().mean_reward(base),
        tree.tree().visits(base)
    );

    let mut rows: Vec<(f64, f64, u64, String)> = tree
        .tree()
        .children(base)
        .iter()
        .map(|&c| {
            let mean = tree.tree().mean_reward(c);
            // exact quality of this child's speech
            let mut total = 0.0;
            let mut n = 0;
            for agg in 0..layout.n_aggregates() as u32 {
                let actual = exact.value(agg);
                if !actual.is_finite() {
                    continue;
                }
                let m = tree.mean_for(c, &layout.coords_of_agg(agg));
                let (lo, hi) = rounding_bucket(actual, model.sigma() / 10.0);
                total += Normal::new(m, model.sigma()).prob_interval(lo, hi);
                n += 1;
            }
            let q = total / n as f64;
            let label = match tree.tree().data(c) {
                NodeKind::Refinement { ast, .. } => renderer.refinement_sentence(ast),
                _ => "?".into(),
            };
            (mean, q, tree.tree().visits(c), label)
        })
        .collect();
    rows.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!("\ntop by SAMPLED mean reward:");
    for (mean, q, v, label) in rows.iter().take(8) {
        println!("  sampled {mean:.4}  exact {q:.4}  visits {v:>6}  {label}");
    }
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop by EXACT quality:");
    for (mean, q, v, label) in rows.iter().take(8) {
        println!("  sampled {mean:.4}  exact {q:.4}  visits {v:>6}  {label}");
    }
}
