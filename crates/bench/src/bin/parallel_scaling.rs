//! Parallel-planning scaling benchmark: sampling throughput at 1/2/4/8
//! threads, written to `BENCH_parallel.json` (and printed as markdown).
//!
//! ```text
//! cargo run --release --bin parallel_scaling [--rows N] [--duration-ms MS] [--out PATH]
//! ```

use voxolap_bench::experiments::parallel::{self, DEFAULT_THREAD_COUNTS};
use voxolap_bench::{arg_usize, DEFAULT_FLIGHTS_ROWS};

fn main() {
    let rows = arg_usize("--rows", DEFAULT_FLIGHTS_ROWS);
    let duration_ms = arg_usize("--duration-ms", 3_000) as u64;
    let out = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_parallel.json".to_string())
    };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let points = parallel::measure(rows, duration_ms, &DEFAULT_THREAD_COUNTS, 42);
    let json = parallel::to_json(rows, duration_ms, cores, &points);
    std::fs::write(&out, format!("{json}\n")).expect("write benchmark record");
    eprintln!("wrote {out}");
    print!("{}", parallel::run(rows, duration_ms, &points));
}
