//! Parallel-planning scaling benchmark: end-to-end sampling throughput
//! and ingest-only rows/sec at 1/2/4/8 threads, written to
//! `BENCH_parallel.json` (and printed as markdown).
//!
//! ```text
//! cargo run --release --bin parallel_scaling \
//!     [--rows N | --scale-rows N] [--duration-ms MS] [--out PATH] [--smoke]
//! ```
//!
//! `--scale-rows N` selects the synthetic paper-scale sweep (5.3 M rows
//! and beyond) and takes precedence over `--rows`.
//!
//! `--smoke` runs the CI multicore gate instead of the full sweep: two
//! points (1 and 4 threads), a floor of 1.5× end-to-end samples/sec at 4
//! threads, and a floor of 2.5× ingest-only rows/sec at 4 threads (the
//! batched morsel path has no planning work to hide behind, so it must
//! scale harder). On hosts with fewer than 4 cores the gate is skipped
//! with a notice (exit 0) — a 1- or 2-core container cannot demonstrate
//! thread scaling, and the artifact header records the core count so the
//! skip is self-explaining. The JSON record is written before the gate is
//! evaluated, so a failing run still leaves the artifact for upload.

use voxolap_bench::experiments::parallel::{self, DEFAULT_THREAD_COUNTS};
use voxolap_bench::{arg_rows, arg_usize, HostInfo, DEFAULT_FLIGHTS_ROWS};

/// Minimum 4-thread/1-thread end-to-end throughput ratio the smoke gate
/// accepts.
const SMOKE_MIN_SPEEDUP: f64 = 1.5;

/// Minimum 4-thread/1-thread ingest-only throughput ratio the smoke gate
/// accepts.
const SMOKE_MIN_INGEST_SPEEDUP: f64 = 2.5;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rows = arg_rows(DEFAULT_FLIGHTS_ROWS);
    let duration_ms = arg_usize("--duration-ms", if smoke { 1_500 } else { 3_000 }) as u64;
    let out = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_parallel.json".to_string())
    };
    let host = HostInfo::detect();

    if smoke && host.cores < 4 {
        eprintln!(
            "smoke: SKIPPED — host has {} core(s), need >= 4 to demonstrate thread scaling",
            host.cores
        );
        return;
    }

    let thread_counts: &[usize] = if smoke { &[1, 4] } else { &DEFAULT_THREAD_COUNTS };
    let (points, dataset_bytes) = parallel::measure(rows, duration_ms, thread_counts, 42);
    let json = parallel::to_json(rows, duration_ms, host, dataset_bytes, &points);
    std::fs::write(&out, format!("{json}\n")).expect("write benchmark record");
    eprintln!("wrote {out}");
    print!("{}", parallel::run(rows, duration_ms, &points));

    if smoke {
        let last = points.last().expect("two smoke points");
        let mut failed = false;
        if last.speedup < SMOKE_MIN_SPEEDUP {
            eprintln!(
                "smoke: FAILED — {:.2}x samples/sec at 4 threads (need >= {SMOKE_MIN_SPEEDUP}x)",
                last.speedup
            );
            failed = true;
        }
        if last.ingest_speedup < SMOKE_MIN_INGEST_SPEEDUP {
            eprintln!(
                "smoke: FAILED — {:.2}x ingest rows/sec at 4 threads \
                 (need >= {SMOKE_MIN_INGEST_SPEEDUP}x)",
                last.ingest_speedup
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "smoke: ok — {:.2}x samples/sec, {:.2}x ingest rows/sec at 4 threads",
            last.speedup, last.ingest_speedup
        );
    }
}
