//! Regenerates Table 7: facts extracted via voice-based data analysis.

use voxolap_bench::{arg_usize, experiments::tab7, flights_table};

fn main() {
    let rows = arg_usize("--rows", 50_000);
    let seed = arg_usize("--seed", 42) as u64;
    let table = flights_table(rows);
    print!("{}", tab7::run(&table, seed));
}
