//! Regenerates Figure 3: latency and speech quality of the vocalization
//! variants on the flights dataset.
//!
//! Usage: `cargo run --release -p voxolap-bench --bin fig3 [--rows N] [--seed S]`

use voxolap_bench::{arg_json, arg_usize, experiments::fig3, flights_table, DEFAULT_FLIGHTS_ROWS};

fn main() {
    let rows = arg_usize("--rows", DEFAULT_FLIGHTS_ROWS);
    let seed = arg_usize("--seed", 42) as u64;
    eprintln!("generating flights dataset ({rows} rows)...");
    let table = flights_table(rows);
    if arg_json() {
        println!("{}", fig3::run_json(&table, seed));
    } else {
        print!("{}", fig3::run(&table, seed));
    }
}
