//! Regenerates Table 11: benchmark dataset statistics. Defaults to the
//! paper's full 5.3M-row flights scale.

use voxolap_bench::{arg_usize, experiments::tab11, flights_table, salary_table};

fn main() {
    let rows = arg_usize("--rows", 5_300_000);
    eprintln!("generating flights dataset ({rows} rows)...");
    let flights = flights_table(rows);
    let salary = salary_table();
    print!("{}", tab11::run(&salary, &flights));
}
