//! Regenerates Tables 8 and 9: vocalization preferences and speech
//! lengths from the exploratory analysis study.

use voxolap_bench::{arg_usize, experiments::tab8_tab9};

fn main() {
    let rows = arg_usize("--rows", 30_000);
    let seed = arg_usize("--seed", 42) as u64;
    print!("{}", tab8_tab9::run(rows, seed));
}
