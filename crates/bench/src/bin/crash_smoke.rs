//! Crash-recovery smoke over the real server binary (DESIGN.md §17).
//!
//! Spawns `voxolap-server` with `--data-dir`, streams ingest batches over
//! HTTP, SIGKILLs the process mid-stream, restarts it on the same
//! directory, and asserts that **every acknowledged batch survived** —
//! the server's ack contract is "durable before 200". A second pass
//! SIGTERMs the recovered server and asserts the clean-shutdown marker
//! made the next boot skip tail scanning (`clean_start: true`).
//!
//! ```text
//! cargo run --release --bin crash_smoke \
//!     [--port N] [--rows N] [--batches N] [--batch N] [--kill-after N]
//!     [--data-dir PATH] [--out PATH]
//! ```
//!
//! The server binary is found via `VOXOLAP_SERVER_BIN` or as a sibling of
//! this executable in the same target directory. Writes `CRASH_SMOKE.json`
//! and exits non-zero on any failure, so CI can gate on it.

use std::io::{Read, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use voxolap_bench::{arg_usize, flights_table};
use voxolap_data::schema::MeasureId;
use voxolap_data::{DimId, Table};
use voxolap_json::Value;

// Same no-libc idiom as the server's reactor: raw syscall wrappers.
extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

const SIGKILL: i32 = 9;
const SIGTERM: i32 = 15;

fn arg_str(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1).cloned())
}

fn server_bin() -> PathBuf {
    if let Ok(p) = std::env::var("VOXOLAP_SERVER_BIN") {
        return PathBuf::from(p);
    }
    let me = std::env::current_exe().expect("current_exe");
    me.parent().expect("target dir").join("voxolap-server")
}

/// One `Connection: close` HTTP exchange; returns (status, body).
fn http(addr: &str, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf)?;
    let text = String::from_utf8_lossy(&buf).into_owned();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let payload = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((status, payload))
}

fn wait_health(addr: &str, deadline: Duration) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if matches!(http(addr, "GET", "/health", ""), Ok((200, _))) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

fn spawn_server(bin: &PathBuf, port: usize, rows: usize, dir: &PathBuf, log: &PathBuf) -> Child {
    let logfile = std::fs::File::create(log).expect("create server log");
    let logfile2 = logfile.try_clone().expect("clone log handle");
    Command::new(bin)
        .args([
            "--port",
            &port.to_string(),
            "--rows",
            &rows.to_string(),
            "--data-dir",
            &dir.display().to_string(),
            "--fsync-mode",
            "always",
            "--snapshot-every",
            "8",
            "--http-threads",
            "2",
        ])
        .stdout(Stdio::from(logfile))
        .stderr(Stdio::from(logfile2))
        .spawn()
        .expect("spawn voxolap-server")
}

/// A valid flights ingest line echoing an existing row (same generator +
/// seed as the server's `--rows N`, so member phrases always resolve).
fn echo_line(table: &Table, row: usize) -> String {
    let schema = table.schema();
    let row = row % table.row_count();
    let dims: Vec<Value> = (0..schema.dimensions().len())
        .map(|d| {
            let id = DimId(d as u8);
            let member = table.member_at(id, row);
            Value::Str(schema.dimension(id).member(member).phrase.clone())
        })
        .collect();
    let values: Vec<Value> = (0..schema.measures().len())
        .map(|m| Value::Num(table.measure_value(MeasureId(m as u8), row)))
        .collect();
    Value::obj([("dims", Value::Array(dims)), ("values", Value::Array(values))]).to_string()
}

fn main() {
    let port = arg_usize("--port", 18231);
    let rows = arg_usize("--rows", 4_000);
    let batches = arg_usize("--batches", 40);
    let batch = arg_usize("--batch", 25);
    let kill_after = arg_usize("--kill-after", batches * 3 / 5);
    let out = arg_str("--out").unwrap_or_else(|| "CRASH_SMOKE.json".to_string());
    let dir = arg_str("--data-dir").map(PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("voxolap-crash-smoke-{}", std::process::id()))
    });
    let addr = format!("127.0.0.1:{port}");
    let bin = server_bin();
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create data dir");
    eprintln!(
        "crash_smoke: bin={} dir={} batches={batches}x{batch} kill after {kill_after} acks",
        bin.display(),
        dir.display()
    );

    let table = flights_table(rows);
    let mut failures: Vec<String> = Vec::new();

    // ---- Phase A: ingest, then SIGKILL mid-stream ----------------------
    let mut child = spawn_server(&bin, port, rows, &dir, &dir.join("server-a.log"));
    if !wait_health(&addr, Duration::from_secs(30)) {
        eprintln!("FATAL: server never became healthy (see {}/server-a.log)", dir.display());
        let _ = unsafe { kill(child.id() as i32, SIGKILL) };
        std::process::exit(1);
    }
    let acked = Arc::new(AtomicU64::new(0));
    let stream_done = Arc::new(AtomicU64::new(0));
    let killer = {
        // Fire SIGKILL from a side thread as soon as `kill_after` batches
        // are acknowledged, so the kill lands while ingest is in flight.
        // Kills unconditionally once the stream ends: phase B reuses the
        // port, so the first process must be gone either way.
        let acked = Arc::clone(&acked);
        let stream_done = Arc::clone(&stream_done);
        let pid = child.id() as i32;
        let threshold = kill_after as u64;
        std::thread::spawn(move || {
            while acked.load(Ordering::Relaxed) < threshold
                && stream_done.load(Ordering::Relaxed) == 0
            {
                std::thread::sleep(Duration::from_millis(1));
            }
            unsafe { kill(pid, SIGKILL) };
        })
    };
    let mut acked_rows = 0u64;
    let mut last_acked_version = 0u64;
    for b in 0..batches {
        let body: String =
            (0..batch).map(|i| echo_line(&table, b * batch + i) + "\n").collect();
        match http(&addr, "POST", "/ingest", &body) {
            Ok((200, resp)) => {
                let v = Value::parse(&resp).expect("ingest ack json");
                last_acked_version = v["version"].as_u64().expect("ack version");
                acked_rows += v["appended"].as_u64().expect("ack appended");
                acked.fetch_add(1, Ordering::Relaxed);
            }
            // Anything else — connection reset by the SIGKILL, a refused
            // dial, a 503 — is an unacknowledged batch: the client owns
            // it, the durability contract does not.
            Ok((status, _)) => eprintln!("batch {b}: status {status} (unacked)"),
            Err(e) => {
                eprintln!("batch {b}: {e} (unacked, server presumed killed)");
                break;
            }
        }
    }
    stream_done.store(1, Ordering::Relaxed);
    killer.join().expect("killer thread");
    let _ = child.wait();
    let acked_batches = acked.load(Ordering::Relaxed);
    eprintln!(
        "phase A: {acked_batches} acked batches ({acked_rows} rows), last acked version {last_acked_version}"
    );
    if acked_batches < kill_after as u64 {
        failures.push(format!(
            "only {acked_batches} batches acked before the kill threshold {kill_after}"
        ));
    }

    // ---- Phase B: restart and audit recovery ---------------------------
    let mut child = spawn_server(&bin, port, rows, &dir, &dir.join("server-b.log"));
    if !wait_health(&addr, Duration::from_secs(30)) {
        eprintln!("FATAL: server did not recover (see {}/server-b.log)", dir.display());
        let _ = unsafe { kill(child.id() as i32, SIGKILL) };
        std::process::exit(1);
    }
    let (status, stats) = http(&addr, "GET", "/stats", "").expect("stats after recovery");
    assert_eq!(status, 200, "stats after recovery: {stats}");
    let stats = Value::parse(&stats).expect("stats json");
    let recovered_version = stats["version"].as_u64().unwrap_or(0);
    let recovered_rows = stats["rows"].as_u64().unwrap_or(0);
    let durability = &stats["durability"];
    // Every acked batch bumped the version by one; recovery replays the
    // whole logged prefix, so the recovered version can only meet or
    // exceed the last ack (a logged-but-unacked tail batch is allowed).
    if recovered_version < last_acked_version {
        failures.push(format!(
            "acked-batch LOSS: recovered version {recovered_version} < last acked {last_acked_version}"
        ));
    }
    if recovered_rows < rows as u64 + acked_rows {
        failures.push(format!(
            "acked-row LOSS: recovered {recovered_rows} rows < seed {rows} + acked {acked_rows}"
        ));
    }
    // Appends are atomic: a torn tail must truncate to whole batches, so
    // whatever survived beyond the seed divides evenly. (A shortfall is
    // already flagged as row loss above.)
    if let Some(ingested) = recovered_rows.checked_sub(rows as u64) {
        if ingested % batch as u64 != 0 {
            failures.push(format!(
                "partial batch visible: {ingested} recovered ingest rows is not a multiple of {batch}"
            ));
        }
    }
    if durability.is_null() {
        failures.push("stats has no durability section after recovery".to_string());
    } else {
        if durability["clean_start"].as_bool() != Some(false) {
            failures.push("SIGKILLed boot reported clean_start=true".to_string());
        }
        let replayed = durability["replayed_batches"].as_u64().unwrap_or(0);
        let snapshots = durability["snapshots_written"].as_u64();
        if replayed == 0 && acked_batches % 8 != 0 {
            failures.push("recovery replayed no WAL batches".to_string());
        }
        eprintln!(
            "phase B: recovered version {recovered_version}, {recovered_rows} rows \
             (replayed {replayed} batches from snapshot+wal, snapshots written since {snapshots:?}, \
             recovery {} ms)",
            durability["recovery_ms"].as_f64().unwrap_or(0.0)
        );
    }

    // ---- Phase C: graceful SIGTERM, clean restart ----------------------
    unsafe { kill(child.id() as i32, SIGTERM) };
    let status = child.wait().expect("wait for graceful exit");
    if !status.success() {
        failures.push(format!("graceful shutdown exited with {status}"));
    }
    let mut child = spawn_server(&bin, port, rows, &dir, &dir.join("server-c.log"));
    let mut clean_start = false;
    if !wait_health(&addr, Duration::from_secs(30)) {
        failures.push("server did not restart after graceful shutdown".to_string());
    } else {
        let (_, stats) = http(&addr, "GET", "/stats", "").expect("stats after clean boot");
        let stats = Value::parse(&stats).expect("stats json");
        clean_start = stats["durability"]["clean_start"].as_bool() == Some(true);
        if !clean_start {
            failures.push("boot after graceful shutdown was not marked clean".to_string());
        }
        if stats["version"].as_u64().unwrap_or(0) != recovered_version {
            failures.push("clean restart changed the table version".to_string());
        }
        eprintln!("phase C: clean_start={clean_start}");
    }
    let _ = unsafe { kill(child.id() as i32, SIGKILL) };
    let _ = child.wait();

    let record = Value::obj([
        ("bench", "crash_smoke".into()),
        ("batches_sent", batches.into()),
        ("batch_rows", batch.into()),
        ("acked_batches", acked_batches.into()),
        ("acked_rows", acked_rows.into()),
        ("last_acked_version", last_acked_version.into()),
        ("recovered_version", recovered_version.into()),
        ("recovered_rows", recovered_rows.into()),
        ("clean_start_after_sigterm", clean_start.into()),
        (
            "failures",
            Value::Array(failures.iter().map(|f| Value::Str(f.clone())).collect()),
        ),
    ]);
    std::fs::write(&out, format!("{record}\n")).expect("write crash smoke record");
    eprintln!("wrote {out}");
    if arg_str("--data-dir").is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }

    if failures.is_empty() {
        eprintln!("crash smoke ok: zero acknowledged batches lost");
    } else {
        for f in &failures {
            eprintln!("CRASH SMOKE FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
