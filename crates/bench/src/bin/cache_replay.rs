//! Semantic-cache replay benchmark: a seeded workload of repeated and
//! scope-overlapping queries against one cache-sharing engine, written
//! to `BENCH_cache.json` (and printed as markdown).
//!
//! ```text
//! cargo run --release --bin cache_replay \
//!     [--rows N] [--queries N] [--repeat-pct P] [--overlap-pct P] \
//!     [--cache-mb MB] [--out PATH]
//! ```

use voxolap_bench::experiments::cache;
use voxolap_bench::{arg_usize, HostInfo};

fn main() {
    let rows = arg_usize("--rows", 20_000);
    let queries = arg_usize("--queries", 200);
    let repeat_pct = arg_usize("--repeat-pct", 30);
    let overlap_pct = arg_usize("--overlap-pct", 30);
    let cache_mb = arg_usize("--cache-mb", 64);
    let out = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_cache.json".to_string())
    };
    let host = HostInfo::detect();

    let replay = cache::measure(rows, queries, repeat_pct, overlap_pct, cache_mb, 42);
    let json = cache::to_json(rows, repeat_pct, overlap_pct, cache_mb, host, &replay);
    std::fs::write(&out, format!("{json}\n")).expect("write benchmark record");
    eprintln!("wrote {out}");
    print!("{}", cache::run(rows, &replay));
}
