//! Runs every experiment and prints an `EXPERIMENTS.md`-shaped report.
//!
//! Usage: `cargo run --release -p voxolap-bench --bin all_experiments
//! [--rows N] [--seed S] [--tab11-rows N]`

use voxolap_bench::{
    arg_usize,
    experiments::{fig3, tab11, tab12, tab2_tab10, tab5_tab13, tab6_tab14, tab7, tab8_tab9},
    flights_table, salary_table, DEFAULT_FLIGHTS_ROWS,
};

fn main() {
    let rows = arg_usize("--rows", DEFAULT_FLIGHTS_ROWS);
    let tab11_rows = arg_usize("--tab11-rows", rows);
    let seed = arg_usize("--seed", 42) as u64;

    eprintln!("generating datasets ({rows} flight rows)...");
    let flights = flights_table(rows);
    let salary = salary_table();

    println!("## Regenerated evaluation (flights scale: {rows} rows, seed {seed})\n");

    eprintln!("tab11...");
    let flights_for_stats = if tab11_rows == rows { None } else { Some(flights_table(tab11_rows)) };
    println!("{}\n", tab11::run(&salary, flights_for_stats.as_ref().unwrap_or(&flights)));
    drop(flights_for_stats);

    eprintln!("fig3...");
    println!("{}\n", fig3::run(&flights, seed));

    eprintln!("tab5 + tab6/tab14...");
    let (tab5_md, comparison) = tab5_tab13::run_tab5(&flights, seed);
    println!("{tab5_md}\n");
    println!("{}\n", tab6_tab14::run(&flights, &comparison, seed));

    eprintln!("tab12...");
    println!("{}\n", tab12::run(&flights));

    eprintln!("tab13...");
    println!("{}\n", tab5_tab13::run_tab13(&flights, seed));

    eprintln!("tab2/tab10...");
    println!("{}\n", tab2_tab10::run(seed));

    eprintln!("tab7...");
    println!("{}\n", tab7::run(&flights, seed));

    eprintln!("tab8/tab9...");
    println!("{}\n", tab8_tab9::run(30_000.min(rows), seed));
}
