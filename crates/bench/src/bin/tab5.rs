//! Regenerates Table 5: speeches of the three approaches for the
//! region x season query.

use voxolap_bench::{arg_usize, experiments::tab5_tab13, flights_table, DEFAULT_FLIGHTS_ROWS};

fn main() {
    let rows = arg_usize("--rows", DEFAULT_FLIGHTS_ROWS);
    let seed = arg_usize("--seed", 42) as u64;
    let table = flights_table(rows);
    let (md, _) = tab5_tab13::run_tab5(&table, seed);
    print!("{md}");
}
