//! Latency/quality vs data scale (extends Figure 3).
//!
//! Usage: `cargo run --release -p voxolap-bench --bin scaling
//! [--max-rows N] [--seed S]` — sweeps 50k, 200k, 800k, 3.2M rows up to
//! the cap.

use voxolap_bench::{arg_usize, experiments::scaling};

fn main() {
    let max_rows = arg_usize("--max-rows", 3_200_000);
    let seed = arg_usize("--seed", 42) as u64;
    let scales: Vec<usize> =
        [50_000, 200_000, 800_000, 3_200_000].into_iter().filter(|&r| r <= max_rows).collect();
    print!("{}", scaling::run(&scales, seed));
}
