//! Regenerates Table 12: the full region x season cancellation result.

use voxolap_bench::{arg_usize, experiments::tab12, flights_table, DEFAULT_FLIGHTS_ROWS};

fn main() {
    let rows = arg_usize("--rows", DEFAULT_FLIGHTS_ROWS);
    let table = flights_table(rows);
    print!("{}", tab12::run(&table));
}
